"""Setup shim: lets ``pip install -e .`` work on machines without the
``wheel`` package (offline environments) via ``setup.py develop``."""
from setuptools import setup

setup()
