"""repro — reproduction of Valero et al., "Increasing the Number of
Strides for Conflict-Free Vector Access" (ISCA 1992).

The library implements the paper's out-of-order conflict-free vector
access scheme end to end: XOR/skewing/interleaved address mappings, the
Lemma-2/4 subsequence reorderings, Theorem-1/3 conflict-free windows, a
cycle-accurate multi-module memory simulator, register-level models of
the paper's address-generation hardware (Figures 4-6), a decoupled
access/execute vector machine with LOAD->EXECUTE chaining, and the
Section-5 analytic models.

Quickstart::

    from repro import MatchedDesign, VectorAccess, AccessPlanner
    from repro.memory import MemoryConfig, MemorySystem

    design = MatchedDesign.recommended(lambda_exponent=7, t=3)
    planner = AccessPlanner(design.mapping(), design.t)
    plan = planner.plan(VectorAccess(base=16, stride=12, length=128))
    result = MemorySystem(MemoryConfig.matched(3, design.s)).run_plan(plan)
    assert result.conflict_free and result.latency == 8 + 128 + 1
"""

from repro.core import (
    AccessPlan,
    AccessPlanner,
    CompositePlan,
    MatchedDesign,
    RequestOrder,
    StrideFamily,
    SubsequencePlan,
    UnmatchedDesign,
    VectorAccess,
    Window,
    build_subsequences,
    decompose_stride,
    family_of,
    is_conflict_free,
    matched_window,
    plan_short_vector,
    recommended_s,
    recommended_y,
    unmatched_windows,
)
from repro.errors import (
    ConfigurationError,
    HardwareModelError,
    OrderingError,
    ProgramError,
    RegisterFileError,
    ReproError,
    SimulationError,
    VectorSpecError,
)
from repro.mappings import (
    AddressMapping,
    FieldInterleaved,
    LowOrderInterleaved,
    MatchedXorMapping,
    PseudoRandomMapping,
    SectionXorMapping,
    SkewedMapping,
    XorMatrixMapping,
)
from repro.memory import AccessResult, MemoryConfig, MemorySystem

__version__ = "1.0.0"

__all__ = [
    "AccessPlan",
    "AccessPlanner",
    "AccessResult",
    "AddressMapping",
    "CompositePlan",
    "ConfigurationError",
    "FieldInterleaved",
    "HardwareModelError",
    "LowOrderInterleaved",
    "MatchedDesign",
    "MatchedXorMapping",
    "MemoryConfig",
    "MemorySystem",
    "OrderingError",
    "ProgramError",
    "PseudoRandomMapping",
    "RegisterFileError",
    "ReproError",
    "RequestOrder",
    "SectionXorMapping",
    "SimulationError",
    "SkewedMapping",
    "StrideFamily",
    "SubsequencePlan",
    "UnmatchedDesign",
    "VectorAccess",
    "VectorSpecError",
    "Window",
    "XorMatrixMapping",
    "build_subsequences",
    "decompose_stride",
    "family_of",
    "is_conflict_free",
    "matched_window",
    "plan_short_vector",
    "recommended_s",
    "recommended_y",
    "unmatched_windows",
    "__version__",
]
