"""repro — reproduction of Valero et al., "Increasing the Number of
Strides for Conflict-Free Vector Access" (ISCA 1992).

The library implements the paper's out-of-order conflict-free vector
access scheme end to end: XOR/skewing/interleaved address mappings, the
Lemma-2/4 subsequence reorderings, Theorem-1/3 conflict-free windows, a
cycle-accurate multi-module memory simulator, register-level models of
the paper's address-generation hardware (Figures 4-6), a decoupled
access/execute vector machine with LOAD->EXECUTE chaining, and the
Section-5 analytic models.

Quickstart::

    from repro import MatchedDesign, VectorAccess, AccessPlanner
    from repro.memory import MemoryConfig, MemorySystem

    design = MatchedDesign.recommended(lambda_exponent=7, t=3)
    planner = AccessPlanner(design.mapping(), design.t)
    plan = planner.plan(VectorAccess(base=16, stride=12, length=128))
    result = MemorySystem(MemoryConfig.matched(3, design.s)).run_plan(plan)
    assert result.conflict_free and result.latency == 8 + 128 + 1

Or declaratively, through the scenario API (one serializable spec per
machine + workload design point)::

    from repro import ComponentSpec, MemorySpec, ScenarioSpec, simulate

    result = simulate(ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
    ))
    assert result.conflict_free and result.latency == 8 + 128 + 1

Module map
----------

* :mod:`repro.core` — vectors, stride families, subsequence
  decompositions, orderings, the access planner, conflict-free windows;
* :mod:`repro.mappings` — every address-mapping scheme (interleaved,
  skewed, Eq. (1)/(2) XOR, GF(2) matrix, pseudo-random, dynamic);
* :mod:`repro.memory` — the unified cycle-accurate memory kernel
  (M modules x k ports x n streams) and its single-stream /
  multi-stream / multi-port views plus configuration;
* :mod:`repro.hardware` — register-level models of the Figures 4-6
  address-generation hardware;
* :mod:`repro.processor` — the decoupled access/execute vector machine
  with LOAD->EXECUTE chaining, its ISA, assembler, strip-mined kernel
  builders and the ``ProgramEngine`` whole-program execution API;
* :mod:`repro.workloads` — stride populations, kernel access patterns
  and gather/scatter index generators;
* :mod:`repro.analysis` — the Section 5 analytic models (fractions,
  efficiency, trade-offs) and design-space sweeps;
* :mod:`repro.scenarios` — declarative, JSON-serializable scenario
  specs (machine + workload *or* whole program) + the ``simulate()``
  facade over all of the above and design-point diffing;
* :mod:`repro.batch` — the batch design-point evaluation engine:
  a closed-form analytic fast path for conflict-free planner points
  plus a struct-of-arrays batched kernel (numpy-accelerated when
  available, pure-stdlib otherwise) and a fallback tier shardable
  over a process pool (``--batch-workers``), selectable as
  ``--engine batch`` wherever grids run, with sampled re-validation
  against the per-point kernel.  The hot path is memoized underneath:
  the planner's process-wide LRU plan cache and the scenario facade's
  machine templates (``repro.obs.cache_stats()`` snapshots both;
  ``REPRO_PLAN_CACHE=0`` / ``REPRO_MACHINE_CACHE=0`` disable);
* :mod:`repro.check` — static conflict/hazard analysis of specs and
  vector programs (closed-form conflict verdicts, RAW/WAR/WAW and
  batchability reports, spec lint, grid dedupe) behind ``repro check``
  and the lab/serve submission gates;
* :mod:`repro.report` — experiment runners (E01..E16) and table/figure
  rendering;
* :mod:`repro.obs` — observability: zero-cost-when-disabled cycle-level
  tracing (``Tracer``, Chrome/Perfetto ``trace_event`` export) and the
  cross-run :class:`~repro.obs.history.HistoryDB` metric index behind
  ``repro lab history``;
* :mod:`repro.lab` — parallel experiment orchestration with
  content-addressed result caching, cross-run diffing and pluggable
  execution backends (in-process, process pool, or a filesystem-spool
  sharding protocol served by ``repro lab worker`` processes on any
  host; detached stores fold back via ``repro lab merge``);
* :mod:`repro.serve` — the persistent HTTP experiment service behind
  ``repro lab serve``: submit scenario specs/grids over HTTP, poll
  runs, fetch any cached result by config hash with strong ETags;
* :mod:`repro.cli` — the ``repro`` command line
  (``plan``/``window``/``experiments``/``survey``/``run``/
  ``scenario``/``check``/``lab``).
"""

from repro.core import (
    AccessPlan,
    AccessPlanner,
    CompositePlan,
    MatchedDesign,
    RequestOrder,
    StrideFamily,
    SubsequencePlan,
    UnmatchedDesign,
    VectorAccess,
    Window,
    build_subsequences,
    decompose_stride,
    family_of,
    is_conflict_free,
    matched_window,
    plan_short_vector,
    recommended_s,
    recommended_y,
    unmatched_windows,
)
from repro.errors import (
    ConfigurationError,
    HardwareModelError,
    OrderingError,
    ProgramError,
    RegisterFileError,
    ReproError,
    SimulationError,
    VectorSpecError,
)
from repro.mappings import (
    AddressMapping,
    FieldInterleaved,
    LowOrderInterleaved,
    MatchedXorMapping,
    PseudoRandomMapping,
    SectionXorMapping,
    SkewedMapping,
    XorMatrixMapping,
)
from repro.memory import AccessResult, MemoryConfig, MemorySystem
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioGrid,
    ScenarioResult,
    ScenarioSpec,
    build_machine,
    simulate,
)

__version__ = "1.8.0"

__all__ = [
    "AccessPlan",
    "AccessPlanner",
    "AccessResult",
    "AddressMapping",
    "ComponentSpec",
    "CompositePlan",
    "ConfigurationError",
    "FieldInterleaved",
    "HardwareModelError",
    "LowOrderInterleaved",
    "MatchedDesign",
    "MatchedXorMapping",
    "MemoryConfig",
    "MemorySpec",
    "MemorySystem",
    "OrderingError",
    "ProgramError",
    "PseudoRandomMapping",
    "RegisterFileError",
    "ReproError",
    "RequestOrder",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SectionXorMapping",
    "SimulationError",
    "SkewedMapping",
    "StrideFamily",
    "SubsequencePlan",
    "UnmatchedDesign",
    "VectorAccess",
    "VectorSpecError",
    "Window",
    "XorMatrixMapping",
    "build_machine",
    "build_subsequences",
    "decompose_stride",
    "family_of",
    "is_conflict_free",
    "matched_window",
    "plan_short_vector",
    "recommended_s",
    "recommended_y",
    "simulate",
    "unmatched_windows",
    "__version__",
]
