"""Canonical config hashing and JSON-safe cell encoding.

Two jobs are "the same experiment" exactly when their canonical config
JSON hashes equal, so the hash doubles as the artifact address
(``.repro-lab/artifacts/<hash>/``) and the cache key in the SQLite
index.  The hash covers the job id, kind, parameters, the package
version and a fingerprint of every Python source the jobs can execute
(see :func:`repro.lab.jobs.source_fingerprint`) — editing the
simulator or a bench invalidates every cached result, the right
default for a simulator whose cycle counts are the product under
test.

Table cells are almost always JSON primitives (int, float, bool, str);
the encoder handles the two structured types experiments legitimately
produce — ``fractions.Fraction`` and tuples — with explicit tags, and
refuses anything else rather than silently stringifying it (a silent
``str()`` would survive the round trip with a different type and break
byte-identical re-rendering).
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction

from repro.errors import ReproError


class ArtifactCodingError(ReproError):
    """A table cell cannot be round-tripped through JSON faithfully."""


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def config_hash(config: dict) -> str:
    """SHA-256 of the canonical JSON of a job config."""
    return hashlib.sha256(canonical_json(config).encode("ascii")).hexdigest()


def encode_cell(value):
    """One table cell to a JSON-safe value (tagged for Fraction/tuple)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int) or isinstance(value, str):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ArtifactCodingError(f"non-finite cell value {value!r}")
        return value
    if isinstance(value, Fraction):
        return {"__fraction__": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_cell(item) for item in value]}
    raise ArtifactCodingError(
        f"cell of type {type(value).__name__} is not JSON-round-trippable: "
        f"{value!r}"
    )


def decode_cell(value):
    """Inverse of :func:`encode_cell`."""
    if isinstance(value, dict):
        if "__fraction__" in value:
            numerator, denominator = value["__fraction__"]
            return Fraction(numerator, denominator)
        if "__tuple__" in value:
            return tuple(decode_cell(item) for item in value["__tuple__"])
        raise ArtifactCodingError(f"unknown cell tag in {value!r}")
    return value


def encode_rows(rows) -> list[list]:
    return [[encode_cell(value) for value in row] for row in rows]


def decode_rows(rows) -> list[list]:
    return [[decode_cell(value) for value in row] for row in rows]
