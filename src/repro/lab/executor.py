"""Cache-aware batch execution over pluggable backends.

``run_jobs`` takes a batch of :class:`~repro.lab.jobs.JobSpec`, checks
the artifact store for each config hash, hands the misses to an
:class:`~repro.lab.backends.ExecutorBackend` (in-process serial,
process pool, or the filesystem-spool sharding protocol) and persists
every fresh payload as it lands.  Results are reported in job-id order
regardless of completion order, so the same batch produces the same
:class:`ExecutionReport` — and byte-identical rendered reports — no
matter which backend executed it.

Only specs and JSON-safe payloads cross the executor/backend boundary,
so nothing unpicklable ever crosses a process (or host) boundary, and
an interrupted run leaves behind exactly the artifacts of the jobs
that finished, which the next run picks up as cache hits.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Sequence

import repro
from repro.lab.backends import (
    ExecutorBackend,
    JobFailure,
    default_worker_count,
    resolve_backend,
)
from repro.lab.jobs import JobSpec
from repro.lab.store import ArtifactStore

__all__ = [
    "ExecutionReport",
    "JobOutcome",
    "default_worker_count",
    "new_run_id",
    "run_jobs",
]


def new_run_id() -> str:
    """Timestamp + PID + random suffix: collision-free even when several
    coordinators (e.g. spool workers' own labs) start in the same second.

    Public because submit-without-block front ends (``repro lab
    serve``) must name a run *before* executing it: they allocate the
    id here, hand it back to the client immediately, and pass it into
    :func:`run_jobs` via ``run_id=`` when the batch actually runs.
    """
    return (
        time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        + f"-p{os.getpid()}-"
        + uuid.uuid4().hex[:8]
    )


@dataclass(frozen=True)
class JobOutcome:
    """One job's stored record plus how it was obtained."""

    spec: JobSpec
    record: dict
    cached: bool

    @property
    def all_passed(self) -> bool:
        return bool(self.record["all_passed"])

    @property
    def elapsed_seconds(self) -> float:
        return float(self.record["elapsed_seconds"])


@dataclass
class ExecutionReport:
    """Everything one batch produced, in deterministic job-id order.

    ``metrics`` carries the batch-level observability record (cache-hit
    rate, queue latencies, backend detail) that ``write_run_artifacts``
    persists into manifest.json and ``repro lab status --metrics``
    renders.
    """

    run_id: str
    outcomes: list[JobOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.all_passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures


def _lint_scenario_jobs(
    ordered: Sequence[JobSpec],
    progress: Callable[[str], None] | None,
) -> None:
    """Submit-time static lint over the batch's scenario jobs.

    Error findings (unknown kinds, bad parameters, program/drive
    mismatches) fail the whole batch *now* — before any artifact is
    written — with the canonical ``TypeName: message`` grammar
    (:class:`~repro.check.findings.CheckError`).  Warnings (duplicate
    design points and the like) go to ``progress``.  Jobs whose spec
    payload does not even parse are left alone so they fail through the
    normal execution path, keeping the failure attached to the job.
    """
    from repro.check import require_submittable
    from repro.lab.jobs import scenario_spec_of

    scenario_specs = []
    for job in ordered:
        spec = scenario_spec_of(job)
        if spec is not None:
            scenario_specs.append(spec)
    if not scenario_specs:
        return
    warnings = require_submittable(scenario_specs, source="lab submit")
    if progress is not None:
        for finding in warnings:
            progress(f"lint: {finding.render()}")


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    store: ArtifactStore,
    workers: int | None = None,
    force: bool = False,
    progress: Callable[[str], None] | None = None,
    backend: str | ExecutorBackend | None = None,
    run_id: str | None = None,
) -> ExecutionReport:
    """Execute a batch, reusing cached artifacts unless ``force``.

    ``backend`` picks the execution strategy: ``"serial"``, ``"pool"``
    (the default), ``"spool"``, or any :class:`ExecutorBackend`
    instance.  ``workers`` configures the pool backend (``None`` means
    one per CPU) and is ignored by backends that don't pool.
    ``progress`` receives one human-readable line per completed job.
    ``run_id`` lets a caller that already promised an id (the HTTP
    service returns one at submit time) execute under it; ``None``
    allocates a fresh one.
    """
    executor = resolve_backend(backend, store=store, workers=workers)
    ordered = sorted(specs, key=lambda spec: spec.job_id)
    _lint_scenario_jobs(ordered, progress)
    version = repro.__version__
    run_id = run_id or new_run_id()
    started = time.perf_counter()

    def emit(outcome: JobOutcome) -> None:
        if progress is None:
            return
        status = "PASS" if outcome.all_passed else "FAIL"
        suffix = " [cached]" if outcome.cached else ""
        progress(
            f"{outcome.spec.job_id}: {status} "
            f"({outcome.elapsed_seconds:.1f}s) "
            f"{outcome.record['title']}{suffix}"
        )

    outcomes: dict[str, JobOutcome] = {}
    pending: list[JobSpec] = []
    for spec in ordered:
        record = None if force else store.load(spec.config_hash(version))
        if record is not None:
            outcomes[spec.job_id] = JobOutcome(spec, record, cached=True)
            emit(outcomes[spec.job_id])
        else:
            pending.append(spec)

    # Queue latency per executed job: time from batch start to the
    # completion landing back here, minus the job's own execution time
    # — i.e. how long the job sat waiting for a worker (plus transport,
    # for the spool backend).  Cached jobs never queue.
    queue_latencies: list[float] = []

    def complete(spec: JobSpec, payload: dict) -> None:
        record = store.save(spec, payload, run_id=run_id, package_version=version)
        turnaround = time.perf_counter() - started
        queue_latencies.append(
            max(0.0, turnaround - float(record.get("elapsed_seconds", 0.0)))
        )
        outcomes[spec.job_id] = JobOutcome(spec, record, cached=False)
        emit(outcomes[spec.job_id])

    def crash(spec: JobSpec, message: str) -> None:
        # A raising job becomes a failed outcome that is deliberately NOT
        # cached: caching it would pin the failure across re-runs.
        record = {
            "job_id": spec.job_id,
            "kind": spec.kind,
            "title": spec.title,
            "headers": [],
            "rows": [],
            "checks": [
                {
                    "claim": "job executed without raising",
                    "expected": "no exception",
                    "measured": message,
                    "passed": False,
                }
            ],
            "notes": [],
            "all_passed": False,
            "elapsed_seconds": 0.0,
            "config_hash": spec.config_hash(version),
            "package_version": version,
            "run_id": run_id,
        }
        outcomes[spec.job_id] = JobOutcome(spec, record, cached=False)
        queue_latencies.append(time.perf_counter() - started)
        emit(outcomes[spec.job_id])

    # Job-execution errors arrive as JobFailure completions and become
    # failed outcomes; store/save errors are infrastructure problems and
    # propagate, never misattributed to the job.
    if pending:
        for spec, result in executor.run(pending, run_id=run_id):
            if isinstance(result, JobFailure):
                crash(spec, result.message)
            else:
                complete(spec, result)

    report = ExecutionReport(
        run_id=run_id,
        outcomes=[outcomes[spec.job_id] for spec in ordered],
        elapsed_seconds=time.perf_counter() - started,
        metrics=_batch_metrics(
            executor,
            job_count=len(ordered),
            cache_hits=len(ordered) - len(pending),
            wall_seconds=time.perf_counter() - started,
            queue_latencies=queue_latencies,
        ),
    )
    store.record_run(
        run_id,
        job_count=len(report.outcomes),
        cache_hits=report.cache_hits,
        failures=len(report.failures),
        elapsed_seconds=report.elapsed_seconds,
        package_version=version,
    )
    return report


def _batch_metrics(
    executor: ExecutorBackend,
    *,
    job_count: int,
    cache_hits: int,
    wall_seconds: float,
    queue_latencies: Sequence[float],
) -> dict:
    """The batch-level observability record stored in manifest.json.

    Backends may expose a ``backend_metrics()`` method returning extra
    JSON-safe counters (the spool backend reports published/requeued
    jobs and worker activity); those merge in flat, prefixed by the
    backend so keys never collide with the batch-level ones.
    """
    metrics: dict = {
        "backend": getattr(executor, "name", "unknown"),
        "jobs": job_count,
        "cache_hits": cache_hits,
        "executed": job_count - cache_hits,
        "cache_hit_rate": (cache_hits / job_count) if job_count else 0.0,
        "wall_seconds": wall_seconds,
        "queue_latency_mean_seconds": (
            sum(queue_latencies) / len(queue_latencies)
            if queue_latencies
            else 0.0
        ),
        "queue_latency_max_seconds": (
            max(queue_latencies) if queue_latencies else 0.0
        ),
    }
    detail = getattr(executor, "backend_metrics", None)
    if callable(detail):
        extra = detail()
        if isinstance(extra, dict):
            metrics.update(extra)
    return metrics
