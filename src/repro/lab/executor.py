"""Parallel job execution with cache-aware scheduling.

The executor takes a batch of :class:`~repro.lab.jobs.JobSpec`, checks
the artifact store for each config hash, fans the misses out over a
``ProcessPoolExecutor`` and persists every fresh payload as it lands.
Results are reported in job-id order regardless of completion order,
so a parallel run and a serial run of the same batch are
indistinguishable to everything downstream (reports diff cleanly).

Workers receive only the job id — they rebuild the (deterministic)
registry themselves and return a JSON-safe payload — so nothing
unpicklable ever crosses the process boundary, and an interrupted run
leaves behind exactly the artifacts of the jobs that finished, which
the next run picks up as cache hits.
"""

from __future__ import annotations

import os
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import repro
from repro.lab.jobs import JobSpec, execute_job
from repro.lab.store import ArtifactStore


def default_worker_count() -> int:
    """One worker per CPU, as ``repro lab run --jobs`` defaults to."""
    return os.cpu_count() or 1


def _new_run_id() -> str:
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()) + "-" + uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class JobOutcome:
    """One job's stored record plus how it was obtained."""

    spec: JobSpec
    record: dict
    cached: bool

    @property
    def all_passed(self) -> bool:
        return bool(self.record["all_passed"])

    @property
    def elapsed_seconds(self) -> float:
        return float(self.record["elapsed_seconds"])


@dataclass
class ExecutionReport:
    """Everything one batch produced, in deterministic job-id order."""

    run_id: str
    outcomes: list[JobOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.all_passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    store: ArtifactStore,
    workers: int | None = None,
    force: bool = False,
    progress: Callable[[str], None] | None = None,
) -> ExecutionReport:
    """Execute a batch, reusing cached artifacts unless ``force``.

    ``workers=None`` means one per CPU; ``workers=1`` runs in-process
    (no pool), which is also the fallback for a single pending job.
    ``progress`` receives one human-readable line per completed job.
    """
    if workers is None:
        workers = default_worker_count()
    elif workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ordered = sorted(specs, key=lambda spec: spec.job_id)
    version = repro.__version__
    run_id = _new_run_id()
    started = time.perf_counter()

    def emit(outcome: JobOutcome) -> None:
        if progress is None:
            return
        status = "PASS" if outcome.all_passed else "FAIL"
        suffix = " [cached]" if outcome.cached else ""
        progress(
            f"{outcome.spec.job_id}: {status} "
            f"({outcome.elapsed_seconds:.1f}s) "
            f"{outcome.record['title']}{suffix}"
        )

    outcomes: dict[str, JobOutcome] = {}
    pending: list[JobSpec] = []
    for spec in ordered:
        record = None if force else store.load(spec.config_hash(version))
        if record is not None:
            outcomes[spec.job_id] = JobOutcome(spec, record, cached=True)
            emit(outcomes[spec.job_id])
        else:
            pending.append(spec)

    def complete(spec: JobSpec, payload: dict) -> None:
        record = store.save(spec, payload, run_id=run_id, package_version=version)
        outcomes[spec.job_id] = JobOutcome(spec, record, cached=False)
        emit(outcomes[spec.job_id])

    def crash(spec: JobSpec, error: Exception) -> None:
        # A raising job becomes a failed outcome that is deliberately NOT
        # cached: caching it would pin the failure across re-runs.
        record = {
            "job_id": spec.job_id,
            "kind": spec.kind,
            "title": spec.title,
            "headers": [],
            "rows": [],
            "checks": [
                {
                    "claim": "job executed without raising",
                    "expected": "no exception",
                    "measured": f"{type(error).__name__}: {error}",
                    "passed": False,
                }
            ],
            "notes": [],
            "all_passed": False,
            "elapsed_seconds": 0.0,
            "config_hash": spec.config_hash(version),
            "package_version": version,
            "run_id": run_id,
        }
        outcomes[spec.job_id] = JobOutcome(spec, record, cached=False)
        emit(outcomes[spec.job_id])

    # Job-execution errors become failed outcomes; store/save errors are
    # infrastructure problems and propagate (the `else` keeps them out of
    # the job's except clause so they are never misattributed to the job).
    if len(pending) <= 1 or workers == 1:
        for spec in pending:
            try:
                payload = execute_job(spec)
            except Exception as error:
                crash(spec, error)
            else:
                complete(spec, payload)
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(execute_job, spec): spec for spec in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        payload = future.result()
                    except Exception as error:
                        crash(futures[future], error)
                    else:
                        complete(futures[future], payload)

    report = ExecutionReport(
        run_id=run_id,
        outcomes=[outcomes[spec.job_id] for spec in ordered],
        elapsed_seconds=time.perf_counter() - started,
    )
    store.record_run(
        run_id,
        job_count=len(report.outcomes),
        cache_hits=report.cache_hits,
        failures=len(report.failures),
        elapsed_seconds=report.elapsed_seconds,
        package_version=version,
    )
    return report
