"""Manifest and report rendering for lab runs.

Every ``repro lab run`` leaves a ``runs/<run-id>/`` directory with a
machine-readable ``manifest.json`` (which jobs ran, which were cache
hits, where each artifact lives) and a human-readable ``report.md``.
The module also owns the EXPERIMENTS.md renderer: ``benchmarks/
run_all.py`` feeds experiment outcomes through
:func:`render_experiments_markdown`, which reproduces the historical
report format byte for byte whether the payloads were computed fresh
or decoded from cached artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lab.executor import ExecutionReport, JobOutcome
from repro.lab.hashing import decode_rows
from repro.lab.jobs import EXPERIMENT_KIND, JobSpec
from repro.lab.store import ArtifactStore
from repro.report.tables import render_markdown

EXPERIMENTS_HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every numeric/tabular artifact of Valero et al.,
"Increasing the Number of Strides for Conflict-Free Vector Access"
(ISCA 1992).  Regenerate this file with `python benchmarks/run_all.py`;
each section below is produced by the matching `repro.report.experiments`
runner and the matching `benchmarks/bench_*` target.

Absolute cycle counts come from this repository's cycle-accurate
simulator (timing contract: 1-cycle buses, T-cycle modules — the same
model the paper's latency formulas assume), so the paper's *exact*
latency and efficiency numbers are expected to match, not just the
shape.

"""


def _record_sections(record: dict, heading: str) -> list[str]:
    """One report section: table, notes, then the checks table."""
    sections = [heading]
    sections.append(
        render_markdown(record["headers"], decode_rows(record["rows"]))
    )
    sections.append("")
    if record["notes"]:
        for note in record["notes"]:
            sections.append(f"*Note: {note}*")
        sections.append("")
    sections.append("| check | paper / expected | measured | status |")
    sections.append("|---|---|---|---|")
    for check in record["checks"]:
        mark = "pass" if check["passed"] else "**FAIL**"
        sections.append(
            f"| {check['claim']} | {check['expected']} | {check['measured']} "
            f"| {mark} |"
        )
    sections.append("")
    return sections


def render_experiments_markdown(records: list[dict]) -> str:
    """The EXPERIMENTS.md body for experiment records, historical format."""
    sections: list[str] = [EXPERIMENTS_HEADER]
    for record in records:
        sections.extend(
            _record_sections(
                record, f"## {record['job_id']} — {record['title']}\n"
            )
        )
    return "\n".join(sections)


def render_lab_report(outcomes: list[JobOutcome], run_id: str) -> str:
    """The per-run report.md: summary table plus every job's section.

    Deliberately free of wall-clock timings: for one batch against one
    store state, serial, pool and spool backends all render the exact
    same bytes, so reports diff cleanly across backends and hosts.
    (Per-job timings live in manifest.json, which may vary.)
    """
    sections = [f"# repro lab report — run `{run_id}`\n"]
    sections.append("| job | kind | status | source |")
    sections.append("|---|---|---|---|")
    for outcome in outcomes:
        status = "pass" if outcome.all_passed else "**FAIL**"
        source = "cache" if outcome.cached else "executed"
        sections.append(
            f"| {outcome.spec.job_id} | {outcome.spec.kind} | {status} "
            f"| {source} |"
        )
    sections.append("")
    for outcome in outcomes:
        record = outcome.record
        sections.extend(
            _record_sections(
                record, f"## {record['job_id']} — {record['title']}\n"
            )
        )
    return "\n".join(sections)


def write_run_artifacts(
    store: ArtifactStore, report: ExecutionReport
) -> Path:
    """Write manifest.json + report.md for one run; returns the directory."""
    run_dir = store.runs_dir / report.run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    import repro
    from repro.lab.store import _utc_now
    from repro.obs.history import current_git_commit

    manifest = {
        "run_id": report.run_id,
        "created_at": _utc_now(),
        "package_version": repro.__version__,
        "git_commit": current_git_commit(),
        "backend": report.metrics.get("backend", ""),
        "metrics": report.metrics,
        "job_count": len(report.outcomes),
        "cache_hits": report.cache_hits,
        "executed": report.executed,
        "failures": [o.spec.job_id for o in report.failures],
        "elapsed_seconds": report.elapsed_seconds,
        "jobs": [
            {
                "job_id": outcome.spec.job_id,
                "kind": outcome.spec.kind,
                "config_hash": outcome.record["config_hash"],
                "package_version": outcome.record["package_version"],
                "all_passed": outcome.all_passed,
                "cached": outcome.cached,
                "elapsed_seconds": outcome.elapsed_seconds,
                # Crashed jobs are deliberately not cached, so they have
                # no artifact file to point at.
                "artifact": (
                    str(store.artifact_path(outcome.record["config_hash"]))
                    if store.artifact_path(
                        outcome.record["config_hash"]
                    ).is_file()
                    else None
                ),
            }
            for outcome in report.outcomes
        ],
    }
    (run_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    (run_dir / "report.md").write_text(
        render_lab_report(report.outcomes, report.run_id)
    )
    return run_dir


def recent_run_metrics(store: ArtifactStore, limit: int = 10) -> list[dict]:
    """The newest runs' manifest metrics, newest first.

    Backs ``repro lab status --metrics``: each entry is one run's
    identity plus the batch metrics block ``run_jobs`` recorded
    (cache-hit rate, queue latencies, backend counters).  Manifests
    written before the metrics block existed appear with an empty
    ``metrics`` dict rather than being skipped, so the recent-run
    window stays honest.
    """
    if not store.runs_dir.is_dir():
        return []
    entries: list[dict] = []
    for path in store.runs_dir.glob("*/manifest.json"):
        try:
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            continue
        if not isinstance(manifest, dict) or "run_id" not in manifest:
            continue
        metrics = manifest.get("metrics")
        entries.append(
            {
                "run_id": manifest["run_id"],
                "created_at": manifest.get("created_at", ""),
                "backend": manifest.get("backend", ""),
                "git_commit": manifest.get("git_commit", ""),
                "job_count": manifest.get("job_count", 0),
                "failures": len(manifest.get("failures", [])),
                "elapsed_seconds": manifest.get("elapsed_seconds", 0.0),
                "metrics": metrics if isinstance(metrics, dict) else {},
            }
        )
    entries.sort(key=lambda e: (e["created_at"], e["run_id"]), reverse=True)
    return entries[:limit]


def cached_records(
    store: ArtifactStore, registry: dict[str, JobSpec]
) -> tuple[list[tuple[JobSpec, dict]], list[str]]:
    """Partition the registry into (spec, cached record) pairs + missing ids.

    The single definition of "is this job cached?" — `repro lab status`
    and `summarize` both consume it, so they can never disagree.
    """
    cached: list[tuple[JobSpec, dict]] = []
    missing: list[str] = []
    for job_id in sorted(registry):
        spec = registry[job_id]
        record = store.load(spec.config_hash())
        if record is None:
            missing.append(job_id)
        else:
            cached.append((spec, record))
    return cached, missing


def status_payload(
    store: ArtifactStore, registry: dict[str, JobSpec]
) -> dict:
    """`repro lab status` as one JSON-safe dict (the --json output).

    The same payload backs the human-readable table, so the two views
    can never disagree — which is the point: spool and merge debugging
    scripts consume this instead of opening index.sqlite by hand.
    """
    cached, missing = cached_records(store, registry)
    by_id = {spec.job_id: record for spec, record in cached}
    jobs = []
    for job_id in sorted(registry):
        record = by_id.get(job_id)
        entry: dict = {"job_id": job_id, "kind": registry[job_id].kind}
        if record is None:
            entry["cached"] = False
        else:
            entry.update(
                cached=True,
                all_passed=bool(record["all_passed"]),
                elapsed_seconds=float(record["elapsed_seconds"]),
                config_hash=record["config_hash"],
            )
        jobs.append(entry)
    return {
        "root": str(store.root),
        "registered": len(registry),
        "cached": len(cached),
        "missing": missing,
        "jobs": jobs,
        "runs": store.runs(limit=5),
    }


def summarize_cached(
    store: ArtifactStore, registry: dict[str, JobSpec]
) -> tuple[str | None, list[str]]:
    """Markdown over every cached registered job, plus the missing ids.

    Returns ``(None, missing)`` when nothing is cached for the current
    code — there is nothing to summarise without running.
    """
    cached, missing = cached_records(store, registry)
    if not cached:
        return None, missing
    sections = ["# repro lab summary — cached results\n"]
    experiment_count = sum(
        1 for spec, _ in cached if spec.kind == EXPERIMENT_KIND
    )
    sections.append(
        f"{len(cached)} cached jobs ({experiment_count} experiments); "
        f"{len(missing)} registered jobs not cached."
    )
    sections.append("")
    for spec, record in cached:
        sections.extend(
            _record_sections(
                record, f"## {record['job_id']} — {record['title']}\n"
            )
        )
    return "\n".join(sections), missing
