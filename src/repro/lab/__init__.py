"""repro.lab — parallel experiment orchestration with result caching.

The lab turns everything this repository can measure — the E01..E16
paper-reproduction experiments, the design-space sweeps and the A1..A7
ablation benches — into declaratively-specified jobs that fan out over
a pluggable execution backend and land in a content-addressed artifact
store:

* :mod:`repro.lab.jobs` — the job registry and worker entry point,
  including parameterised experiment jobs (``experiment_spec``) and
  scenario jobs (``scenario_job``) whose params carry a full
  :class:`repro.scenarios.ScenarioSpec` into the cache key;
* :mod:`repro.lab.hashing` — canonical config hashing + cell codecs;
* :mod:`repro.lab.store` — JSON artifacts + SQLite cross-run index,
  ``merge`` for folding detached stores back in, ``verify`` for
  recomputing stored config hashes;
* :mod:`repro.lab.backends` — the :class:`ExecutorBackend` protocol
  and its in-process implementations;
* :mod:`repro.lab.spool` — the filesystem-spool sharding protocol
  (coordinator + ``repro lab worker`` loop);
* :mod:`repro.lab.executor` — cache-aware batch execution over any
  backend;
* :mod:`repro.lab.manifest` — per-run manifest.json / report.md and the
  byte-stable EXPERIMENTS.md renderer;
* :mod:`repro.lab.diffing` — cross-run regression diffing
  (``repro lab diff``).

## Backends

Every ``run_jobs`` call (and ``repro lab run|sweep --backend ...``)
executes its cache misses through one of:

* ``serial`` — :class:`SerialBackend`: everything in this process, in
  order.  Zero dependencies, deterministic scheduling; what tests and
  debuggers want.
* ``pool`` — :class:`ProcessPoolBackend` (default): one worker process
  per CPU via ``ProcessPoolExecutor``; single-job batches short-circuit
  to in-process execution.  One-machine parallelism.
* ``spool`` — :class:`SpoolBackend`: the coordinator writes pending
  jobs as JSON files under ``<lab-root>/spool/<run-id>/pending/``; any
  number of ``repro lab worker`` processes — on this host or any host
  sharing the directory — claim jobs via atomic rename, execute them,
  and write results into ``done/``.  Stale claims (dead workers) are
  requeued by heartbeat age.  Shard-anywhere parallelism.

All three produce byte-identical ``report.md`` for the same batch
against the same store state; backends only decide *where* jobs run,
never what gets recorded.

Quickstart::

    from repro.lab import ArtifactStore, build_registry, run_jobs

    store = ArtifactStore(".repro-lab")
    registry = build_registry()
    report = run_jobs(registry.values(), store=store)
    assert report.all_passed          # every paper check reproduced
    rerun = run_jobs(registry.values(), store=store)
    assert rerun.cache_hits == len(registry)   # second pass is free

The CLI front end is
``repro lab run|sweep|worker|merge|status|summarize|index|diff``.
"""

from repro.lab.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    JobFailure,
    ProcessPoolBackend,
    SerialBackend,
    UnknownBackendError,
    default_worker_count,
    resolve_backend,
)
from repro.lab.diffing import (
    JobDiff,
    RunDiff,
    UnknownRunError,
    diff_runs,
    render_diff,
)
from repro.lab.executor import (
    ExecutionReport,
    JobOutcome,
    new_run_id,
    run_jobs,
)
from repro.lab.hashing import (
    ArtifactCodingError,
    canonical_json,
    config_hash,
    decode_rows,
    encode_rows,
)
from repro.lab.jobs import (
    ABLATION_KIND,
    EXPERIMENT_KIND,
    SCENARIO_KIND,
    SWEEP_KIND,
    JobSpec,
    UnknownJobError,
    build_registry,
    execute_job,
    experiment_spec,
    resolve,
    scenario_job,
)
from repro.lab.manifest import (
    cached_records,
    recent_run_metrics,
    render_experiments_markdown,
    render_lab_report,
    status_payload,
    summarize_cached,
    write_run_artifacts,
)
from repro.lab.spool import (
    SpoolBackend,
    SpoolError,
    SpoolRun,
    WorkerStats,
    job_from_json,
    job_to_json,
    serve,
)
from repro.lab.store import ArtifactStore, StoreMergeError, default_lab_root

__all__ = [
    "ABLATION_KIND",
    "ArtifactCodingError",
    "ArtifactStore",
    "BACKEND_NAMES",
    "EXPERIMENT_KIND",
    "ExecutionReport",
    "ExecutorBackend",
    "JobDiff",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "ProcessPoolBackend",
    "RunDiff",
    "SCENARIO_KIND",
    "SWEEP_KIND",
    "SerialBackend",
    "SpoolBackend",
    "SpoolError",
    "SpoolRun",
    "StoreMergeError",
    "UnknownBackendError",
    "UnknownJobError",
    "UnknownRunError",
    "WorkerStats",
    "build_registry",
    "cached_records",
    "canonical_json",
    "config_hash",
    "decode_rows",
    "default_lab_root",
    "default_worker_count",
    "diff_runs",
    "encode_rows",
    "execute_job",
    "experiment_spec",
    "job_from_json",
    "job_to_json",
    "new_run_id",
    "recent_run_metrics",
    "render_diff",
    "render_experiments_markdown",
    "render_lab_report",
    "resolve",
    "resolve_backend",
    "run_jobs",
    "scenario_job",
    "serve",
    "status_payload",
    "summarize_cached",
    "write_run_artifacts",
]
