"""repro.lab — parallel experiment orchestration with result caching.

The lab turns everything this repository can measure — the E01..E16
paper-reproduction experiments, the design-space sweeps and the A1..A7
ablation benches — into declaratively-specified jobs that fan out over
a process pool and land in a content-addressed artifact store:

* :mod:`repro.lab.jobs` — the job registry and worker entry point,
  including parameterised experiment jobs (``experiment_spec``) and
  scenario jobs (``scenario_job``) whose params carry a full
  :class:`repro.scenarios.ScenarioSpec` into the cache key;
* :mod:`repro.lab.hashing` — canonical config hashing + cell codecs;
* :mod:`repro.lab.store` — JSON artifacts + SQLite cross-run index;
* :mod:`repro.lab.executor` — cache-aware ``ProcessPoolExecutor`` fan-out;
* :mod:`repro.lab.manifest` — per-run manifest.json / report.md and the
  byte-stable EXPERIMENTS.md renderer;
* :mod:`repro.lab.diffing` — cross-run regression diffing
  (``repro lab diff``).

Quickstart::

    from repro.lab import ArtifactStore, build_registry, run_jobs

    store = ArtifactStore(".repro-lab")
    registry = build_registry()
    report = run_jobs(registry.values(), store=store)
    assert report.all_passed          # every paper check reproduced
    rerun = run_jobs(registry.values(), store=store)
    assert rerun.cache_hits == len(registry)   # second pass is free

The CLI front end is ``repro lab run|status|summarize|index``.
"""

from repro.lab.diffing import (
    JobDiff,
    RunDiff,
    UnknownRunError,
    diff_runs,
    render_diff,
)
from repro.lab.executor import (
    ExecutionReport,
    JobOutcome,
    default_worker_count,
    run_jobs,
)
from repro.lab.hashing import (
    ArtifactCodingError,
    canonical_json,
    config_hash,
    decode_rows,
    encode_rows,
)
from repro.lab.jobs import (
    ABLATION_KIND,
    EXPERIMENT_KIND,
    SCENARIO_KIND,
    SWEEP_KIND,
    JobSpec,
    UnknownJobError,
    build_registry,
    execute_job,
    experiment_spec,
    resolve,
    scenario_job,
)
from repro.lab.manifest import (
    cached_records,
    render_experiments_markdown,
    render_lab_report,
    summarize_cached,
    write_run_artifacts,
)
from repro.lab.store import ArtifactStore, default_lab_root

__all__ = [
    "ABLATION_KIND",
    "ArtifactCodingError",
    "ArtifactStore",
    "EXPERIMENT_KIND",
    "ExecutionReport",
    "JobDiff",
    "JobOutcome",
    "JobSpec",
    "RunDiff",
    "SCENARIO_KIND",
    "SWEEP_KIND",
    "UnknownJobError",
    "UnknownRunError",
    "build_registry",
    "cached_records",
    "canonical_json",
    "config_hash",
    "decode_rows",
    "default_lab_root",
    "default_worker_count",
    "diff_runs",
    "encode_rows",
    "execute_job",
    "experiment_spec",
    "render_diff",
    "render_experiments_markdown",
    "render_lab_report",
    "resolve",
    "run_jobs",
    "scenario_job",
    "summarize_cached",
    "write_run_artifacts",
]
