"""Cross-run regression diffing over cached lab artifacts.

``repro lab diff <run-a> <run-b>`` compares what two recorded runs
actually produced — check outcomes, table rows (cycle counts), job
sets — across the artifact store and the SQLite ``results`` index.
Because artifacts are content-addressed over job params, package
version and source fingerprint, two runs of different package versions
(or different design points) keep separate artifacts, which is exactly
what makes the comparison meaningful.

Severity model:

* **regression** — a job that passed all checks in run A and fails in
  run B, or any individual check that flipped pass -> fail;
* **change** — same verdicts but different table rows (e.g. a latency
  that moved) or a check whose measured value moved while still
  passing;
* **added/removed** — jobs present in only one run.

Regressions drive the non-zero exit status; changes are reported but
benign (a diff across intentional re-tuning should not fail CI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.lab.hashing import decode_rows
from repro.lab.store import ArtifactStore


class UnknownRunError(ReproError):
    """A run id with no manifest (and no index row) under the lab root."""


@dataclass(frozen=True)
class JobDiff:
    """How one job differs between the two runs."""

    job_id: str
    severity: str  # "regression" | "change"
    detail: str


@dataclass
class RunDiff:
    """Everything that differs between two runs."""

    run_a: str
    run_b: str
    compared: int = 0
    identical: int = 0
    regressions: list[JobDiff] = field(default_factory=list)
    changes: list[JobDiff] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def _run_records(
    store: ArtifactStore, run_id: str, warnings: list[str]
) -> dict[str, dict]:
    """``job_id -> stored record`` for one run.

    The run's manifest lists every job with its config hash; the
    records come from the artifact store.  When the manifest is gone
    (pruned runs directory) the SQLite ``results`` table still knows
    which artifacts the run *executed* — but not its cache hits, which
    never write an index row under that run id — so the fallback view
    can be partial and says so via ``warnings`` (surfaced in the
    rendered diff).  A job whose artifact is missing (crashed jobs are
    never cached) contributes a minimal failed record built from
    manifest metadata, so a crash in run B still shows up as a
    regression.
    """
    manifest_path = store.runs_dir / run_id / "manifest.json"
    records: dict[str, dict] = {}
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise UnknownRunError(
                f"manifest for run {run_id!r} is unreadable: {error}"
            ) from None
        for job in manifest.get("jobs", []):
            record = store.load(job["config_hash"])
            if record is None:
                record = {
                    "job_id": job["job_id"],
                    "kind": job.get("kind", ""),
                    "title": "",
                    "headers": [],
                    "rows": [],
                    "checks": [],
                    "notes": [],
                    "all_passed": bool(job.get("all_passed", False)),
                }
            records[job["job_id"]] = record
        return records
    for row in store.results():
        if row["run_id"] == run_id:
            record = store.load(row["config_hash"])
            if record is not None:
                records[record["job_id"]] = record
    if not records:
        known = sorted(
            path.name for path in store.runs_dir.glob("*") if path.is_dir()
        ) if store.runs_dir.is_dir() else []
        raise UnknownRunError(
            f"no manifest or indexed results for run {run_id!r} under "
            f"{store.root} (recorded runs: {', '.join(known) or 'none'})"
        )
    warnings.append(
        f"run {run_id} has no manifest; comparing only the "
        f"{len(records)} job(s) the index shows it executed — its cache "
        "hits are not recorded and are missing from this diff"
    )
    return records


def _diff_checks(job_id: str, a: dict, b: dict, diff: RunDiff) -> bool:
    """Compare check lists; returns True when anything differed."""
    checks_a = {check["claim"]: check for check in a.get("checks", [])}
    checks_b = {check["claim"]: check for check in b.get("checks", [])}
    differed = False
    for claim in checks_a.keys() & checks_b.keys():
        was, now = checks_a[claim], checks_b[claim]
        if was["passed"] and not now["passed"]:
            diff.regressions.append(
                JobDiff(
                    job_id,
                    "regression",
                    f"check regressed: {claim!r} "
                    f"(expected {now['expected']}, measured {now['measured']})",
                )
            )
            differed = True
        elif was["measured"] != now["measured"]:
            diff.changes.append(
                JobDiff(
                    job_id,
                    "change",
                    f"check {claim!r} measured "
                    f"{was['measured']} -> {now['measured']}",
                )
            )
            differed = True
    only_a = sorted(checks_a.keys() - checks_b.keys())
    only_b = sorted(checks_b.keys() - checks_a.keys())
    if only_a or only_b:
        diff.changes.append(
            JobDiff(
                job_id,
                "change",
                f"check set changed ({len(only_a)} dropped, "
                f"{len(only_b)} new)",
            )
        )
        differed = True
    return differed


def _diff_rows(job_id: str, a: dict, b: dict, diff: RunDiff) -> bool:
    rows_a = decode_rows(a.get("rows", []))
    rows_b = decode_rows(b.get("rows", []))
    if a.get("headers", []) != b.get("headers", []):
        diff.changes.append(
            JobDiff(job_id, "change", "table headers changed")
        )
        return True
    if rows_a == rows_b:
        return False
    changed = sum(1 for pair in zip(rows_a, rows_b) if pair[0] != pair[1])
    changed += abs(len(rows_a) - len(rows_b))
    examples = []
    for row_a, row_b in zip(rows_a, rows_b):
        if row_a != row_b:
            examples.append(f"{row_a!r} -> {row_b!r}")
            if len(examples) == 2:
                break
    detail = f"{changed} table row(s) differ"
    if len(rows_a) != len(rows_b):
        detail += f" (row count {len(rows_a)} -> {len(rows_b)})"
    if examples:
        detail += f"; e.g. {'; '.join(examples)}"
    diff.changes.append(JobDiff(job_id, "change", detail))
    return True


def diff_runs(store: ArtifactStore, run_a: str, run_b: str) -> RunDiff:
    """Compare two recorded runs' cached artifacts."""
    warnings: list[str] = []
    records_a = _run_records(store, run_a, warnings)
    records_b = _run_records(store, run_b, warnings)
    diff = RunDiff(run_a=run_a, run_b=run_b, warnings=warnings)
    diff.added = sorted(records_b.keys() - records_a.keys())
    diff.removed = sorted(records_a.keys() - records_b.keys())
    for job_id in sorted(records_a.keys() & records_b.keys()):
        a, b = records_a[job_id], records_b[job_id]
        diff.compared += 1
        differed = False
        if a["all_passed"] and not b["all_passed"]:
            diff.regressions.append(
                JobDiff(
                    job_id,
                    "regression",
                    "job passed every check in "
                    f"{run_a} but fails in {run_b}",
                )
            )
            differed = True
        elif not a["all_passed"] and b["all_passed"]:
            diff.changes.append(
                JobDiff(job_id, "change", "job now passes (was failing)")
            )
            differed = True
        differed = _diff_checks(job_id, a, b, diff) or differed
        differed = _diff_rows(job_id, a, b, diff) or differed
        if not differed:
            diff.identical += 1
    return diff


def render_diff(diff: RunDiff) -> str:
    """Human-readable diff summary, one block per category."""
    lines = [
        f"lab diff: {diff.run_a} -> {diff.run_b}",
        f"compared {diff.compared} common job(s); {diff.identical} identical",
    ]
    for warning in diff.warnings:
        lines.append(f"WARNING: {warning}")
    if diff.removed:
        lines.append(f"only in {diff.run_a}: {', '.join(diff.removed)}")
    if diff.added:
        lines.append(f"only in {diff.run_b}: {', '.join(diff.added)}")
    for label, items in (
        ("REGRESSION", diff.regressions),
        ("change", diff.changes),
    ):
        for item in items:
            lines.append(f"[{label}] {item.job_id}: {item.detail}")
    if not (diff.regressions or diff.changes or diff.added or diff.removed):
        lines.append("runs are identical")
    elif not diff.regressions:
        lines.append("no regressions")
    else:
        lines.append(f"{len(diff.regressions)} regression(s)")
    return "\n".join(lines)
