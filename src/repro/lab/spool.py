"""Filesystem-spool sharding: ship lab jobs to any worker on any host.

The spool turns a shared directory (NFS mount, synced checkout, plain
local tmpdir) into a job queue with no broker and no sockets::

    <spool-dir>/<run-id>/
        pending/<seq>__<job>.json   published JobSpecs nobody owns yet
        claimed/<seq>__<job>.json   owned by a worker; mtime is its heartbeat
        done/<seq>__<job>.json      payload (or failure), written atomically
        CLOSED                      coordinator marker: run abandoned

The coordinator (:class:`SpoolBackend`) publishes every pending job as
canonical JSON, then polls ``done/`` and requeues stale claims.  Any
number of ``repro lab worker <spool-dir>`` processes claim jobs by
atomically renaming ``pending/X`` to ``claimed/X`` — exactly one
claimant can win a POSIX rename, so no job runs twice concurrently —
execute them, and write results into ``done/`` via temp-file +
``os.replace`` so a crash can never leave a truncated result behind.

Spool state is transient: once every result is collected the
coordinator *destroys* its run directory (artifacts live in the
store), so workers keep serving batch after batch against a clean
spool.  A ``CLOSED`` marker that lingers means the coordinator gave up
(timeout, crash, store error); workers never claim from closed runs —
nobody would collect the results — and exit when only abandoned runs
remain.

Crash safety: a worker that dies mid-job leaves its claim file behind
with a frozen mtime.  Live workers heartbeat by touching their claim
every few seconds, so the coordinator can tell dead from slow: claims
older than ``stale_after`` are renamed back into ``pending/`` and the
next worker (or the coordinator itself with ``participate=True``)
picks them up.  Jobs are deterministic and results are written
atomically, so the rare double-execution after a requeue race is
harmless — the second ``done`` write replaces the first with the same
content.

Nothing in a spool file is host-specific — job specs are ids + JSON
params (whole scenario design points travel inside them) — so the
directory can live on any shared or synced filesystem.  Workers own no
artifact store: results travel back as ``done`` files and only the
coordinator persists them.  (Detached stores — the ``repro lab merge``
workflow — come from running whole *coordinators* against separate lab
roots, e.g. ``repro lab run`` on another machine.)
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.errors import ReproError
from repro.lab.backends import JobFailure, describe_error
from repro.lab.hashing import canonical_json
from repro.lab.jobs import JobSpec, execute_job
from repro.lab.store import atomic_write_text as _atomic_write

PENDING_DIR = "pending"
CLAIMED_DIR = "claimed"
DONE_DIR = "done"
CLOSED_MARKER = "CLOSED"
STOP_MARKER = "STOP"
#: Touched and stat'ed to read the spool filesystem's clock, so claim
#: ages are measured by the clock that stamped the claim mtimes.
CLOCK_PROBE = ".clock-probe"

DEFAULT_POLL_INTERVAL = 0.05
DEFAULT_STALE_AFTER = 60.0
DEFAULT_HEARTBEAT = 5.0


class SpoolError(ReproError):
    """A malformed spool file or an unusable spool directory."""


# -- JobSpec wire format --------------------------------------------------


def job_to_json(spec: JobSpec) -> str:
    """One JobSpec as canonical JSON — the spool's wire format."""
    return canonical_json(
        {
            "job_id": spec.job_id,
            "kind": spec.kind,
            "title": spec.title,
            "params": [[key, value] for key, value in spec.params],
        }
    )


def job_from_json(text: str) -> JobSpec:
    """Inverse of :func:`job_to_json`; raises :class:`SpoolError` on junk.

    Param values are re-frozen (JSON lists back to tuples) with the
    same normalisation ``experiment_spec`` applies, so a round-tripped
    spec compares equal to the original and — because ``canonical_json``
    serialises tuples and lists identically — hashes to the same
    artifact address.
    """
    from repro.scenarios.spec import freeze_value

    try:
        data = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SpoolError(f"unreadable spooled job: {error}") from None
    if not isinstance(data, dict):
        raise SpoolError(f"spooled job is not an object: {data!r}")
    missing = [key for key in ("job_id", "kind", "title", "params") if key not in data]
    if missing:
        raise SpoolError(f"spooled job misses key(s): {', '.join(missing)}")
    try:
        params = tuple(
            (str(key), freeze_value(value, context=f"spooled param {key!r}"))
            for key, value in data["params"]
        )
    except (TypeError, ValueError, ReproError) as error:
        raise SpoolError(f"bad spooled job params: {error}") from None
    return JobSpec(str(data["job_id"]), str(data["kind"]), str(data["title"]), params)


def _spool_name(sequence: int, job_id: str) -> str:
    """A filesystem-safe, sortable spool filename for one job."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", job_id)[:80]
    return f"{sequence:04d}__{safe}.json"


# -- coordinator side -----------------------------------------------------


class SpoolRun:
    """Coordinator-side handle on one run's spool directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def pending_dir(self) -> Path:
        return self.root / PENDING_DIR

    @property
    def claimed_dir(self) -> Path:
        return self.root / CLAIMED_DIR

    @property
    def done_dir(self) -> Path:
        return self.root / DONE_DIR

    @property
    def closed_path(self) -> Path:
        return self.root / CLOSED_MARKER

    @property
    def closed(self) -> bool:
        return self.closed_path.exists()

    def create(self) -> None:
        for directory in (self.pending_dir, self.claimed_dir, self.done_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def publish(self, specs: Sequence[JobSpec]) -> dict[str, JobSpec]:
        """Write one pending file per spec; returns filename -> spec."""
        published: dict[str, JobSpec] = {}
        for sequence, spec in enumerate(specs):
            name = _spool_name(sequence, spec.job_id)
            _atomic_write(self.pending_dir / name, job_to_json(spec))
            published[name] = spec
        return published

    def _spool_now(self) -> float:
        """The spool filesystem's idea of "now".

        Claim-file mtimes are stamped by whatever host mounts the spool
        (an NFS server, a container with a drifted clock), so comparing
        them against the coordinator's ``time.time()`` mismeasures ages
        by the full clock skew — enough to requeue every live claim, or
        never requeue dead ones.  Touching a probe file and reading its
        mtime back asks the same clock that stamped the claims.  Falls
        back to the local clock only if the probe cannot be written.
        """
        probe = self.root / CLOCK_PROBE
        try:
            probe.touch()
            return probe.stat().st_mtime
        except OSError:
            return time.time()

    def requeue_stale(self, stale_after: float) -> list[str]:
        """Claims whose heartbeat stopped go back to pending; returns names.

        A live worker touches its claim file every few seconds, so a
        claim older than ``stale_after`` belongs to a dead worker.  Ages
        are measured against the spool filesystem's clock (see
        :meth:`_spool_now`), not the coordinator's, so clock skew
        between the two cannot requeue live claims or strand dead
        ones.  The rename back into ``pending/`` is atomic; a worker
        that turns out to be merely slow still writes its ``done``
        file, which wins regardless.
        """
        if not self.claimed_dir.is_dir():
            return []
        requeued = []
        now = self._spool_now()
        for path in sorted(self.claimed_dir.glob("*.json")):
            if (self.done_dir / path.name).exists():
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age <= stale_after:
                continue
            try:
                os.rename(path, self.pending_dir / path.name)
            except OSError:
                continue
            requeued.append(path.name)
        return requeued

    def collect(self, seen: set[str]) -> list[tuple[str, dict | None]]:
        """New ``done`` results, as (filename, body|None) pairs.

        ``None`` means the done file exists but cannot be parsed — the
        caller turns that into a failed outcome rather than hanging the
        batch.  Leftover pending/claimed twins of a finished job are
        removed so requeue races cannot resurrect it.
        """
        if not self.done_dir.is_dir():
            return []
        fresh: list[tuple[str, dict | None]] = []
        for path in sorted(self.done_dir.glob("*.json")):
            if path.name in seen:
                continue
            try:
                body = json.loads(path.read_text())
                if not isinstance(body, dict):
                    body = None
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                body = None
            fresh.append((path.name, body))
            for stale_twin in (
                self.pending_dir / path.name,
                self.claimed_dir / path.name,
            ):
                try:
                    stale_twin.unlink()
                except OSError:
                    pass
        return fresh

    def close(self) -> None:
        """Mark the run abandoned/complete: workers stop claiming from it."""
        _atomic_write(self.closed_path, "")

    def destroy(self) -> None:
        """Remove the run's spool directory (results live in the store).

        Called after every result is collected, so workers never
        mistake a finished batch for ongoing work and the next batch
        starts against a clean spool.  A straggler worker renaming a
        duplicate claim can race the removal; one retry absorbs that,
        and a leftover partial directory is merely re-served noise.
        """
        import shutil

        for _ in range(2):
            shutil.rmtree(self.root, ignore_errors=True)
            if not self.root.exists():
                return
            time.sleep(0.1)


class SpoolBackend:
    """Coordinator: publish the batch, poll for results, requeue the dead.

    ``participate=True`` makes the coordinator claim and execute jobs
    itself whenever polling finds nothing new — with zero external
    workers that degenerates to serial execution, which keeps the
    backend usable (and testable) without orchestration.  ``timeout``
    bounds the total wait; ``None`` waits forever (workers may be
    humans starting terminals).
    """

    name = "spool"

    def __init__(
        self,
        spool_dir: str | Path,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        stale_after: float = DEFAULT_STALE_AFTER,
        participate: bool = False,
        timeout: float | None = None,
        announce: Callable[[str], None] | None = None,
    ):
        self.spool_dir = Path(spool_dir)
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self.participate = participate
        self.timeout = timeout
        self.announce = announce
        self._published = 0
        self._requeued = 0
        self._self_executed = 0
        self._workers: set[str] = set()
        self._heartbeats = 0

    def backend_metrics(self) -> dict:
        """Spool-protocol counters for the run manifest's metrics block.

        Reflects the most recent :meth:`run`: jobs published, stale
        claims requeued, distinct ``host:pid`` workers that returned
        results (the coordinator counts as one when participating), and
        total claim heartbeats observed.
        """
        return {
            "spool_published": self._published,
            "spool_requeued": self._requeued,
            "spool_self_executed": self._self_executed,
            "spool_workers": len(self._workers),
            "spool_worker_heartbeats": self._heartbeats,
        }

    def run(
        self, pending: Sequence[JobSpec], *, run_id: str
    ) -> Iterator[tuple[JobSpec, dict | JobFailure]]:
        spool = SpoolRun(self.spool_dir / run_id)
        spool.create()
        published = spool.publish(pending)
        self._published = len(published)
        self._requeued = self._self_executed = self._heartbeats = 0
        self._workers = set()
        if self.announce is not None:
            self.announce(
                f"spooled {len(published)} job(s) under {spool.root}; "
                f"serve them with: repro lab worker {self.spool_dir}"
            )
        started = time.monotonic()
        seen: set[str] = set()
        try:
            while len(seen) < len(published):
                progressed = False
                for name, body in spool.collect(seen):
                    seen.add(name)
                    self._note_worker(body)
                    spec = published.get(name)
                    if spec is None:
                        continue  # a file this batch never published
                    progressed = True
                    yield spec, _completion(body)
                if progressed:
                    continue
                self._requeued += len(spool.requeue_stale(self.stale_after))
                if self.participate:
                    claim = claim_next(spool.root)
                    if claim is not None:
                        execute_claim(spool.root, claim)
                        self._self_executed += 1
                        continue
                if (
                    self.timeout is not None
                    and time.monotonic() - started > self.timeout
                ):
                    raise SpoolError(
                        f"spool run {run_id} timed out after "
                        f"{self.timeout:.0f}s with "
                        f"{len(published) - len(seen)} job(s) unserved — "
                        f"are any workers running against {self.spool_dir}?"
                    )
                time.sleep(self.poll_interval)
        except BaseException:
            # Timeout, a store error in the consumer, or an early
            # generator close: mark the run abandoned so workers stop
            # claiming from it, but keep the files for post-mortem.
            spool.close()
            raise
        else:
            # Every result is collected; the spool run is spent state.
            spool.destroy()

    def _note_worker(self, body: dict | None) -> None:
        """Accumulate the worker stamp a done-file body carries."""
        if not isinstance(body, dict):
            return
        info = body.get("worker")
        if not isinstance(info, dict):
            return
        self._workers.add(f"{info.get('host', '?')}:{info.get('pid', '?')}")
        beats = info.get("heartbeats")
        if isinstance(beats, int) and beats > 0:
            self._heartbeats += beats


def _completion(body: dict | None) -> dict | JobFailure:
    """One done-file body to the backend completion contract."""
    if body is None:
        return JobFailure("worker wrote an unreadable done file")
    if "failure" in body:
        return JobFailure(str(body["failure"]))
    payload = body.get("payload")
    if not isinstance(payload, dict):
        return JobFailure("worker done file carries no payload")
    return payload


# -- worker side ----------------------------------------------------------


def _hostname() -> str:
    """This host's name, best effort (spools may span machines)."""
    import socket

    try:
        return socket.gethostname()
    except OSError:
        return "unknown"


class _Heartbeat:
    """Touch a claim file periodically so the coordinator sees us alive.

    ``count`` records how many beats landed — the worker stamps it into
    its done file so the coordinator's metrics can tell a quick job
    (zero beats) from one that held a claim through several intervals.
    """

    def __init__(self, path: Path, interval: float):
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self.count = 0

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._path)
            except OSError:
                pass  # requeued or already collected; the done write decides
            else:
                self.count += 1

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def claim_next(run_root: Path) -> Path | None:
    """Atomically claim one pending job; None when nothing is claimable.

    Closed runs are never claimed from: the coordinator is gone
    (timeout or crash), so nobody would ever collect the result —
    workers only persist anything through their coordinator's store.
    """
    if (run_root / CLOSED_MARKER).exists():
        return None
    pending = run_root / PENDING_DIR
    if not pending.is_dir():
        return None
    for path in sorted(pending.glob("*.json")):
        target = run_root / CLAIMED_DIR / path.name
        try:
            os.rename(path, target)
        except OSError:
            continue  # another worker won the rename
        return target
    return None


def execute_claim(
    run_root: Path, claim: Path, *, heartbeat: float = DEFAULT_HEARTBEAT
) -> str | None:
    """Execute one claimed job and write its done file atomically.

    Returns the job id, or None when the claim vanished before we could
    read it (the coordinator requeued it as stale).  Job exceptions
    become a ``failure`` body — exactly the string every other backend
    reports — never a worker crash.
    """
    try:
        text = claim.read_text()
    except OSError:
        return None
    try:
        spec = job_from_json(text)
    except SpoolError as error:
        # A corrupt job file must not kill the worker: report it as a
        # failure (the coordinator matches done files by name, so no
        # job_id is needed) and keep serving.
        _atomic_write(
            run_root / DONE_DIR / claim.name,
            canonical_json({"failure": describe_error(error).message}),
        )
        try:
            claim.unlink()
        except OSError:
            pass
        return None
    with _Heartbeat(claim, heartbeat) as beats:
        try:
            payload = execute_job(spec)
        except Exception as error:
            body: dict = {
                "job_id": spec.job_id,
                "failure": describe_error(error).message,
            }
        else:
            body = {"job_id": spec.job_id, "payload": payload}
    # Who served this job, and how long it held the claim (in beats):
    # the coordinator folds these into the run's backend metrics.
    body["worker"] = {
        "pid": os.getpid(),
        "host": _hostname(),
        "heartbeats": beats.count,
    }
    try:
        _atomic_write(run_root / DONE_DIR / claim.name, canonical_json(body))
    except OSError:
        # The coordinator collected a duplicate of this job and destroyed
        # the run while we were executing; our result is redundant.
        return None
    try:
        claim.unlink()
    except OSError:
        pass
    return spec.job_id


@dataclass
class WorkerStats:
    """What one ``serve`` loop accomplished."""

    executed: int = 0
    skipped: int = 0  # claims that vanished mid-read (stale requeue races)


def _discover_runs(spool: Path) -> list[Path]:
    """Run directories under a spool path (or the path itself)."""
    if (spool / PENDING_DIR).is_dir():
        return [spool]
    if not spool.is_dir():
        return []
    return sorted(
        child for child in spool.iterdir() if (child / PENDING_DIR).is_dir()
    )


def _run_abandoned(run_root: Path) -> bool:
    """Closed = the coordinator is done with it (success destroys the
    directory entirely, so a lingering closed run means abandonment)."""
    return (run_root / CLOSED_MARKER).exists()


def serve(
    spool_dir: str | Path,
    *,
    poll: float = 0.2,
    max_idle: float | None = None,
    max_jobs: int | None = None,
    once: bool = False,
    heartbeat: float = DEFAULT_HEARTBEAT,
    progress: Callable[[str], None] | None = None,
) -> WorkerStats:
    """The ``repro lab worker`` loop: claim, execute, repeat.

    ``spool_dir`` may be one run's directory or a parent spool holding
    many; jobs are claimed across every run found.  Coordinators
    destroy their run directory once every result is collected, so a
    clean spool means "waiting for the next batch" and the worker keeps
    serving batch after batch.  The loop exits after ``max_idle``
    seconds without claimable work, with ``once`` as soon as one full
    scan finds nothing to claim, after ``max_jobs`` executed jobs (a
    deterministic bound for tests and CI — no reliance on idle
    timing), when a ``STOP`` file appears in the spool directory
    (``touch <spool-dir>/STOP`` drains and stops every worker
    gracefully), or when the only runs left are abandoned (closed but
    never destroyed: a crashed or timed-out coordinator nobody will
    collect for).  A spool directory that does not exist yet is simply
    polled into existence (workers routinely start before their
    coordinator).
    """
    spool = Path(spool_dir)
    stats = WorkerStats()
    idle_since = time.monotonic()
    while True:
        runs = _discover_runs(spool)
        worked = False
        for run_root in runs:
            claim = claim_next(run_root)
            if claim is None:
                continue
            job_id = execute_claim(run_root, claim, heartbeat=heartbeat)
            worked = True
            if job_id is None:
                stats.skipped += 1
                continue
            stats.executed += 1
            if progress is not None:
                progress(f"worker: executed {job_id} ({run_root.name})")
            if max_jobs is not None and stats.executed >= max_jobs:
                return stats
        if worked:
            idle_since = time.monotonic()
            continue
        if once:
            return stats
        if (spool / STOP_MARKER).exists():
            return stats
        if runs and all(_run_abandoned(run_root) for run_root in runs):
            return stats
        if max_idle is not None and time.monotonic() - idle_since > max_idle:
            return stats
        time.sleep(poll)
