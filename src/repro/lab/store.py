"""Content-addressed artifact store with a SQLite cross-run index.

Layout under the lab root (default ``.repro-lab/``)::

    artifacts/<config-hash>/result.json   one record per job config
    runs/<run-id>/manifest.json           written by repro.lab.manifest
    runs/<run-id>/report.md
    index.sqlite                          `runs` and `results` tables

The artifact's address is the canonical hash of its job config plus
the package version (see :mod:`repro.lab.hashing`), so a re-run of an
unchanged job is a pure cache hit and an interrupted sweep resumes
from whatever finished.  The SQLite index is a *derived* view — it can
always be rebuilt from the artifact files (``rebuild_index``), which
is what ``repro lab index`` does after crashes or manual surgery.

Only the parent orchestration process writes the store; workers hand
payloads back over the process pool, keeping SQLite single-writer.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import time
from contextlib import closing
from pathlib import Path

import repro
from repro.errors import ReproError
from repro.lab.hashing import canonical_json, config_hash
from repro.lab.jobs import JobSpec

RESULT_FILENAME = "result.json"
SCHEMA_VERSION = 2


class StoreMergeError(ReproError):
    """A lab-root merge that cannot proceed (missing or self-referential)."""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    created_at TEXT NOT NULL,
    package_version TEXT NOT NULL,
    job_count INTEGER NOT NULL,
    cache_hits INTEGER NOT NULL,
    failures INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    config_hash TEXT PRIMARY KEY,
    job_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    title TEXT NOT NULL,
    package_version TEXT NOT NULL,
    all_passed INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    created_at TEXT NOT NULL,
    run_id TEXT NOT NULL,
    artifact_path TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_job ON results (job_id);
"""


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def atomic_write_text(path: Path, text: str) -> None:
    """Write-temp-then-``os.replace`` so readers never see a partial file.

    The single definition of the crash-safe write idiom used for
    artifacts, spool files and merges.  The dotted ``.{name}.{pid}.tmp``
    spelling keeps in-flight temp files invisible to every ``*.json`` /
    ``*/result.json`` glob in the lab (and PID-unique across writers).
    """
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    temp.write_text(text)
    os.replace(temp, path)


def default_lab_root() -> str:
    """The lab root every front end agrees on: $REPRO_LAB_ROOT or .repro-lab."""
    import os

    return os.environ.get("REPRO_LAB_ROOT", ".repro-lab")


class ArtifactStore:
    """Read/write access to one lab root directory."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else Path(default_lab_root())

    # -- paths -----------------------------------------------------------

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def index_path(self) -> Path:
        return self.root / "index.sqlite"

    def artifact_path(self, config_hash: str) -> Path:
        return self.artifacts_dir / config_hash / RESULT_FILENAME

    # -- artifacts -------------------------------------------------------

    def load(self, config_hash: str) -> dict | None:
        """The stored record for one config hash, or None on cache miss.

        A corrupt or unreadable artifact (interrupted write, manual
        surgery) counts as a miss: the job re-executes and the save
        overwrites the bad file.
        """
        path = self.artifact_path(config_hash)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None

    def artifact_bytes(self, config_hash: str) -> bytes | None:
        """The artifact's raw canonical-JSON bytes, or None on miss.

        What ``repro lab serve`` returns from ``GET /v1/results/<hash>``:
        the stored file is already canonical JSON, so serving it
        byte-for-byte keeps the strong ETag (the config hash) honest —
        no re-serialization that could reorder keys between requests.
        Corrupt artifacts count as misses, exactly like :meth:`load`.
        """
        path = self.artifact_path(config_hash)
        if not path.is_file():
            return None
        try:
            raw = path.read_bytes()
            json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None
        return raw

    def save(
        self,
        spec: JobSpec,
        payload: dict,
        *,
        run_id: str,
        package_version: str | None = None,
    ) -> dict:
        """Persist one job payload; returns the full stored record.

        The write is temp-file + ``os.replace``, so a crash mid-save
        (worker killed, disk full, power loss) can never leave a
        truncated ``result.json`` behind — readers see the old artifact
        or the new one, never garbage.  The record embeds the full
        ``config`` dict its address was hashed from, which is what lets
        ``repro lab index --verify`` recompute hashes and report drift
        without the original :class:`JobSpec`.
        """
        version = package_version or repro.__version__
        config = spec.config(version)
        address = config_hash(config)
        record = dict(payload)
        record.update(
            schema=SCHEMA_VERSION,
            config=config,
            config_hash=address,
            package_version=version,
            created_at=_utc_now(),
            run_id=run_id,
        )
        path = self.artifact_path(address)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, canonical_json(record))
        self._index_record(record)
        return record

    # -- sqlite index ----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.index_path)
        connection.executescript(_SCHEMA)
        return connection

    def _insert_result(
        self, connection: sqlite3.Connection, record: dict
    ) -> None:
        connection.execute(
            "INSERT OR REPLACE INTO results (config_hash, job_id, kind, "
            "title, package_version, all_passed, elapsed_seconds, "
            "created_at, run_id, artifact_path) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record["config_hash"],
                record["job_id"],
                record["kind"],
                record["title"],
                record["package_version"],
                int(record["all_passed"]),
                record["elapsed_seconds"],
                record["created_at"],
                record["run_id"],
                str(self.artifact_path(record["config_hash"])),
            ),
        )

    def _insert_run(
        self,
        connection: sqlite3.Connection,
        *,
        run_id: str,
        created_at: str,
        package_version: str,
        job_count: int,
        cache_hits: int,
        failures: int,
        elapsed_seconds: float,
    ) -> None:
        connection.execute(
            "INSERT OR REPLACE INTO runs (run_id, created_at, "
            "package_version, job_count, cache_hits, failures, "
            "elapsed_seconds) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                created_at,
                package_version,
                job_count,
                cache_hits,
                failures,
                elapsed_seconds,
            ),
        )

    def _index_record(self, record: dict) -> None:
        with closing(self._connect()) as connection, connection:
            self._insert_result(connection, record)

    def record_run(
        self,
        run_id: str,
        *,
        job_count: int,
        cache_hits: int,
        failures: int,
        elapsed_seconds: float,
        package_version: str | None = None,
    ) -> None:
        with closing(self._connect()) as connection, connection:
            self._insert_run(
                connection,
                run_id=run_id,
                created_at=_utc_now(),
                package_version=package_version or repro.__version__,
                job_count=job_count,
                cache_hits=cache_hits,
                failures=failures,
                elapsed_seconds=elapsed_seconds,
            )

    def runs(self, limit: int = 20) -> list[dict]:
        """Most recent runs, newest first."""
        if not self.index_path.is_file():
            return []
        with closing(self._connect()) as connection, connection:
            connection.row_factory = sqlite3.Row
            rows = connection.execute(
                "SELECT * FROM runs ORDER BY created_at DESC, run_id DESC "
                "LIMIT ?",
                (limit,),
            ).fetchall()
        return [dict(row) for row in rows]

    def results(self) -> list[dict]:
        """Every indexed result, ordered by job id."""
        if not self.index_path.is_file():
            return []
        with closing(self._connect()) as connection, connection:
            connection.row_factory = sqlite3.Row
            rows = connection.execute(
                "SELECT * FROM results ORDER BY job_id, created_at"
            ).fetchall()
        return [dict(row) for row in rows]

    def rebuild_index(self) -> int:
        """Recreate the SQLite index from the files on disk.

        Results come from ``artifacts/*/result.json``, run history from
        ``runs/*/manifest.json``; corrupt files are skipped.  Returns
        the number of artifacts indexed.
        """
        records = []
        if self.artifacts_dir.is_dir():
            for path in sorted(self.artifacts_dir.glob(f"*/{RESULT_FILENAME}")):
                record = self.load(path.parent.name)
                if record is not None:
                    records.append(record)
        manifests = []
        if self.runs_dir.is_dir():
            for path in sorted(self.runs_dir.glob("*/manifest.json")):
                try:
                    manifests.append(json.loads(path.read_text()))
                except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                    continue
        if self.index_path.exists():
            self.index_path.unlink()
        with closing(self._connect()) as connection, connection:
            for record in records:
                self._insert_result(connection, record)
            for manifest in manifests:
                if "run_id" not in manifest:
                    continue
                self._insert_run(
                    connection,
                    run_id=manifest["run_id"],
                    created_at=manifest.get("created_at", ""),
                    package_version=manifest.get("package_version", ""),
                    job_count=manifest.get("job_count", 0),
                    cache_hits=manifest.get("cache_hits", 0),
                    failures=len(manifest.get("failures", [])),
                    elapsed_seconds=manifest.get("elapsed_seconds", 0.0),
                )
        return len(records)

    def prune_stale_index(self) -> list[str]:
        """Drop index rows whose artifact files no longer exist.

        Artifacts deleted by hand (or lost to a partial sync) leave
        dangling ``results`` rows behind; ``repro lab index --verify
        --prune-stale`` calls this to make the index honest again.
        Returns the pruned config hashes.
        """
        if not self.index_path.is_file():
            return []
        with closing(self._connect()) as connection, connection:
            rows = connection.execute(
                "SELECT config_hash FROM results"
            ).fetchall()
            stale = [
                address
                for (address,) in rows
                if not self.artifact_path(address).is_file()
            ]
            connection.executemany(
                "DELETE FROM results WHERE config_hash = ?",
                [(address,) for address in stale],
            )
        return stale

    # -- merge + verify --------------------------------------------------

    def merge(self, other: "ArtifactStore") -> dict:
        """Fold another lab root's artifacts and run history into this one.

        Content addressing makes this conflict-free: an artifact either
        exists here already (same hash, same bytes — skipped) or it
        doesn't (copied byte-for-byte, atomically).  A *corrupt* local
        artifact is replaced by the other store's good copy.  Run
        directories are copied whole when absent.  The SQLite index is
        a derived view, so it is simply rebuilt afterwards — which
        makes the whole operation idempotent and order-independent.

        Returns counts: ``artifacts_imported``, ``artifacts_skipped``,
        ``corrupt_skipped`` (unreadable source artifacts), and
        ``runs_imported``.
        """
        if not other.root.is_dir():
            raise StoreMergeError(
                f"no lab root at {other.root} — nothing to merge"
            )
        if os.path.realpath(other.root) == os.path.realpath(self.root):
            raise StoreMergeError(
                f"cannot merge a lab root into itself ({self.root})"
            )
        imported = skipped = corrupt = runs_imported = 0
        if other.artifacts_dir.is_dir():
            for path in sorted(other.artifacts_dir.glob(f"*/{RESULT_FILENAME}")):
                address = path.parent.name
                if other.load(address) is None:
                    corrupt += 1
                    continue
                if self.load(address) is not None:
                    skipped += 1
                    continue
                target = self.artifact_path(address)
                target.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_text(target, path.read_text())
                imported += 1
        if other.runs_dir.is_dir():
            for run_dir in sorted(other.runs_dir.iterdir()):
                if not run_dir.is_dir():
                    continue
                target = self.runs_dir / run_dir.name
                if target.exists():
                    continue
                self.runs_dir.mkdir(parents=True, exist_ok=True)
                shutil.copytree(run_dir, target)
                runs_imported += 1
        self.rebuild_index()
        return {
            "artifacts_imported": imported,
            "artifacts_skipped": skipped,
            "corrupt_skipped": corrupt,
            "runs_imported": runs_imported,
        }

    def verify(self) -> dict:
        """Recompute every stored artifact's config hash; report drift.

        Each artifact directory is named by the hash of the ``config``
        recorded inside it, so integrity is checkable without the
        original specs.  Buckets (lists of artifact addresses):

        * ``ok`` — hash recomputes, fingerprint matches current source;
        * ``stale`` — intact, but produced by a different source tree
          (dead cache entries after an edit; harmless);
        * ``mismatched`` — recorded config does not hash to the
          directory name (tampering or a mis-filed merge);
        * ``corrupt`` — unparseable JSON;
        * ``unverifiable`` — pre-schema-2 records with no ``config``.
        """
        from repro.lab.jobs import source_fingerprint

        report: dict = {
            "checked": 0,
            "ok": [],
            "stale": [],
            "mismatched": [],
            "corrupt": [],
            "unverifiable": [],
        }
        current = source_fingerprint()
        if not self.artifacts_dir.is_dir():
            return report
        for path in sorted(self.artifacts_dir.glob(f"*/{RESULT_FILENAME}")):
            address = path.parent.name
            report["checked"] += 1
            try:
                record = json.loads(path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                report["corrupt"].append(address)
                continue
            config = record.get("config") if isinstance(record, dict) else None
            if not isinstance(config, dict):
                report["unverifiable"].append(address)
                continue
            if config_hash(config) != address or record.get("config_hash") != address:
                report["mismatched"].append(address)
                continue
            if config.get("source_fingerprint") != current:
                report["stale"].append(address)
            else:
                report["ok"].append(address)
        return report
