"""Pluggable execution backends for the lab executor.

A backend owns exactly one concern: given the cache-miss subset of a
batch, execute every job and yield ``(spec, result)`` completions in
whatever order they finish, where ``result`` is either the job's
JSON-safe payload dict or a :class:`JobFailure` describing the
exception it raised.  Everything else — cache lookups, artifact
persistence, deterministic job-id ordering, run bookkeeping — stays in
:func:`repro.lab.executor.run_jobs`, so every backend produces
byte-identical reports for the same batch.

Three implementations ship:

* :class:`SerialBackend` — in-process, zero dependencies, the one to
  reach for in tests and debuggers (``--backend serial``);
* :class:`ProcessPoolBackend` — the historical behaviour: fan out over
  a ``ProcessPoolExecutor``, falling back to in-process execution for
  single-job batches or ``workers=1`` (``--backend pool``, the
  default);
* :class:`repro.lab.spool.SpoolBackend` — the filesystem-spool
  sharding protocol: the coordinator publishes jobs as JSON files and
  any number of ``repro lab worker`` processes (on this host or any
  host sharing the directory) claim and execute them
  (``--backend spool``).

Backends are duck-typed against :class:`ExecutorBackend`; pass an
instance straight to ``run_jobs(backend=...)`` to plug in your own.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError
from repro.lab.jobs import JobSpec, execute_job

#: The names ``resolve_backend`` (and the CLI's ``--backend``) accept.
BACKEND_NAMES = ("serial", "pool", "spool")


class UnknownBackendError(ReproError):
    """A backend name that names no known implementation."""


def default_worker_count() -> int:
    """One worker per CPU, as ``repro lab run --jobs`` defaults to."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class JobFailure:
    """A job that raised instead of returning a payload.

    Carries only the formatted ``TypeName: message`` string, never the
    exception object — failures must survive a process (or host)
    boundary byte-identically, so every backend reports them the same
    way and crash records diff cleanly across backends.
    """

    message: str


def describe_error(error: BaseException) -> JobFailure:
    """The canonical failure rendering every backend agrees on."""
    return JobFailure(f"{type(error).__name__}: {error}")


@runtime_checkable
class ExecutorBackend(Protocol):
    """What ``run_jobs`` needs from an execution strategy."""

    #: Short name used in CLI flags and progress lines.
    name: str

    def run(
        self, pending: Sequence[JobSpec], *, run_id: str
    ) -> Iterator[tuple[JobSpec, dict | JobFailure]]:
        """Execute every pending spec, yielding completions as they land."""
        ...


class SerialBackend:
    """Run every job in this process, in the order given."""

    name = "serial"

    def run(
        self, pending: Sequence[JobSpec], *, run_id: str
    ) -> Iterator[tuple[JobSpec, dict | JobFailure]]:
        for spec in pending:
            try:
                payload = execute_job(spec)
            except Exception as error:
                yield spec, describe_error(error)
            else:
                yield spec, payload


class ProcessPoolBackend:
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Workers receive the full :class:`JobSpec` (strings and ints only,
    so it pickles trivially) and hand back a JSON-safe payload.  A
    single pending job, or ``workers=1``, short-circuits to in-process
    execution — spawning a pool for one job costs more than the job.
    """

    name = "pool"

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def backend_metrics(self) -> dict:
        """Pool sizing for the run manifest's metrics block."""
        return {"pool_workers": self.workers or default_worker_count()}

    def run(
        self, pending: Sequence[JobSpec], *, run_id: str
    ) -> Iterator[tuple[JobSpec, dict | JobFailure]]:
        workers = self.workers or default_worker_count()
        if len(pending) <= 1 or workers == 1:
            yield from SerialBackend().run(pending, run_id=run_id)
            return
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(execute_job, spec): spec for spec in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        payload = future.result()
                    except Exception as error:
                        yield futures[future], describe_error(error)
                    else:
                        yield futures[future], payload


def resolve_backend(
    backend: str | ExecutorBackend | None,
    *,
    store=None,
    workers: int | None = None,
) -> ExecutorBackend:
    """A backend name (or instance, or None) to a ready instance.

    ``None`` keeps the historical default (process pool).  ``"spool"``
    needs a store to anchor the spool directory under the lab root;
    callers wanting a custom spool location construct
    :class:`repro.lab.spool.SpoolBackend` themselves and pass the
    instance.
    """
    if backend is None:
        return ProcessPoolBackend(workers)
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "pool":
            return ProcessPoolBackend(workers)
        if backend == "spool":
            from repro.lab.spool import SpoolBackend

            if store is None:
                raise UnknownBackendError(
                    "the spool backend needs a store (its spool directory "
                    "lives under the lab root); pass store= or construct "
                    "SpoolBackend yourself"
                )
            return SpoolBackend(store.root / "spool")
        raise UnknownBackendError(
            f"unknown backend {backend!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    return backend
