"""The job registry: every runnable artifact of the repo as one job.

Four kinds of jobs, all declaratively specified and content-hashable:

* ``experiment`` — one ``repro.report.experiments`` runner (E01..E16),
  optionally with explicit keyword parameters (lambda/t/s/y...) so
  sweep-style grids cache one artifact per design point;
* ``sweep`` — one :class:`repro.analysis.sweeps.SweepSpec` design-space
  sweep (S-lambda, S-t);
* ``ablation`` — one ablation bench's row builder from ``benchmarks/``
  (A1..A7), imported by file path so the bench modules stay the single
  source of truth;
* ``scenario`` — one :class:`repro.scenarios.ScenarioSpec`, carried
  verbatim (as canonical JSON) in the job params, so every distinct
  machine + workload design point is a distinct cache entry.  Specs
  with a ``program`` section travel the same way — the program kind and
  parameters are part of the canonical JSON, hence of the cache key —
  and their numerical-correctness verdict becomes the job's check.

A :class:`JobSpec` carries no callables, only strings and ints, so it
pickles trivially and hashes canonically; worker processes rebuild the
registry themselves (it is deterministic) and resolve the job id back
to the code to run.  ``execute_job`` is the worker entry point: it
returns a JSON-safe payload dict — headers, encoded rows, checks,
notes — that the artifact store persists verbatim.
"""

from __future__ import annotations

import hashlib
import importlib.util
import inspect
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import repro
from repro.analysis.sweeps import STANDARD_SWEEPS, SweepSpec
from repro.errors import ReproError
from repro.lab.hashing import config_hash, encode_rows
from repro.report.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    registry_entries,
)

EXPERIMENT_KIND = "experiment"
SWEEP_KIND = "sweep"
ABLATION_KIND = "ablation"
SCENARIO_KIND = "scenario"


class UnknownJobError(ReproError):
    """A job id that no registry entry matches."""


@dataclass(frozen=True)
class JobSpec:
    """One declaratively-specified job: id, kind and hashable params."""

    job_id: str
    kind: str
    title: str
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def config(self, package_version: str) -> dict:
        """The dict whose canonical hash addresses this job's artifact."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": {key: value for key, value in self.params},
            "package_version": package_version,
            "source_fingerprint": source_fingerprint(),
        }

    def config_hash(self, package_version: str | None = None) -> str:
        version = package_version or repro.__version__
        return config_hash(self.config(version))


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """SHA-256 over every Python source the jobs can execute.

    Folding this into every config hash ties the cache to code
    identity, not just the (often static) package version: editing the
    simulator or a bench invalidates all cached artifacts, so a stale
    EXPERIMENTS.md can never be regenerated from results the current
    code would not produce.  Covers ``src/repro`` and the ablation
    benches; cached per process (sources don't change mid-run).
    """
    digest = hashlib.sha256()
    roots = [Path(repro.__file__).resolve().parent]
    benches = benchmarks_dir()
    if benches is not None:
        roots.append(benches)
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


#: Ablation benches: id -> (bench module stem, row-builder, headers, title).
ABLATION_BENCHES: dict[str, tuple[str, str, tuple[str, ...], str]] = {
    "A1": (
        "bench_ablation_buffers",
        "sweep",
        ("q", "ordered", "subsequence", "conflict-free"),
        "A1: buffer depth vs ordering discipline",
    ),
    "A2": (
        "bench_ablation_oracle",
        "coverage_grid",
        ("length", "cases", "paper CF", "oracle CF", "oracle-only"),
        "A2: structured ordering vs an oracle scheduler",
    ),
    "A3": (
        "bench_ablation_multistream",
        "interference_sweep",
        (
            "q",
            "solo latency",
            "shared total",
            "worst stream latency",
            "module waits",
            "bus util",
        ),
        "A3: two conflict-free streams sharing the memory",
    ),
    "A4": (
        "bench_ablation_dynamic",
        "compare",
        ("stride", "family", "dynamic+ordered", "static window (paper)"),
        "A4: static window vs per-stride dynamic schemes",
    ),
    "A5": (
        "bench_ablation_pseudorandom",
        "sweep",
        ("family", "paper latency", "paper CF", "random latency", "random CF"),
        "A5: paper window vs pseudo-random interleaving",
    ),
    "A6": (
        "bench_ablation_gather",
        "sweep",
        ("index population", "ordered", "scheduled", "scheme", "CF"),
        "A6: gather (indexed) access scheduling",
    ),
    "A7": (
        "bench_ablation_multiport",
        "build_rows",
        ("configuration", "total cycles", "module waits"),
        "A7: memory ports vs modules",
    ),
}


def benchmarks_dir() -> Path | None:
    """The repo's ``benchmarks/`` directory, if the checkout has one.

    Resolved relative to the installed package so the registry is
    identical in the parent and in every worker.  Returns None for
    installed-without-sources deployments, in which case ablation jobs
    simply are not registered.
    """
    candidate = Path(repro.__file__).resolve().parents[2] / "benchmarks"
    return candidate if candidate.is_dir() else None


def _sweep_job_id(spec: SweepSpec) -> str:
    return f"S-{spec.axis}"


def _sweep_params(spec: SweepSpec) -> tuple[tuple[str, object], ...]:
    return (
        ("axis", spec.axis),
        ("fixed", spec.fixed),
        ("start", spec.start),
        ("stop", spec.stop),
    )


def build_registry() -> dict[str, JobSpec]:
    """All jobs, keyed by id, in deterministic (sorted) order."""
    specs: list[JobSpec] = []
    for experiment_id, title, _runner in registry_entries():
        specs.append(JobSpec(experiment_id, EXPERIMENT_KIND, title))
    for sweep in STANDARD_SWEEPS:
        specs.append(
            JobSpec(
                _sweep_job_id(sweep),
                SWEEP_KIND,
                f"Design-space {sweep.describe()}",
                _sweep_params(sweep),
            )
        )
    if benchmarks_dir() is not None:
        for job_id, (module, function, headers, title) in sorted(
            ABLATION_BENCHES.items()
        ):
            specs.append(
                JobSpec(
                    job_id,
                    ABLATION_KIND,
                    title,
                    (("module", module), ("function", function)),
                )
            )
    return {spec.job_id: spec for spec in sorted(specs, key=lambda s: s.job_id)}


def resolve(job_id: str, registry: dict[str, JobSpec] | None = None) -> JobSpec:
    registry = registry if registry is not None else build_registry()
    try:
        return registry[job_id]
    except KeyError:
        raise UnknownJobError(f"unknown job id {job_id!r}") from None


def _experiment_base_id(job_id: str) -> str:
    """The registry experiment behind a (possibly parameterised) job id.

    Parameterised jobs encode their overrides in the id —
    ``E03[lambda_exponent=8,t=4]`` — so distinct design points keep
    distinct ids within one batch while still resolving to ``run_e03``.
    """
    return job_id.split("[", 1)[0]


def _validated_experiment_params(
    experiment_id: str, params: dict
) -> dict:
    """Check overrides against the runner's signature; returns kwargs.

    Rejecting unknown names here (rather than letting the call raise
    ``TypeError`` in a worker) keeps the failure a clear
    :class:`UnknownJobError` naming the accepted parameters — and
    guarantees a spec never silently computes something other than what
    its config hash says.
    """
    try:
        runner = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownJobError(
            f"unknown experiment id {experiment_id!r}"
        ) from None
    accepted = inspect.signature(runner).parameters
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise UnknownJobError(
            f"experiment {experiment_id} does not accept param(s) "
            f"{', '.join(unknown)} (accepted: "
            f"{', '.join(accepted) or 'none'})"
        )
    return dict(params)


def experiment_spec(experiment_id: str, **overrides) -> JobSpec:
    """A (possibly parameterised) experiment job.

    With no overrides this is exactly the registry entry — same id,
    same (empty) params, same config hash, so default runs keep hitting
    the historical cache entries.  With overrides, the kwargs are
    validated against the runner's signature, folded into the job id
    and hashed into the config, making every design point its own cache
    entry.
    """
    from repro.scenarios.spec import freeze_params

    base = resolve(experiment_id)
    if not overrides:
        return base
    params = freeze_params(
        _validated_experiment_params(experiment_id, overrides)
    )
    suffix = ",".join(f"{key}={value}" for key, value in params)
    return JobSpec(
        f"{experiment_id}[{suffix}]",
        EXPERIMENT_KIND,
        f"{base.title} ({suffix})",
        params,
    )


def scenario_job(scenario) -> JobSpec:
    """Wrap one :class:`repro.scenarios.ScenarioSpec` as a lab job.

    The spec travels verbatim (canonical JSON) in the job params, so
    the config hash — and therefore the artifact address — covers every
    field of the design point.  The job id embeds a short digest of
    that JSON: two different specs can never collide in one batch, even
    when they share a ``name``.
    """
    text = scenario.to_json()
    digest = hashlib.sha256(text.encode("ascii")).hexdigest()[:10]
    label = f"{scenario.name}-{digest}" if scenario.name else digest
    return JobSpec(
        f"SC-{label}",
        SCENARIO_KIND,
        scenario.describe(),
        (("spec", text),),
    )


def scenario_spec_of(job: JobSpec):
    """The :class:`~repro.scenarios.ScenarioSpec` a scenario job carries.

    Returns ``None`` for non-scenario jobs and for scenario jobs whose
    spec payload does not parse — the latter still execute (and fail
    with the parse error recorded as the job's failure), so submit-time
    lint must not preempt that path.
    """
    if job.kind != SCENARIO_KIND:
        return None
    text = dict(job.params).get("spec")
    if not isinstance(text, str):
        return None
    from repro.scenarios import ScenarioSpec

    try:
        return ScenarioSpec.from_json(text)
    except ReproError:
        return None


def _load_bench_module(stem: str):
    directory = benchmarks_dir()
    if directory is None:
        raise UnknownJobError(
            f"ablation bench {stem!r} needs the benchmarks/ directory, "
            "which this installation does not ship"
        )
    path = directory / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"repro_lab_{stem}", path)
    if spec is None or spec.loader is None:
        raise UnknownJobError(f"cannot load bench module {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _experiment_payload(result: ExperimentResult) -> dict:
    return {
        "title": result.title,
        "headers": list(result.headers),
        "rows": encode_rows(result.rows),
        "checks": [
            {
                "claim": check.claim,
                "expected": check.expected,
                "measured": check.measured,
                "passed": check.passed,
            }
            for check in result.checks
        ],
        "notes": list(result.notes),
        "all_passed": result.all_passed,
    }


def _table_payload(title: str, headers, rows) -> dict:
    return {
        "title": title,
        "headers": list(headers),
        "rows": encode_rows(rows),
        "checks": [],
        "notes": [],
        "all_passed": True,
    }


def scenario_result_payload(spec: JobSpec, scenario, result) -> dict:
    """One scenario job's payload from an already-computed result.

    The single payload shape for every engine: the in-process simulate
    path below and the batch evaluator's :class:`repro.batch.engine.
    BatchBackend` both build their artifacts here, so engines can never
    drift apart on artifact structure.
    """
    payload = _table_payload(
        spec.title or scenario.describe(),
        ["metric", "value"],
        result.metric_rows(),
    )
    payload["notes"] = [scenario.describe()]
    # Program scenarios carry an end-to-end correctness verdict: surface
    # it as a check so a miscomputing design point fails the job (and
    # shows up as a regression in `repro lab diff`).
    correct = dict(result.extras).get("numerically_correct")
    if correct is not None:
        payload["checks"] = [
            {
                "claim": "program outputs are numerically correct",
                "expected": True,
                "measured": correct,
                "passed": bool(correct),
            }
        ]
        payload["all_passed"] = bool(correct)
    return payload


def _scenario_payload(spec: JobSpec) -> dict:
    from repro.scenarios import ScenarioSpec, simulate

    params = dict(spec.params)
    if "spec" not in params:
        raise UnknownJobError(
            f"scenario job {spec.job_id!r} carries no 'spec' param"
        )
    scenario = ScenarioSpec.from_json(params["spec"])
    result = simulate(scenario)
    return scenario_result_payload(spec, scenario, result)


def execute_job(job: str | JobSpec) -> dict:
    """Run one job and return its JSON-safe payload (worker entry point).

    Accepts either a job id (resolved against the registry) or a full
    :class:`JobSpec` — the form the executor ships to workers, so that
    the executed config is exactly the one the result is cached under.
    Experiment params are validated against the runner's signature;
    ablation jobs cannot carry custom params, and a spec whose params
    differ from the registry's is rejected rather than silently
    computing the registry default.
    """
    spec = resolve(job) if isinstance(job, str) else job
    if spec.kind == ABLATION_KIND:
        registered = resolve(spec.job_id)
        if spec.params != registered.params:
            raise UnknownJobError(
                f"job {spec.job_id!r} does not support custom params "
                f"{dict(spec.params)!r} (registry has "
                f"{dict(registered.params)!r})"
            )
    started = time.perf_counter()
    if spec.kind == EXPERIMENT_KIND:
        base_id = _experiment_base_id(spec.job_id)
        kwargs = _validated_experiment_params(base_id, dict(spec.params))
        payload = _experiment_payload(ALL_EXPERIMENTS[base_id](**kwargs))
    elif spec.kind == SCENARIO_KIND:
        payload = _scenario_payload(spec)
    elif spec.kind == SWEEP_KIND:
        params = dict(spec.params)
        sweep = SweepSpec(
            axis=params["axis"],
            fixed=params["fixed"],
            start=params["start"],
            stop=params["stop"],
        )
        headers, rows = sweep.table()
        payload = _table_payload(spec.title, headers, rows)
    elif spec.kind == ABLATION_KIND:
        module_stem, function, headers, title = ABLATION_BENCHES[spec.job_id]
        module = _load_bench_module(module_stem)
        rows = getattr(module, function)()
        payload = _table_payload(title, list(headers), rows)
    else:  # pragma: no cover - registry only emits the three kinds
        raise UnknownJobError(
            f"job {spec.job_id!r} has unknown kind {spec.kind!r}"
        )
    payload["job_id"] = spec.job_id
    payload["kind"] = spec.kind
    payload["elapsed_seconds"] = time.perf_counter() - started
    return payload
