"""Closed-form chaining analysis (Section 5-F).

For a conflict-free load, elements return one per cycle in a
deterministic order, so a dependent execute instruction can consume them
as they arrive.  These helpers give the analytic cycle counts that the
machine-level simulation of experiment E14 is checked against.
"""

from __future__ import annotations

from repro.errors import ProgramError


def conflict_free_load_latency(length: int, service_ratio: int) -> int:
    """``T + L + 1`` (Section 2)."""
    if length < 1 or service_ratio < 1:
        raise ProgramError("length and service ratio must be >= 1")
    return service_ratio + length + 1


def decoupled_pair_latency(
    length: int, service_ratio: int, execute_startup: int
) -> int:
    """LOAD then dependent op, no chaining.

    The op starts after the register is complete: total =
    ``(T + L + 1) + startup + L``.
    """
    load = conflict_free_load_latency(length, service_ratio)
    return load + execute_startup + length


def chained_pair_latency(
    length: int, service_ratio: int, execute_startup: int
) -> int:
    """LOAD chained into a dependent op.

    The eLements stream one per cycle; the op consumes each element the
    cycle after delivery, so its feed finishes one cycle after the last
    delivery and the result is complete ``startup`` cycles later:
    ``(T + L + 1) + 1 + startup``.
    """
    load = conflict_free_load_latency(length, service_ratio)
    return load + 1 + execute_startup


def chaining_speedup(
    length: int, service_ratio: int, execute_startup: int
) -> float:
    """Decoupled/chained latency ratio — approaches 2 for long vectors."""
    return decoupled_pair_latency(
        length, service_ratio, execute_startup
    ) / chained_pair_latency(length, service_ratio, execute_startup)
