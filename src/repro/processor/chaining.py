"""Closed-form chaining analysis (Section 5-F).

For a conflict-free load, elements return one per cycle in a
deterministic order, so a dependent execute instruction can consume them
as they arrive.  These helpers give the analytic cycle counts that the
machine-level simulation of experiment E14 is checked against.
"""

from __future__ import annotations

from repro.errors import ProgramError


def conflict_free_load_latency(length: int, service_ratio: int) -> int:
    """``T + L + 1`` (Section 2)."""
    if length < 1 or service_ratio < 1:
        raise ProgramError("length and service ratio must be >= 1")
    return service_ratio + length + 1


def decoupled_pair_latency(
    length: int, service_ratio: int, execute_startup: int
) -> int:
    """LOAD then dependent op, no chaining.

    The op starts after the register is complete: total =
    ``(T + L + 1) + startup + L``.
    """
    load = conflict_free_load_latency(length, service_ratio)
    return load + execute_startup + length


def chained_pair_latency(
    length: int, service_ratio: int, execute_startup: int
) -> int:
    """LOAD chained into a dependent op.

    The eLements stream one per cycle; the op consumes each element the
    cycle after delivery, so its feed finishes one cycle after the last
    delivery and the result is complete ``startup`` cycles later:
    ``(T + L + 1) + 1 + startup``.
    """
    load = conflict_free_load_latency(length, service_ratio)
    return load + 1 + execute_startup


def chaining_speedup(
    length: int, service_ratio: int, execute_startup: int
) -> float:
    """Decoupled/chained latency ratio — approaches 2 for long vectors."""
    return decoupled_pair_latency(
        length, service_ratio, execute_startup
    ) / chained_pair_latency(length, service_ratio, execute_startup)


#: Stated accuracy of the whole-program model below.  The model assumes
#: every memory access is conflict-free (latency ``T + L + 1``, elements
#: delivered one per cycle): inside the paper's stride windows the
#: machine simulation matches it cycle for cycle, and a measured
#: chaining speedup is accepted when it agrees with
#: :func:`program_chaining_speedup` within this relative tolerance.
CHAINING_MODEL_TOLERANCE = 0.05


def program_latency(
    program,
    register_length: int,
    service_ratio: int,
    execute_startup: int,
    *,
    chained: bool,
) -> int:
    """Analytic completion cycle of a whole vector program.

    Generalises the pair formulas above to arbitrary load/op/store
    chains by replaying the decoupled machine's issue rules in closed
    form — one outstanding memory access, execute operands chained on
    the latest-ready conflict-free load when ``chained`` — under the
    conflict-free assumption.  For a single LOAD -> OP pair this reduces
    exactly to :func:`decoupled_pair_latency` /
    :func:`chained_pair_latency`.
    """
    from repro.processor.isa import (
        VBinary,
        VGather,
        VLoad,
        VScalarOp,
        VScatter,
        VStore,
        VSum,
    )

    if register_length < 1 or service_ratio < 1 or execute_startup < 1:
        raise ProgramError(
            "register_length, service ratio and execute startup must be >= 1"
        )
    memory_free = 1
    execute_free = 1
    ready: dict[int, int] = {}
    #: register -> (first delivery, last delivery) of its latest cf load
    deliveries: dict[int, tuple[int, int]] = {}
    total = 0
    for instruction in program:
        length = (
            instruction.length
            if instruction.length is not None
            else register_length
        )
        access_latency = service_ratio + length + 1
        if isinstance(instruction, VLoad):
            start = memory_free
            end = start + access_latency - 1
            ready[instruction.dst] = end
            deliveries[instruction.dst] = (start + service_ratio + 1, end)
            memory_free = end + 1
        elif isinstance(instruction, VGather):
            # Indexed access: completion time modelled like a load, but
            # the arrival order is not deterministic, so never chained.
            start = max(memory_free, ready.get(instruction.index, 0) + 1)
            end = start + access_latency - 1
            ready[instruction.dst] = end
            deliveries.pop(instruction.dst, None)
            memory_free = end + 1
        elif isinstance(instruction, (VStore, VScatter)):
            operands_ready = max(
                (ready.get(register, 0) for register in instruction.reads()),
                default=0,
            )
            start = max(memory_free, operands_ready + 1)
            end = start + access_latency - 1
            memory_free = end + 1
        elif isinstance(instruction, (VBinary, VScalarOp, VSum)):
            reads = instruction.reads()
            candidate = (
                max(reads, key=lambda register: ready.get(register, 0))
                if chained and reads
                else None
            )
            if candidate is not None and candidate in deliveries:
                first, last = deliveries[candidate]
                last = min(last, first + length - 1)
                other_ready = max(
                    (ready.get(r, 0) for r in reads if r != candidate),
                    default=0,
                )
                start = max(execute_free, other_ready + 1, first + 1)
                finish_feed = max(start + length - 1, last + 1)
                end = finish_feed + execute_startup
                execute_free = finish_feed + 1
            else:
                operands_ready = max(
                    (ready.get(register, 0) for register in reads), default=0
                )
                start = max(execute_free, operands_ready + 1)
                end = start + execute_startup + length - 1
                execute_free = start + length
            destination = instruction.writes()[0]
            ready[destination] = end
            deliveries.pop(destination, None)
        else:
            raise ProgramError(
                f"cannot model instruction {instruction!r} analytically"
            )
        total = max(total, end)
    return total


def program_chaining_speedup(
    program, register_length: int, service_ratio: int, execute_startup: int
) -> float:
    """Analytic decoupled/chained ratio for a whole program."""
    chained = program_latency(
        program,
        register_length,
        service_ratio,
        execute_startup,
        chained=True,
    )
    if chained == 0:
        return 1.0
    return (
        program_latency(
            program,
            register_length,
            service_ratio,
            execute_startup,
            chained=False,
        )
        / chained
    )
