"""Vector programs: validation, pretty-printing and a tiny assembler.

A :class:`Program` is an ordered list of ISA instructions plus the
register-count/length context it expects.  The assembler accepts the
obvious textual form, one instruction per line::

    vload  v1, base=100, stride=3
    vload  v2, base=4096, stride=1
    vscale v3, v1, scalar=2.5
    vadd   v4, v3, v2
    vstore v4, base=8192, stride=1

Blank lines and ``#`` comments are ignored.  The assembler exists for the
examples and tests — programs can equally be built from the dataclasses
directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.processor.isa import (
    Instruction,
    VAdd,
    VGather,
    VLoad,
    VMul,
    VSAdd,
    VScale,
    VScatter,
    VStore,
    VSub,
    VSum,
)


@dataclass
class Program:
    """A straight-line vector program."""

    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "Program":
        self.instructions.append(instruction)
        return self

    def validate(
        self, register_count: int, predefined: set[int] | None = None
    ) -> None:
        """Check register numbers and def-before-use.

        ``predefined`` lists registers that already hold values (for
        machines that run several programs against one register file).
        Raises :class:`~repro.errors.ProgramError` with the offending
        instruction index on the first violation.
        """
        defined: set[int] = set(predefined or ())
        for position, instruction in enumerate(self.instructions):
            for register in (*instruction.reads(), *instruction.writes()):
                if not 0 <= register < register_count:
                    raise ProgramError(
                        f"instruction {position} ({instruction.mnemonic}): "
                        f"register V{register} out of range "
                        f"[0, {register_count})"
                    )
            for register in instruction.reads():
                if register not in defined:
                    raise ProgramError(
                        f"instruction {position} ({instruction.mnemonic}): "
                        f"register V{register} read before any definition"
                    )
            defined.update(instruction.writes())

    def memory_instruction_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_memory)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


def def_use_events(program: Program):
    """Yield ``(position, instruction, reads, writes)`` for a program.

    ``reads``/``writes`` are frozen register-number sets — the def-use
    stream that drives both the machine's hazard batching and the
    static analyzer's mirror of it (:mod:`repro.check.hazards`).
    """
    for position, instruction in enumerate(program):
        yield (
            position,
            instruction,
            frozenset(instruction.reads()),
            frozenset(instruction.writes()),
        )


_REGISTER = re.compile(r"^v(\d+)$", re.IGNORECASE)

#: One memory preload: ``(base, stride, values)`` — the form both the
#: CLI and the scenario program components feed to ``store.write_vector``.
MemoryInit = tuple[int, int, tuple[float, ...]]


def _parse_register(token: str) -> int:
    match = _REGISTER.match(token.strip())
    if match is None:
        raise ProgramError(
            f"expected a register like 'v1', got {token.strip()!r}"
        )
    return int(match.group(1))


def _parse_keywords(tokens: list[str]) -> dict[str, float]:
    values: dict[str, float] = {}
    for token in tokens:
        token = token.strip()
        if "=" not in token:
            raise ProgramError(f"expected key=value, got {token!r}")
        key, _, raw = token.partition("=")
        try:
            values[key.strip()] = float(raw)
        except ValueError:
            raise ProgramError(f"bad numeric value {raw!r}") from None
    return values


def _require(keywords: dict[str, float], mnemonic: str, *names: str) -> None:
    missing = [name for name in names if name not in keywords]
    if missing:
        raise ProgramError(
            f"{mnemonic} needs {', '.join(f'{name}=<value>' for name in missing)}"
        )


def _optional_length(keywords: dict[str, float]) -> int | None:
    return int(keywords["length"]) if "length" in keywords else None


def _parse_instruction(line: str) -> Instruction:
    """One statement to one instruction; errors carry no location (the
    :func:`assemble` loop attaches line number and source text)."""
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    operands = [part for part in rest.split(",") if part.strip()]
    if mnemonic in ("vload", "vstore"):
        if len(operands) < 3:
            raise ProgramError(f"{mnemonic} needs 3+ operands")
        register = _parse_register(operands[0])
        keywords = _parse_keywords(operands[1:])
        _require(keywords, mnemonic, "base", "stride")
        kind = VLoad if mnemonic == "vload" else VStore
        return kind(
            register,
            int(keywords["base"]),
            int(keywords["stride"]),
            _optional_length(keywords),
        )
    if mnemonic in ("vadd", "vsub", "vmul"):
        if len(operands) < 3:
            raise ProgramError(f"{mnemonic} needs dst, a, b")
        dst, a, b = (_parse_register(operand) for operand in operands[:3])
        keywords = _parse_keywords(operands[3:])
        kind = {"vadd": VAdd, "vsub": VSub, "vmul": VMul}[mnemonic]
        return kind(dst, a, b, _optional_length(keywords))
    if mnemonic in ("vgather", "vscatter"):
        if len(operands) < 3:
            raise ProgramError(f"{mnemonic} needs reg, index-reg, base=")
        data_register = _parse_register(operands[0])
        index_register = _parse_register(operands[1])
        keywords = _parse_keywords(operands[2:])
        _require(keywords, mnemonic, "base")
        kind = VGather if mnemonic == "vgather" else VScatter
        return kind(
            data_register,
            int(keywords["base"]),
            index_register,
            _optional_length(keywords),
        )
    if mnemonic == "vsum":
        if len(operands) < 2:
            raise ProgramError("vsum needs dst, src")
        dst = _parse_register(operands[0])
        src = _parse_register(operands[1])
        keywords = _parse_keywords(operands[2:])
        return VSum(dst, src, _optional_length(keywords))
    if mnemonic in ("vscale", "vsadd"):
        if len(operands) < 3:
            raise ProgramError(f"{mnemonic} needs dst, src, scalar=")
        dst = _parse_register(operands[0])
        src = _parse_register(operands[1])
        keywords = _parse_keywords(operands[2:])
        _require(keywords, mnemonic, "scalar")
        kind = {"vscale": VScale, "vsadd": VSAdd}[mnemonic]
        return kind(dst, src, keywords["scalar"], _optional_length(keywords))
    raise ProgramError(f"unknown mnemonic {mnemonic!r}")


def parse_directive(line: str) -> MemoryInit:
    """One ``.init``/``.fill`` memory directive to ``(base, stride, values)``.

    * ``.init base=<int>, stride=<int>, values=<v;v;...>`` — the listed
      values as a constant-stride vector;
    * ``.fill base=<int>, stride=<int>, count=<int>, value=<float>`` —
      ``count`` copies of one value.
    """
    name, _, rest = line.partition(" ")
    fields: dict[str, str] = {}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ProgramError(f"bad directive field {part!r}")
        key, _, value = part.partition("=")
        fields[key.strip()] = value.strip()
    try:
        if name == ".init":
            values = tuple(float(v) for v in fields["values"].split(";") if v)
            return int(fields["base"]), int(fields["stride"]), values
        if name == ".fill":
            return (
                int(fields["base"]),
                int(fields["stride"]),
                (float(fields["value"]),) * int(fields["count"]),
            )
    except KeyError as error:
        raise ProgramError(
            f"directive {name} needs {error.args[0]}=<value>"
        ) from None
    except ValueError as error:
        raise ProgramError(f"bad directive value: {error}") from None
    raise ProgramError(f"unknown directive {name!r}")


def parse_source(
    text: str, *, allow_directives: bool = True
) -> tuple[Program, tuple[MemoryInit, ...]]:
    """Parse a full program source: directives plus instructions.

    Directive lines start with ``.`` and may appear anywhere; blank
    lines and ``#`` comments are ignored.  Every parse failure is a
    :class:`~repro.errors.ProgramError` locating the offending statement
    by line number and source text (also available structurally as
    ``error.line_number`` / ``error.source_line``).
    """
    program = Program()
    inits: list[MemoryInit] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith("."):
                if not allow_directives:
                    raise ProgramError(
                        f"directive {line.split(None, 1)[0]!r} is not "
                        "allowed in instruction-only sources"
                    )
                inits.append(parse_directive(line))
            else:
                program.append(_parse_instruction(line))
        except ProgramError as error:
            if error.line_number is not None:
                raise  # already located (nested sources don't re-wrap)
            raise ProgramError(
                f"line {line_number}: {line!r}: {error}",
                line_number=line_number,
                source_line=line,
            ) from None
    return program, tuple(inits)


def assemble(text: str) -> Program:
    """Assemble the textual (instruction-only) form into a :class:`Program`."""
    program, _inits = parse_source(text, allow_directives=False)
    return program


def disassemble(program: Program) -> str:
    """Textual form of a program (inverse of :func:`assemble`)."""
    lines: list[str] = []
    for instruction in program:
        if isinstance(instruction, VLoad):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vload v{instruction.dst}, base={instruction.base}, "
                f"stride={instruction.stride}{suffix}"
            )
        elif isinstance(instruction, VStore):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vstore v{instruction.src}, base={instruction.base}, "
                f"stride={instruction.stride}{suffix}"
            )
        elif isinstance(instruction, (VAdd, VSub, VMul)):
            name = f"v{instruction.mnemonic.lower()}"
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"{name} v{instruction.dst}, v{instruction.a}, "
                f"v{instruction.b}{suffix}"
            )
        elif isinstance(instruction, (VScale, VSAdd)):
            name = "vscale" if isinstance(instruction, VScale) else "vsadd"
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"{name} v{instruction.dst}, v{instruction.src}, "
                f"scalar={instruction.scalar}{suffix}"
            )
        elif isinstance(instruction, VGather):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vgather v{instruction.dst}, v{instruction.index}, "
                f"base={instruction.base}{suffix}"
            )
        elif isinstance(instruction, VScatter):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vscatter v{instruction.src}, v{instruction.index}, "
                f"base={instruction.base}{suffix}"
            )
        elif isinstance(instruction, VSum):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vsum v{instruction.dst}, v{instruction.src}{suffix}"
            )
        else:  # pragma: no cover - defensive
            raise ProgramError(f"cannot disassemble {instruction!r}")
    return "\n".join(lines)
