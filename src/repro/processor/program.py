"""Vector programs: validation, pretty-printing and a tiny assembler.

A :class:`Program` is an ordered list of ISA instructions plus the
register-count/length context it expects.  The assembler accepts the
obvious textual form, one instruction per line::

    vload  v1, base=100, stride=3
    vload  v2, base=4096, stride=1
    vscale v3, v1, scalar=2.5
    vadd   v4, v3, v2
    vstore v4, base=8192, stride=1

Blank lines and ``#`` comments are ignored.  The assembler exists for the
examples and tests — programs can equally be built from the dataclasses
directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.processor.isa import (
    Instruction,
    VAdd,
    VGather,
    VLoad,
    VMul,
    VSAdd,
    VScale,
    VScatter,
    VStore,
    VSub,
    VSum,
)


@dataclass
class Program:
    """A straight-line vector program."""

    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "Program":
        self.instructions.append(instruction)
        return self

    def validate(
        self, register_count: int, predefined: set[int] | None = None
    ) -> None:
        """Check register numbers and def-before-use.

        ``predefined`` lists registers that already hold values (for
        machines that run several programs against one register file).
        Raises :class:`~repro.errors.ProgramError` with the offending
        instruction index on the first violation.
        """
        defined: set[int] = set(predefined or ())
        for position, instruction in enumerate(self.instructions):
            for register in (*instruction.reads(), *instruction.writes()):
                if not 0 <= register < register_count:
                    raise ProgramError(
                        f"instruction {position} ({instruction.mnemonic}): "
                        f"register V{register} out of range "
                        f"[0, {register_count})"
                    )
            for register in instruction.reads():
                if register not in defined:
                    raise ProgramError(
                        f"instruction {position} ({instruction.mnemonic}): "
                        f"register V{register} read before any definition"
                    )
            defined.update(instruction.writes())

    def memory_instruction_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_memory)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


_REGISTER = re.compile(r"^v(\d+)$", re.IGNORECASE)


def _parse_register(token: str, line_number: int) -> int:
    match = _REGISTER.match(token.strip())
    if match is None:
        raise ProgramError(
            f"line {line_number}: expected a register like 'v1', got "
            f"{token.strip()!r}"
        )
    return int(match.group(1))


def _parse_keywords(tokens: list[str], line_number: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for token in tokens:
        token = token.strip()
        if "=" not in token:
            raise ProgramError(
                f"line {line_number}: expected key=value, got {token!r}"
            )
        key, _, raw = token.partition("=")
        try:
            values[key.strip()] = float(raw)
        except ValueError:
            raise ProgramError(
                f"line {line_number}: bad numeric value {raw!r}"
            ) from None
    return values


def assemble(text: str) -> Program:
    """Assemble the textual form into a :class:`Program`."""
    program = Program()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        operands = [part for part in rest.split(",") if part.strip()]
        if mnemonic == "vload":
            if len(operands) < 3:
                raise ProgramError(f"line {line_number}: vload needs 3+ operands")
            dst = _parse_register(operands[0], line_number)
            keywords = _parse_keywords(operands[1:], line_number)
            program.append(
                VLoad(
                    dst,
                    int(keywords["base"]),
                    int(keywords["stride"]),
                    int(keywords["length"]) if "length" in keywords else None,
                )
            )
        elif mnemonic == "vstore":
            if len(operands) < 3:
                raise ProgramError(f"line {line_number}: vstore needs 3+ operands")
            src = _parse_register(operands[0], line_number)
            keywords = _parse_keywords(operands[1:], line_number)
            program.append(
                VStore(
                    src,
                    int(keywords["base"]),
                    int(keywords["stride"]),
                    int(keywords["length"]) if "length" in keywords else None,
                )
            )
        elif mnemonic in ("vadd", "vsub", "vmul"):
            if len(operands) != 3:
                raise ProgramError(
                    f"line {line_number}: {mnemonic} needs dst, a, b"
                )
            dst, a, b = (
                _parse_register(operand, line_number) for operand in operands
            )
            kind = {"vadd": VAdd, "vsub": VSub, "vmul": VMul}[mnemonic]
            program.append(kind(dst, a, b))
        elif mnemonic in ("vgather", "vscatter"):
            if len(operands) < 3:
                raise ProgramError(
                    f"line {line_number}: {mnemonic} needs reg, index-reg, "
                    "base="
                )
            data_register = _parse_register(operands[0], line_number)
            index_register = _parse_register(operands[1], line_number)
            keywords = _parse_keywords(operands[2:], line_number)
            length = int(keywords["length"]) if "length" in keywords else None
            if mnemonic == "vgather":
                program.append(
                    VGather(
                        data_register,
                        int(keywords["base"]),
                        index_register,
                        length,
                    )
                )
            else:
                program.append(
                    VScatter(
                        data_register,
                        int(keywords["base"]),
                        index_register,
                        length,
                    )
                )
        elif mnemonic == "vsum":
            if len(operands) < 2:
                raise ProgramError(f"line {line_number}: vsum needs dst, src")
            dst = _parse_register(operands[0], line_number)
            src = _parse_register(operands[1], line_number)
            keywords = _parse_keywords(operands[2:], line_number)
            length = int(keywords["length"]) if "length" in keywords else None
            program.append(VSum(dst, src, length))
        elif mnemonic in ("vscale", "vsadd"):
            if len(operands) != 3:
                raise ProgramError(
                    f"line {line_number}: {mnemonic} needs dst, src, scalar="
                )
            dst = _parse_register(operands[0], line_number)
            src = _parse_register(operands[1], line_number)
            keywords = _parse_keywords(operands[2:], line_number)
            if "scalar" not in keywords:
                raise ProgramError(
                    f"line {line_number}: {mnemonic} needs scalar=<value>"
                )
            kind = {"vscale": VScale, "vsadd": VSAdd}[mnemonic]
            program.append(kind(dst, src, keywords["scalar"]))
        else:
            raise ProgramError(
                f"line {line_number}: unknown mnemonic {mnemonic!r}"
            )
    return program


def disassemble(program: Program) -> str:
    """Textual form of a program (inverse of :func:`assemble`)."""
    lines: list[str] = []
    for instruction in program:
        if isinstance(instruction, VLoad):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vload v{instruction.dst}, base={instruction.base}, "
                f"stride={instruction.stride}{suffix}"
            )
        elif isinstance(instruction, VStore):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vstore v{instruction.src}, base={instruction.base}, "
                f"stride={instruction.stride}{suffix}"
            )
        elif isinstance(instruction, (VAdd, VSub, VMul)):
            name = f"v{instruction.mnemonic.lower()}"
            lines.append(
                f"{name} v{instruction.dst}, v{instruction.a}, "
                f"v{instruction.b}"
            )
        elif isinstance(instruction, (VScale, VSAdd)):
            name = "vscale" if isinstance(instruction, VScale) else "vsadd"
            lines.append(
                f"{name} v{instruction.dst}, v{instruction.src}, "
                f"scalar={instruction.scalar}"
            )
        elif isinstance(instruction, VGather):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vgather v{instruction.dst}, v{instruction.index}, "
                f"base={instruction.base}{suffix}"
            )
        elif isinstance(instruction, VScatter):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vscatter v{instruction.src}, v{instruction.index}, "
                f"base={instruction.base}{suffix}"
            )
        elif isinstance(instruction, VSum):
            suffix = (
                f", length={instruction.length}"
                if instruction.length is not None
                else ""
            )
            lines.append(
                f"vsum v{instruction.dst}, v{instruction.src}{suffix}"
            )
        else:  # pragma: no cover - defensive
            raise ProgramError(f"cannot disassemble {instruction!r}")
    return "\n".join(lines)
