"""The program engine: one execution API for whole vector programs.

:class:`ProgramEngine` is the single path from a :class:`Program` (an
instruction list, whether hand-built, assembled from text, or generated
by the strip-mining kernel builders) to a machine-level outcome: it
builds a fresh :class:`~repro.processor.decoupled.DecoupledVectorMachine`,
preloads memory, runs the program, and packages per-instruction
timelines, the per-access memory-simulator results, overlap accounting
and an end-to-end numerical-correctness verdict into one
:class:`ProgramRun`.

The scenario facade drives *both* of its decoupled paths through this
API — the legacy single-VLOAD workload drive (via
:func:`single_load_program`) and the first-class ``program`` scenario
component — so cycle accounting, chaining behaviour and memory metrics
are defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.gather import IndexedMode
from repro.core.planner import PlanMode
from repro.core.vector import VectorAccess
from repro.errors import SimulationError
from repro.memory.config import MemoryConfig
from repro.processor.decoupled import DecoupledVectorMachine, MachineResult
from repro.processor.isa import VAdd, VLoad
from repro.processor.program import MemoryInit, Program

#: Schema of one timeline row, in order (see :attr:`ProgramRun.timeline`).
#: ``port`` and ``stream`` record per-instruction memory occupancy: the
#: address/result port the access issued on and the concurrent stream
#: slot it occupied in its batch (``None`` for execute instructions).
TIMELINE_FIELDS = (
    "position",
    "mnemonic",
    "unit",
    "start_cycle",
    "end_cycle",
    "duration",
    "mode",
    "conflict_free",
    "port",
    "stream",
)

#: Absolute tolerance of the numerical-correctness check.  The modelled
#: datapath is exact (Python floats end to end), so this only absorbs
#: representation noise in caller-supplied expected values.
VERIFY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ProgramRun:
    """Everything one program execution produced.

    ``timeline`` is a tuple of plain rows matching :data:`TIMELINE_FIELDS`
    — JSON-safe by construction, so scenario results and lab artifacts
    can carry it verbatim.  ``memory_runs`` pairs each memory
    instruction's plan scheme with its cycle-accurate
    :class:`~repro.memory.system.AccessResult`, in instruction order.
    ``outputs_correct`` is ``None`` when the caller declared no expected
    memory contents.
    """

    result: MachineResult
    memory_runs: tuple
    timeline: tuple[tuple, ...]
    total_cycles: int
    overlap_fraction: float
    outputs_correct: bool | None
    output_errors: tuple[str, ...]
    machine: DecoupledVectorMachine = field(repr=False, compare=False)
    stream_concurrency_peak: int = 1

    @property
    def chained_count(self) -> int:
        return self.result.chained_count()

    @property
    def conflict_free_loads(self) -> int:
        return self.result.conflict_free_loads()


def single_load_program(vector: VectorAccess, chaining: bool) -> Program:
    """The implicit program of the workload-driven decoupled scenario:
    one VLOAD, plus a dependent VADD when chaining (which makes the
    chained overlap observable)."""
    instructions = [VLoad(1, vector.base, vector.stride, vector.length)]
    if chaining:
        instructions.append(VAdd(2, 1, 1, vector.length))
    return Program(instructions)


class ProgramEngine:
    """Build-and-run harness around the decoupled vector machine.

    Construction captures the machine design point (memory config,
    register geometry, execute pipeline, chaining, plan modes); each
    :meth:`run` materialises a fresh machine so that repeated runs —
    e.g. the chained/decoupled pair behind a measured chaining speedup —
    never share register-file or backing-store state.
    """

    def __init__(
        self,
        config: MemoryConfig,
        register_length: int,
        *,
        register_count: int = 8,
        execute_startup: int = 4,
        chaining: bool = False,
        plan_mode: PlanMode = "auto",
        gather_mode: IndexedMode = "scheduled",
        memory_streams: int | None = None,
        tracer=None,
    ):
        self.config = config
        self.register_length = register_length
        self.register_count = register_count
        self.execute_startup = execute_startup
        self.chaining = chaining
        self.plan_mode: PlanMode = plan_mode
        self.gather_mode: IndexedMode = gather_mode
        self.memory_streams = memory_streams
        self.tracer = tracer

    def build_machine(self) -> DecoupledVectorMachine:
        return DecoupledVectorMachine(
            self.config,
            register_length=self.register_length,
            register_count=self.register_count,
            execute_startup=self.execute_startup,
            chaining=self.chaining,
            plan_mode=self.plan_mode,
            gather_mode=self.gather_mode,
            memory_streams=self.memory_streams,
            tracer=self.tracer,
        )

    def run(
        self,
        program: Program,
        inputs: tuple[MemoryInit, ...] = (),
        expected: tuple[MemoryInit, ...] = (),
    ) -> ProgramRun:
        """Execute ``program`` on a fresh machine.

        ``inputs`` are ``(base, stride, values)`` vectors preloaded into
        the backing store; ``expected`` are vectors the store must hold
        afterwards (the numerical-correctness check — data really moves
        through the register file and memory, so this catches timing
        models that forget to move it).
        """
        machine = self.build_machine()
        for base, stride, values in inputs:
            machine.store.write_vector(base, stride, values)
        result = machine.run(program)
        memory_timings = result.memory_timings()
        memory_runs = tuple(
            (timing.mode, access)
            for timing, access in zip(
                memory_timings, machine.memory_access_results
            )
        )
        outputs_correct, output_errors = self._verify(machine, expected)
        return ProgramRun(
            result=result,
            memory_runs=memory_runs,
            timeline=tuple(
                (
                    timing.position,
                    timing.mnemonic,
                    timing.unit,
                    timing.start_cycle,
                    timing.end_cycle,
                    timing.duration,
                    timing.mode,
                    timing.conflict_free,
                    timing.port,
                    timing.stream,
                )
                for timing in result.timings
            ),
            total_cycles=result.total_cycles,
            overlap_fraction=_overlap_fraction(result),
            outputs_correct=outputs_correct,
            output_errors=output_errors,
            machine=machine,
            stream_concurrency_peak=result.stream_concurrency_peak,
        )

    def measured_chaining_speedup(
        self,
        program: Program,
        inputs: tuple[MemoryInit, ...] = (),
        chained_run: ProgramRun | None = None,
    ) -> float:
        """Decoupled/chained total-cycle ratio, measured on this design
        point by running ``program`` on two otherwise-identical machines
        (the Section 5-F experiment, for whole kernels).  A caller that
        already holds the chained execution passes it as ``chained_run``
        so only the decoupled baseline is simulated."""
        chained = chained_run or self._variant(chaining=True).run(
            program, inputs
        )
        decoupled = self._variant(chaining=False).run(program, inputs)
        if chained.total_cycles == 0:
            return 1.0
        return decoupled.total_cycles / chained.total_cycles

    def _variant(self, *, chaining: bool) -> "ProgramEngine":
        """This design point with only the chaining switch changed.

        Deliberately untraced: variants are shadow runs (the chaining-
        speedup baseline), and their events would overlay the primary
        run's timeline.
        """
        return ProgramEngine(
            self.config,
            self.register_length,
            register_count=self.register_count,
            execute_startup=self.execute_startup,
            chaining=chaining,
            plan_mode=self.plan_mode,
            gather_mode=self.gather_mode,
            memory_streams=self.memory_streams,
        )

    @staticmethod
    def _verify(
        machine: DecoupledVectorMachine, expected: tuple[MemoryInit, ...]
    ) -> tuple[bool | None, tuple[str, ...]]:
        if not expected:
            return None, ()
        errors: list[str] = []
        for base, stride, values in expected:
            try:
                actual = machine.store.read_vector(base, stride, len(values))
            except SimulationError as error:
                errors.append(f"@{base} stride {stride}: {error}")
                continue
            for index, (want, got) in enumerate(zip(values, actual)):
                if abs(want - got) > VERIFY_TOLERANCE:
                    errors.append(
                        f"@{base + index * stride}: expected {want}, got {got}"
                    )
        return not errors, tuple(errors)


def _overlap_fraction(result: MachineResult) -> float:
    """Fraction of instruction-busy cycles hidden by overlap.

    ``sum(durations)`` counts every cycle each instruction occupied a
    unit; the program finished in ``total_cycles``, so the difference is
    work that ran concurrently across the two units (0.0 for strictly
    serial execution, approaching 0.5 when the units are fully
    overlapped).
    """
    busy = sum(timing.duration for timing in result.timings)
    if busy <= 0:
        return 0.0
    return max(0.0, (busy - result.total_cycles) / busy)
