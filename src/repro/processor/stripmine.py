"""Compiler-style strip-mining (Section 1 and Section 5-C).

Vectors longer than the register are processed in register-length strips;
the (at most one) remainder strip is shorter and goes through the
short-vector path.  The helpers here generate both the strip bounds and
complete strip-mined programs for the classic kernels the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.processor.isa import (
    VAdd,
    VGather,
    VLoad,
    VMul,
    VScale,
    VScatter,
    VStore,
    VSub,
    VSum,
)
from repro.processor.program import Program


@dataclass(frozen=True)
class Strip:
    """One strip of a long vector operation."""

    offset: int  # first element index covered by this strip
    length: int  # elements in this strip


def strip_bounds(total_length: int, register_length: int) -> list[Strip]:
    """Split ``total_length`` elements into register-length strips.

    The last strip carries the remainder (if any); all others have
    exactly ``register_length`` elements, which is why the paper can
    assume "a very high fraction of the accesses are of vectors of length
    equal to that of the registers".
    """
    if total_length < 1:
        raise ProgramError(f"total_length must be >= 1, got {total_length}")
    if register_length < 1:
        raise ProgramError(
            f"register_length must be >= 1, got {register_length}"
        )
    strips: list[Strip] = []
    offset = 0
    while offset < total_length:
        length = min(register_length, total_length - offset)
        strips.append(Strip(offset, length))
        offset += length
    return strips


def full_strip_fraction(total_length: int, register_length: int) -> float:
    """Fraction of elements living in full (register-length) strips."""
    strips = strip_bounds(total_length, register_length)
    full = sum(s.length for s in strips if s.length == register_length)
    return full / total_length


def daxpy_program(
    n: int,
    register_length: int,
    alpha: float,
    x_base: int,
    x_stride: int,
    y_base: int,
    y_stride: int,
) -> Program:
    """Strip-mined ``y = alpha * x + y`` over ``n`` elements.

    Register convention per strip: V1 = x, V2 = y, V3 = alpha * x,
    V4 = result.
    """
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(1, x_base + x_stride * strip.offset, x_stride, length)
        )
        program.append(
            VLoad(2, y_base + y_stride * strip.offset, y_stride, length)
        )
        program.append(VScale(3, 1, alpha, length))
        program.append(VAdd(4, 3, 2, length))
        program.append(
            VStore(4, y_base + y_stride * strip.offset, y_stride, length)
        )
    return program


def saxpy_chain_program(
    n: int,
    register_length: int,
    alpha: float,
    x_base: int,
    x_stride: int,
    out_base: int,
    out_stride: int,
) -> Program:
    """Strip-mined ``out = alpha * x`` — the minimal LOAD -> OP -> STORE
    chain of Section 5-F (every execute operand comes straight off a
    load, so chaining can overlap the whole kernel)."""
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(1, x_base + x_stride * strip.offset, x_stride, length)
        )
        program.append(VScale(2, 1, alpha, length))
        program.append(
            VStore(2, out_base + out_stride * strip.offset, out_stride, length)
        )
    return program


def load_store_copy_program(
    n: int,
    register_length: int,
    src_base: int,
    src_stride: int,
    dst_base: int,
    dst_stride: int,
) -> Program:
    """Strip-mined memory-to-memory copy (pure access, no execute)."""
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(1, src_base + src_stride * strip.offset, src_stride, length)
        )
        program.append(
            VStore(1, dst_base + dst_stride * strip.offset, dst_stride, length)
        )
    return program


def fft_butterfly_program(
    n: int, stage: int, register_length: int, base: int = 0
) -> Program:
    """Strip-mined radix-2 butterflies of one in-place FFT stage.

    Stage ``k`` (0-based) pairs elements ``2**k`` apart: for each offset
    within a half-group the top/bottom operands are stride ``2**(k+1)``
    vectors of length ``n / 2**(k+1)`` (the same accesses as the
    ``fft-stage`` workload), combined as ``top' = top + bottom``,
    ``bottom' = top - bottom`` and stored back.
    """
    if n < 2 or n & (n - 1):
        raise ProgramError(f"FFT size must be a power of two >= 2, got {n}")
    if not 0 <= stage < n.bit_length() - 1:
        raise ProgramError(f"stage {stage} out of range for FFT of size {n}")
    half = 1 << stage
    group = half * 2
    count = n // group
    program = Program()
    for offset in range(half):
        top_base = base + offset
        bottom_base = base + offset + half
        for strip in strip_bounds(count, register_length):
            length = None if strip.length == register_length else strip.length
            top = top_base + group * strip.offset
            bottom = bottom_base + group * strip.offset
            program.append(VLoad(1, top, group, length))
            program.append(VLoad(2, bottom, group, length))
            program.append(VAdd(3, 1, 2, length))
            program.append(VSub(4, 1, 2, length))
            program.append(VStore(3, top, group, length))
            program.append(VStore(4, bottom, group, length))
    return program


def vsum_program(
    n: int,
    register_length: int,
    src_base: int,
    src_stride: int,
    out_base: int,
) -> Program:
    """Strip-mined reduction ``out[0] = sum(x)`` over ``n`` elements.

    Each strip is loaded (V1) and reduced with ``VSUM``; strip totals
    accumulate in a ping-pong accumulator pair (V3/V4, single-element
    adds) because the execute unit's destination register must differ
    from its sources.  The scalar result is stored at ``out_base``.
    """
    program = Program()
    accumulator = 3
    spare = 4
    first = True
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(1, src_base + src_stride * strip.offset, src_stride, length)
        )
        if first:
            program.append(VSum(accumulator, 1, length))
            first = False
        else:
            program.append(VSum(2, 1, length))
            program.append(VAdd(spare, accumulator, 2, 1))
            accumulator, spare = spare, accumulator
    program.append(VStore(accumulator, out_base, 1, 1))
    return program


def gather_program(
    n: int,
    register_length: int,
    table_base: int,
    index_base: int,
    index_stride: int,
    out_base: int,
    out_stride: int,
) -> Program:
    """Strip-mined indexed load: ``out[i] = table[index[i]]``.

    Per strip: load the index vector (V1), ``VGATHER`` through it into
    V2, store the gathered values — the sparse inner loop the paper's
    Section 6 gather hardware serves (the ISA and engine already run
    ``VGATHER``; this builder makes it a registered program kind).
    """
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(
                1,
                index_base + index_stride * strip.offset,
                index_stride,
                length,
            )
        )
        program.append(VGather(2, table_base, 1, length))
        program.append(
            VStore(2, out_base + out_stride * strip.offset, out_stride, length)
        )
    return program


def scatter_program(
    n: int,
    register_length: int,
    table_base: int,
    index_base: int,
    index_stride: int,
    src_base: int,
    src_stride: int,
) -> Program:
    """Strip-mined indexed store: ``table[index[i]] = x[i]``.

    Per strip: load the index vector (V1) and the data vector (V2),
    then ``VSCATTER`` the data through the indices.
    """
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(
                1,
                index_base + index_stride * strip.offset,
                index_stride,
                length,
            )
        )
        program.append(
            VLoad(2, src_base + src_stride * strip.offset, src_stride, length)
        )
        program.append(VScatter(2, table_base, 1, length))
    return program


def elementwise_product_program(
    n: int,
    register_length: int,
    a_base: int,
    a_stride: int,
    b_base: int,
    b_stride: int,
    out_base: int,
    out_stride: int,
) -> Program:
    """Strip-mined ``out = a * b`` (used by the matrix examples)."""
    program = Program()
    for strip in strip_bounds(n, register_length):
        length = None if strip.length == register_length else strip.length
        program.append(
            VLoad(1, a_base + a_stride * strip.offset, a_stride, length)
        )
        program.append(
            VLoad(2, b_base + b_stride * strip.offset, b_stride, length)
        )
        program.append(VMul(3, 1, 2, length))
        program.append(
            VStore(3, out_base + out_stride * strip.offset, out_stride, length)
        )
    return program
