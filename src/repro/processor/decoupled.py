"""The decoupled access/execute vector machine of Figure 1.

Two independent units share a vector register file:

* the **memory-access module** executes ``VLOAD``/``VSTORE`` through the
  access planner, the Figure-6-style engine (abstractly, the plan's
  request stream) and the cycle-accurate memory simulator;
* the **execute unit** performs element-wise arithmetic, one element per
  cycle after a short pipeline start-up.

Default operation is fully decoupled: an arithmetic instruction waits
until its operand registers are complete.  With ``chaining=True`` the
Section 5-F mode is enabled: when an operand was produced by a
*conflict-free* load, the execute unit consumes elements in the load's
(deterministic) delivery order, overlapping almost the entire load.  For
non-conflict-free loads the machine falls back to decoupled operation —
precisely the paper's argument for why out-of-order conflict-free access
re-enables chaining that buffered in-order access made impractical.

Timing is accounted per instruction; data really moves (loads read the
backing store, stores write it), so end-to-end numerical correctness is
asserted alongside cycle counts in the tests.

Most callers should not drive this class directly:
:class:`repro.processor.engine.ProgramEngine` is the one execution API
— it builds the machine, preloads memory, runs a program and packages
timelines, memory runs and correctness verdicts; the scenario facade
and the CLI both go through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gather import IndexedAccess, IndexedMode, plan_indexed
from repro.core.planner import AccessPlanner, PlanMode
from repro.core.vector import VectorAccess
from repro.errors import ProgramError
from repro.hardware.register_file import VectorRegisterFile
from repro.memory.config import MemoryConfig
from repro.memory.storage import MemoryStore
from repro.memory.system import MemorySystem
from repro.processor.isa import (
    VBinary,
    VGather,
    VLoad,
    VScalarOp,
    VScatter,
    VStore,
    VSum,
)
from repro.processor.program import Program


@dataclass(frozen=True)
class InstructionTiming:
    """Cycle accounting for one executed instruction."""

    position: int
    mnemonic: str
    unit: str  # "memory" or "execute"
    start_cycle: int
    end_cycle: int
    mode: str  # plan scheme for memory ops, chained/decoupled for execute
    conflict_free: bool | None = None

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle + 1


@dataclass(frozen=True)
class MachineResult:
    """Outcome of running a program."""

    timings: tuple[InstructionTiming, ...]
    total_cycles: int

    def memory_timings(self) -> list[InstructionTiming]:
        return [timing for timing in self.timings if timing.unit == "memory"]

    def chained_count(self) -> int:
        return sum(1 for timing in self.timings if timing.mode == "chained")

    def conflict_free_loads(self) -> int:
        return sum(
            1
            for timing in self.timings
            if timing.unit == "memory" and timing.conflict_free
        )


@dataclass
class _LoadRecord:
    """Per-element delivery times of the latest definition of a register."""

    conflict_free: bool
    deliveries: list[tuple[int, int]]  # (delivery_cycle, element_index)


class DecoupledVectorMachine:
    """A complete machine: processor + register file + memory + store.

    Parameters
    ----------
    config:
        Memory geometry (mapping, T, buffers).
    register_length:
        ``L`` — the vector register length the paper's scheme is designed
        around.
    register_count:
        Number of architectural vector registers.
    execute_startup:
        Pipeline depth of the execute unit (cycles before the first
        result element).
    chaining:
        Enable the Section 5-F chained LOAD -> EXECUTE mode.
    plan_mode:
        Forwarded to the access planner (``"auto"`` by default; the
        benches use ``"ordered"`` to model the baseline machine).
    """

    def __init__(
        self,
        config: MemoryConfig,
        register_length: int,
        register_count: int = 8,
        execute_startup: int = 4,
        chaining: bool = False,
        plan_mode: PlanMode = "auto",
        gather_mode: IndexedMode = "scheduled",
    ):
        if register_length < 1:
            raise ProgramError(
                f"register_length must be >= 1, got {register_length}"
            )
        if execute_startup < 1:
            raise ProgramError(
                f"execute_startup must be >= 1, got {execute_startup}"
            )
        self.config = config
        self.register_length = register_length
        self.register_count = register_count
        self.execute_startup = execute_startup
        self.chaining = chaining
        self.plan_mode: PlanMode = plan_mode
        self.gather_mode: IndexedMode = gather_mode
        self.planner = AccessPlanner(config.mapping, config.t)
        self.memory = MemorySystem(config)
        self.store = MemoryStore(config.mapping)
        self.registers = VectorRegisterFile(register_count, register_length)
        #: Per-access memory simulator results of the latest :meth:`run`,
        #: in instruction order — one entry per LOAD/STORE/GATHER/SCATTER.
        #: Lets callers (e.g. the scenario facade) read latency, stalls
        #: and module utilisation without re-simulating the access.
        self.memory_access_results: list = []

    def run(self, program: Program) -> MachineResult:
        """Execute ``program`` to completion; returns cycle accounting.

        The register file and backing store persist across calls, so a
        caller can preload data with :attr:`store` and read results back
        afterwards.
        """
        already_loaded = {
            number
            for number in range(self.register_count)
            if self.registers.register(number).valid_count > 0
        }
        program.validate(self.register_count, predefined=already_loaded)
        self.memory_access_results = []
        timings: list[InstructionTiming] = []
        memory_free = 1
        execute_free = 1
        register_ready: dict[int, int] = {
            number: 0 for number in already_loaded
        }
        load_records: dict[int, _LoadRecord] = {}

        for position, instruction in enumerate(program):
            if isinstance(instruction, VLoad):
                timing = self._run_load(
                    position, instruction, memory_free, register_ready, load_records
                )
                memory_free = self._memory_release(timing)
                timings.append(timing)
            elif isinstance(instruction, VStore):
                timing = self._run_store(
                    position, instruction, memory_free, register_ready
                )
                memory_free = self._memory_release(timing)
                timings.append(timing)
            elif isinstance(instruction, VGather):
                timing = self._run_gather(
                    position, instruction, memory_free, register_ready,
                    load_records,
                )
                memory_free = self._memory_release(timing)
                timings.append(timing)
            elif isinstance(instruction, VScatter):
                timing = self._run_scatter(
                    position, instruction, memory_free, register_ready
                )
                memory_free = self._memory_release(timing)
                timings.append(timing)
            elif isinstance(instruction, (VBinary, VScalarOp, VSum)):
                timing, execute_free = self._run_execute(
                    position,
                    instruction,
                    execute_free,
                    register_ready,
                    load_records,
                )
                timings.append(timing)
            else:  # pragma: no cover - defensive
                raise ProgramError(f"unsupported instruction {instruction!r}")

        total = max((timing.end_cycle for timing in timings), default=0)
        return MachineResult(timings=tuple(timings), total_cycles=total)

    # -- memory unit ----------------------------------------------------

    def _vector_for(self, instruction) -> VectorAccess:
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        if length > self.register_length:
            raise ProgramError(
                f"access length {length} exceeds the register length "
                f"{self.register_length}"
            )
        return VectorAccess(instruction.base, instruction.stride, length)

    def _run_load(
        self,
        position: int,
        instruction: VLoad,
        memory_free: int,
        register_ready: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> InstructionTiming:
        vector = self._vector_for(instruction)
        plan = self.planner.plan(vector, mode=self.plan_mode)
        result = self.memory.run_plan(plan)
        self.memory_access_results.append(result)
        start = memory_free
        offset = start - 1

        register = self.registers.register(instruction.dst)
        register.clear()
        deliveries: list[tuple[int, int]] = []
        for request in sorted(result.requests, key=lambda r: r.delivery_cycle):
            value = self.store.read(request.address)
            register.write(request.element_index, value)
            deliveries.append(
                (request.delivery_cycle + offset, request.element_index)
            )

        end = start + result.latency - 1
        register_ready[instruction.dst] = end
        load_records[instruction.dst] = _LoadRecord(
            conflict_free=result.conflict_free, deliveries=deliveries
        )
        return InstructionTiming(
            position,
            instruction.mnemonic,
            "memory",
            start,
            end,
            plan.scheme,
            result.conflict_free,
        )

    def _run_store(
        self,
        position: int,
        instruction: VStore,
        memory_free: int,
        register_ready: dict[int, int],
    ) -> InstructionTiming:
        vector = self._vector_for(instruction)
        plan = self.planner.plan(vector, mode=self.plan_mode)
        result = self.memory.run_stream(
            plan.request_stream(), stores=range(vector.length)
        )
        self.memory_access_results.append(result)
        register = self.registers.register(instruction.src)
        for element_index, address in plan.request_stream():
            self.store.write(address, register.read(element_index))

        start = max(memory_free, register_ready[instruction.src] + 1)
        end = start + result.latency - 1
        return InstructionTiming(
            position,
            instruction.mnemonic,
            "memory",
            start,
            end,
            plan.scheme,
            result.conflict_free,
        )

    def _indexed_access_for(self, instruction) -> IndexedAccess:
        """Build the gather/scatter address set from the index register."""
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        if length > self.register_length:
            raise ProgramError(
                f"access length {length} exceeds the register length "
                f"{self.register_length}"
            )
        index_register = self.registers.register(instruction.index)
        indices = [int(index_register.read(i)) for i in range(length)]
        return IndexedAccess(instruction.base, indices)

    def _run_gather(
        self,
        position: int,
        instruction: VGather,
        memory_free: int,
        register_ready: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> InstructionTiming:
        access = self._indexed_access_for(instruction)
        plan = plan_indexed(
            self.config.mapping, self.config.t, access, mode=self.gather_mode
        )
        result = self.memory.run_stream(plan.request_stream())
        self.memory_access_results.append(result)
        # The gather cannot start before its index register is complete.
        start = max(memory_free, register_ready[instruction.index] + 1)
        offset = start - 1

        register = self.registers.register(instruction.dst)
        register.clear()
        deliveries: list[tuple[int, int]] = []
        for request in sorted(result.requests, key=lambda r: r.delivery_cycle):
            register.write(
                request.element_index, self.store.read(request.address)
            )
            deliveries.append(
                (request.delivery_cycle + offset, request.element_index)
            )

        end = start + result.latency - 1
        register_ready[instruction.dst] = end
        load_records[instruction.dst] = _LoadRecord(
            conflict_free=result.conflict_free, deliveries=deliveries
        )
        return InstructionTiming(
            position,
            instruction.mnemonic,
            "memory",
            start,
            end,
            plan.scheme,
            result.conflict_free,
        )

    def _run_scatter(
        self,
        position: int,
        instruction: VScatter,
        memory_free: int,
        register_ready: dict[int, int],
    ) -> InstructionTiming:
        access = self._indexed_access_for(instruction)
        plan = plan_indexed(
            self.config.mapping, self.config.t, access, mode=self.gather_mode
        )
        result = self.memory.run_stream(
            plan.request_stream(), stores=range(access.length)
        )
        self.memory_access_results.append(result)
        source = self.registers.register(instruction.src)
        for element, address in plan.request_stream():
            self.store.write(address, source.read(element))

        operands_ready = max(
            register_ready[instruction.src], register_ready[instruction.index]
        )
        start = max(memory_free, operands_ready + 1)
        end = start + result.latency - 1
        return InstructionTiming(
            position,
            instruction.mnemonic,
            "memory",
            start,
            end,
            plan.scheme,
            result.conflict_free,
        )

    def _memory_release(self, timing: InstructionTiming) -> int:
        """The memory unit frees once the access fully drains.

        A conservative simplification (one outstanding vector access);
        the paper's latency analysis is likewise per-access.
        """
        return timing.end_cycle + 1

    # -- execute unit ---------------------------------------------------

    def _run_execute(
        self,
        position: int,
        instruction,
        execute_free: int,
        register_ready: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> tuple[InstructionTiming, int]:
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        reads = instruction.reads()
        ready_times = {register: register_ready[register] for register in reads}

        chain_register = self._chainable_operand(
            reads, ready_times, load_records
        )
        if chain_register is not None:
            other_ready = max(
                (ready_times[r] for r in reads if r != chain_register),
                default=0,
            )
            record = load_records[chain_register]
            deliveries = sorted(record.deliveries)[:length]
            start = max(
                execute_free, other_ready + 1, deliveries[0][0] + 1
            )
            finish_feed = start
            for slot, (delivery_cycle, _element) in enumerate(deliveries):
                finish_feed = max(start + slot, delivery_cycle + 1)
            end = finish_feed + self.execute_startup
            mode = "chained"
            next_free = finish_feed + 1
        else:
            operands_ready = max(ready_times.values(), default=0)
            start = max(execute_free, operands_ready + 1)
            end = start + self.execute_startup + length - 1
            mode = "decoupled"
            next_free = start + length

        self._apply_values(instruction, length)
        register_ready[instruction.writes()[0]] = end
        load_records.pop(instruction.writes()[0], None)
        return (
            InstructionTiming(
                position, instruction.mnemonic, "execute", start, end, mode
            ),
            next_free,
        )

    def _chainable_operand(
        self,
        reads: tuple[int, ...],
        ready_times: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> int | None:
        """Pick the operand to chain on: the latest-ready register whose
        last definition was a conflict-free load (Section 5-F's
        condition: the element arrival order is deterministic)."""
        if not self.chaining or not reads:
            return None
        candidate = max(reads, key=lambda register: ready_times[register])
        record = load_records.get(candidate)
        if record is None or not record.conflict_free:
            return None
        return candidate

    def _apply_values(self, instruction, length: int) -> None:
        """Move the data: element-wise semantics independent of timing."""
        destination = self.registers.register(instruction.writes()[0])
        destination.clear()
        if isinstance(instruction, VBinary):
            left = self.registers.register(instruction.a)
            right = self.registers.register(instruction.b)
            for index in range(length):
                destination.write(
                    index, instruction.apply(left.read(index), right.read(index))
                )
        elif isinstance(instruction, VSum):
            source = self.registers.register(instruction.src)
            total = sum(source.read(index) for index in range(length))
            for index in range(length):
                destination.write(index, total)
        elif isinstance(instruction, VScalarOp):
            source = self.registers.register(instruction.src)
            for index in range(length):
                destination.write(index, instruction.apply(source.read(index)))
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unsupported execute instruction {instruction!r}")
