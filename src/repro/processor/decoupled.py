"""The decoupled access/execute vector machine of Figure 1.

Two independent units share a vector register file:

* the **memory-access module** executes ``VLOAD``/``VSTORE`` (and the
  indexed ``VGATHER``/``VSCATTER``) through the access planner and the
  unified cycle-accurate :class:`~repro.memory.kernel.MemoryKernel`;
* the **execute unit** performs element-wise arithmetic, one element per
  cycle after a short pipeline start-up.

Default operation is fully decoupled: an arithmetic instruction waits
until its operand registers are complete.  With ``chaining=True`` the
Section 5-F mode is enabled: when an operand was produced by a
*conflict-free* load, the execute unit consumes elements in the load's
(deterministic) delivery order, overlapping almost the entire load.  For
non-conflict-free loads the machine falls back to decoupled operation —
precisely the paper's argument for why out-of-order conflict-free access
re-enables chaining that buffered in-order access made impractical.

The access unit sustains up to ``memory_streams`` concurrent in-flight
memory instructions (default: one per memory port, so the classic
single-port machine keeps the paper's serial per-access timing).
Consecutive hazard-free memory instructions become concurrent, named
streams of one kernel run — with two ports the unit issues a second
load while the first drains; with one port the streams interleave on
the shared address bus.  Register hazards, address overlap between
stores and anything else, and operand readiness all close a batch, so
program semantics never change — only the overlap.

Timing is accounted per instruction; data really moves (loads read the
backing store, stores write it), so end-to-end numerical correctness is
asserted alongside cycle counts in the tests.

Most callers should not drive this class directly:
:class:`repro.processor.engine.ProgramEngine` is the one execution API
— it builds the machine, preloads memory, runs a program and packages
timelines, memory runs and correctness verdicts; the scenario facade
and the CLI both go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.gather import IndexedAccess, IndexedMode, plan_indexed
from repro.core.planner import AccessPlanner, PlanMode
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, ProgramError
from repro.hardware.register_file import VectorRegisterFile
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelStream, MemoryKernel
from repro.memory.storage import MemoryStore
from repro.memory.system import MemorySystem, access_result_from_run
from repro.obs.tracer import resolve_tracer
from repro.processor.isa import (
    VBinary,
    VGather,
    VLoad,
    VScalarOp,
    VStore,
    VSum,
)
from repro.processor.program import Program


@dataclass(frozen=True)
class InstructionTiming:
    """Cycle accounting for one executed instruction.

    ``port`` and ``stream`` record the memory-side occupancy: which
    address/result port the access issued on and which concurrent
    stream slot of its batch it occupied (both ``None`` for execute
    instructions).
    """

    position: int
    mnemonic: str
    unit: str  # "memory" or "execute"
    start_cycle: int
    end_cycle: int
    mode: str  # plan scheme for memory ops, chained/decoupled for execute
    conflict_free: bool | None = None
    port: int | None = None
    stream: int | None = None

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle + 1


@dataclass(frozen=True)
class MachineResult:
    """Outcome of running a program.

    ``stream_concurrency_peak`` is the largest number of memory
    instructions that were in flight together (1 on the classic
    single-port, single-stream machine).
    """

    timings: tuple[InstructionTiming, ...]
    total_cycles: int
    stream_concurrency_peak: int = 1

    def memory_timings(self) -> list[InstructionTiming]:
        return [timing for timing in self.timings if timing.unit == "memory"]

    def chained_count(self) -> int:
        return sum(1 for timing in self.timings if timing.mode == "chained")

    def conflict_free_loads(self) -> int:
        return sum(
            1
            for timing in self.timings
            if timing.unit == "memory" and timing.conflict_free
        )


@dataclass
class _LoadRecord:
    """Per-element delivery times of the latest definition of a register."""

    conflict_free: bool
    deliveries: list[tuple[int, int]]  # (delivery_cycle, element_index)


@dataclass
class _PendingAccess:
    """One memory instruction prepared for (possibly batched) execution."""

    position: int
    instruction: object
    kind: str  # "load" | "store" | "gather" | "scatter"
    plan: object
    stream: tuple[tuple[int, int], ...]
    stores: tuple[int, ...]
    ready_cycle: int
    span: tuple[int, int]  # min/max raw address touched
    is_store_op: bool
    reads: frozenset[int] = field(default_factory=frozenset)
    writes: frozenset[int] = field(default_factory=frozenset)


class DecoupledVectorMachine:
    """A complete machine: processor + register file + memory + store.

    Parameters
    ----------
    config:
        Memory geometry (mapping, T, buffers, ports).
    register_length:
        ``L`` — the vector register length the paper's scheme is designed
        around.
    register_count:
        Number of architectural vector registers.
    execute_startup:
        Pipeline depth of the execute unit (cycles before the first
        result element).
    chaining:
        Enable the Section 5-F chained LOAD -> EXECUTE mode.
    plan_mode:
        Forwarded to the access planner (``"auto"`` by default; the
        benches use ``"ordered"`` to model the baseline machine).
    memory_streams:
        Maximum concurrent in-flight memory instructions the access
        unit sustains.  ``None`` (the default) tracks the memory's port
        count, so the classic single-port machine serialises accesses
        exactly as before.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  Instruction spans
        land on the ``machine/memory`` and ``machine/execute`` tracks
        (matching the timeline rows cycle for cycle); each memory
        batch's kernel-level events are emitted at absolute program
        cycles via a shifted sub-tracer.
    """

    def __init__(
        self,
        config: MemoryConfig,
        register_length: int,
        register_count: int = 8,
        execute_startup: int = 4,
        chaining: bool = False,
        plan_mode: PlanMode = "auto",
        gather_mode: IndexedMode = "scheduled",
        memory_streams: int | None = None,
        tracer=None,
    ):
        if register_length < 1:
            raise ProgramError(
                f"register_length must be >= 1, got {register_length}"
            )
        if execute_startup < 1:
            raise ProgramError(
                f"execute_startup must be >= 1, got {execute_startup}"
            )
        if memory_streams is not None and (
            not isinstance(memory_streams, int)
            or isinstance(memory_streams, bool)
            or memory_streams < 1
        ):
            raise ConfigurationError(
                f"machine field 'memory_streams' must be an integer >= 1 "
                f"(or None to track the port count), got {memory_streams!r}"
            )
        self.config = config
        self.register_length = register_length
        self.register_count = register_count
        self.execute_startup = execute_startup
        self.chaining = chaining
        self.plan_mode: PlanMode = plan_mode
        self.gather_mode: IndexedMode = gather_mode
        self.memory_streams = (
            memory_streams if memory_streams is not None else config.ports
        )
        self.tracer = resolve_tracer(tracer)
        self.planner = AccessPlanner(config.mapping, config.t)
        self.memory = MemorySystem(config)
        self.store = MemoryStore(config.mapping)
        self.registers = VectorRegisterFile(register_count, register_length)
        #: Per-access memory simulator results of the latest :meth:`run`,
        #: in instruction order — one entry per LOAD/STORE/GATHER/SCATTER.
        #: Lets callers (e.g. the scenario facade) read latency, stalls
        #: and module utilisation without re-simulating the access.
        self.memory_access_results: list = []

    def run(self, program: Program) -> MachineResult:
        """Execute ``program`` to completion; returns cycle accounting.

        The register file and backing store persist across calls, so a
        caller can preload data with :attr:`store` and read results back
        afterwards.
        """
        already_loaded = {
            number
            for number in range(self.register_count)
            if self.registers.register(number).valid_count > 0
        }
        program.validate(self.register_count, predefined=already_loaded)
        results_by_position: dict[int, object] = {}
        timings: dict[int, InstructionTiming] = {}
        memory_free = 1
        execute_free = 1
        register_ready: dict[int, int] = {
            number: 0 for number in already_loaded
        }
        load_records: dict[int, _LoadRecord] = {}
        batch: list[_PendingAccess] = []
        batch_start = 1
        peak = 0

        def batch_registers() -> tuple[frozenset[int], frozenset[int]]:
            reads: set[int] = set()
            writes: set[int] = set()
            for member in batch:
                reads |= member.reads
                writes |= member.writes
            return frozenset(reads), frozenset(writes)

        def finalise() -> None:
            nonlocal memory_free, batch, peak
            if not batch:
                return
            peak = max(peak, len(batch))
            memory_free = self._finalise_batch(
                batch,
                batch_start,
                register_ready,
                load_records,
                timings,
                results_by_position,
            )
            batch = []

        for position, instruction in enumerate(program):
            touched_reads = frozenset(instruction.reads())
            touched_writes = frozenset(instruction.writes())
            if batch:
                pending_reads, pending_writes = batch_registers()
                if touched_reads & pending_writes or touched_writes & (
                    pending_writes | pending_reads
                ):
                    # Register hazard against an in-flight access: drain
                    # the batch so values and ready cycles are current.
                    finalise()
            if instruction.is_memory:
                pending = self._prepare_memory(
                    position, instruction, register_ready
                )
                if batch and self._can_join(pending, batch, batch_start):
                    batch.append(pending)
                else:
                    finalise()
                    batch_start = max(memory_free, pending.ready_cycle + 1)
                    batch = [pending]
            elif isinstance(instruction, (VBinary, VScalarOp, VSum)):
                timing, execute_free = self._run_execute(
                    position,
                    instruction,
                    execute_free,
                    register_ready,
                    load_records,
                )
                timings[position] = timing
            else:  # pragma: no cover - defensive
                raise ProgramError(f"unsupported instruction {instruction!r}")
        finalise()

        self.memory_access_results = [
            results_by_position[position]
            for position in sorted(results_by_position)
        ]
        ordered = tuple(timings[position] for position in sorted(timings))
        total = max((timing.end_cycle for timing in ordered), default=0)
        return MachineResult(
            timings=ordered,
            total_cycles=total,
            stream_concurrency_peak=max(peak, 1),
        )

    # -- memory unit ----------------------------------------------------

    def _vector_for(self, instruction) -> VectorAccess:
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        if length > self.register_length:
            raise ProgramError(
                f"access length {length} exceeds the register length "
                f"{self.register_length}"
            )
        return VectorAccess(instruction.base, instruction.stride, length)

    def _indexed_access_for(self, instruction) -> IndexedAccess:
        """Build the gather/scatter address set from the index register."""
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        if length > self.register_length:
            raise ProgramError(
                f"access length {length} exceeds the register length "
                f"{self.register_length}"
            )
        index_register = self.registers.register(instruction.index)
        indices = [int(index_register.read(i)) for i in range(length)]
        return IndexedAccess(instruction.base, indices)

    def _prepare_memory(
        self, position: int, instruction, register_ready: dict[int, int]
    ) -> _PendingAccess:
        """Plan one memory instruction and capture its constraints."""
        if isinstance(instruction, (VLoad, VStore)):
            vector = self._vector_for(instruction)
            plan = self.planner.plan(vector, mode=self.plan_mode)
            stream = tuple(plan.request_stream())
            if isinstance(instruction, VLoad):
                return _PendingAccess(
                    position,
                    instruction,
                    "load",
                    plan,
                    stream,
                    (),
                    0,
                    _address_span(stream),
                    False,
                    writes=frozenset((instruction.dst,)),
                )
            return _PendingAccess(
                position,
                instruction,
                "store",
                plan,
                stream,
                tuple(range(vector.length)),
                register_ready[instruction.src],
                _address_span(stream),
                True,
                reads=frozenset((instruction.src,)),
            )
        access = self._indexed_access_for(instruction)
        plan = plan_indexed(
            self.config.mapping, self.config.t, access, mode=self.gather_mode
        )
        stream = tuple(plan.request_stream())
        if isinstance(instruction, VGather):
            return _PendingAccess(
                position,
                instruction,
                "gather",
                plan,
                stream,
                (),
                register_ready[instruction.index],
                _address_span(stream),
                False,
                reads=frozenset((instruction.index,)),
                writes=frozenset((instruction.dst,)),
            )
        return _PendingAccess(
            position,
            instruction,
            "scatter",
            plan,
            stream,
            tuple(range(access.length)),
            max(
                register_ready[instruction.src],
                register_ready[instruction.index],
            ),
            _address_span(stream),
            True,
            reads=frozenset((instruction.src, instruction.index)),
        )

    def _can_join(
        self,
        pending: _PendingAccess,
        batch: list[_PendingAccess],
        batch_start: int,
    ) -> bool:
        """May ``pending`` run concurrently with the open batch?

        Register hazards were already drained by the caller; what is
        left is capacity, operand readiness (a late-arriving operand
        must not delay streams already in flight) and memory ordering
        (a store may not overlap any concurrent access's address span).
        """
        if len(batch) >= self.memory_streams:
            return False
        if pending.ready_cycle + 1 > batch_start:
            return False
        for member in batch:
            if pending.is_store_op or member.is_store_op:
                if not _spans_disjoint(pending.span, member.span):
                    return False
        return True

    def _finalise_batch(
        self,
        batch: list[_PendingAccess],
        batch_start: int,
        register_ready: dict[int, int],
        load_records: dict[int, _LoadRecord],
        timings: dict[int, InstructionTiming],
        results_by_position: dict[int, object],
    ) -> int:
        """Run the batch (one kernel run), apply values, record timing.

        Returns the cycle the memory unit frees (all streams drained).
        """
        offset = batch_start - 1
        # Kernel events from this batch land at absolute program cycles
        # (the batch's own clock starts at 1); a null tracer shifts to
        # itself, so the untraced path is unchanged.
        batch_tracer = self.tracer.shifted(offset)
        if len(batch) == 1:
            member = batch[0]
            result = self.memory.run_stream(
                member.stream, stores=member.stores, tracer=batch_tracer
            )
            outcomes = [(member, result, result.latency, 0, 0)]
        else:
            kernel = MemoryKernel(self.config, tracer=batch_tracer)
            run = kernel.run(
                [
                    KernelStream.of(
                        f"i{member.position}",
                        member.stream,
                        stores=member.stores,
                    )
                    for member in batch
                ]
            )
            outcomes = [
                (
                    member,
                    access_result_from_run(
                        run, slot, self.config.service_ratio
                    ),
                    run.streams[slot].last_delivery_cycle,
                    run.streams[slot].port,
                    slot,
                )
                for slot, member in enumerate(batch)
            ]
        unit_free = batch_start
        for member, result, relative_end, port, slot in outcomes:
            end = offset + relative_end
            unit_free = max(unit_free, end + 1)
            results_by_position[member.position] = result
            if member.kind in ("load", "gather"):
                register = self.registers.register(member.instruction.dst)
                register.clear()
                deliveries: list[tuple[int, int]] = []
                for request in sorted(
                    result.requests, key=lambda r: r.delivery_cycle
                ):
                    register.write(
                        request.element_index, self.store.read(request.address)
                    )
                    deliveries.append(
                        (request.delivery_cycle + offset, request.element_index)
                    )
                register_ready[member.instruction.dst] = end
                load_records[member.instruction.dst] = _LoadRecord(
                    conflict_free=result.conflict_free, deliveries=deliveries
                )
            else:  # store / scatter: move register data into memory
                source = self.registers.register(member.instruction.src)
                for element, address in member.plan.request_stream():
                    self.store.write(address, source.read(element))
            timings[member.position] = InstructionTiming(
                member.position,
                member.instruction.mnemonic,
                "memory",
                batch_start,
                end,
                member.plan.scheme,
                result.conflict_free,
                port=port,
                stream=slot,
            )
            if self.tracer.enabled:
                self.tracer.span(
                    "machine/memory",
                    f"{member.instruction.mnemonic} @{member.position}",
                    batch_start,
                    end,
                    position=member.position,
                    mode=member.plan.scheme,
                    conflict_free=result.conflict_free,
                    port=port,
                    stream=slot,
                )
        return unit_free

    # -- execute unit ---------------------------------------------------

    def _run_execute(
        self,
        position: int,
        instruction,
        execute_free: int,
        register_ready: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> tuple[InstructionTiming, int]:
        length = (
            instruction.length
            if instruction.length is not None
            else self.register_length
        )
        reads = instruction.reads()
        ready_times = {register: register_ready[register] for register in reads}

        chain_register = self._chainable_operand(
            reads, ready_times, load_records
        )
        if chain_register is not None:
            other_ready = max(
                (ready_times[r] for r in reads if r != chain_register),
                default=0,
            )
            record = load_records[chain_register]
            deliveries = sorted(record.deliveries)[:length]
            start = max(
                execute_free, other_ready + 1, deliveries[0][0] + 1
            )
            finish_feed = start
            for slot, (delivery_cycle, _element) in enumerate(deliveries):
                finish_feed = max(start + slot, delivery_cycle + 1)
            end = finish_feed + self.execute_startup
            mode = "chained"
            next_free = finish_feed + 1
        else:
            operands_ready = max(ready_times.values(), default=0)
            start = max(execute_free, operands_ready + 1)
            end = start + self.execute_startup + length - 1
            mode = "decoupled"
            next_free = start + length

        self._apply_values(instruction, length)
        register_ready[instruction.writes()[0]] = end
        load_records.pop(instruction.writes()[0], None)
        if self.tracer.enabled:
            self.tracer.span(
                "machine/execute",
                f"{instruction.mnemonic} @{position}",
                start,
                end,
                position=position,
                mode=mode,
            )
        return (
            InstructionTiming(
                position, instruction.mnemonic, "execute", start, end, mode
            ),
            next_free,
        )

    def _chainable_operand(
        self,
        reads: tuple[int, ...],
        ready_times: dict[int, int],
        load_records: dict[int, _LoadRecord],
    ) -> int | None:
        """Pick the operand to chain on: the latest-ready register whose
        last definition was a conflict-free load (Section 5-F's
        condition: the element arrival order is deterministic)."""
        if not self.chaining or not reads:
            return None
        candidate = max(reads, key=lambda register: ready_times[register])
        record = load_records.get(candidate)
        if record is None or not record.conflict_free:
            return None
        return candidate

    def _apply_values(self, instruction, length: int) -> None:
        """Move the data: element-wise semantics independent of timing."""
        destination = self.registers.register(instruction.writes()[0])
        destination.clear()
        if isinstance(instruction, VBinary):
            left = self.registers.register(instruction.a)
            right = self.registers.register(instruction.b)
            for index in range(length):
                destination.write(
                    index, instruction.apply(left.read(index), right.read(index))
                )
        elif isinstance(instruction, VSum):
            source = self.registers.register(instruction.src)
            total = sum(source.read(index) for index in range(length))
            for index in range(length):
                destination.write(index, total)
        elif isinstance(instruction, VScalarOp):
            source = self.registers.register(instruction.src)
            for index in range(length):
                destination.write(index, instruction.apply(source.read(index)))
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unsupported execute instruction {instruction!r}")


def _address_span(stream: tuple[tuple[int, int], ...]) -> tuple[int, int]:
    """Min/max raw address a request stream touches (overlap test)."""
    addresses = [address for _element, address in stream]
    return min(addresses), max(addresses)


def _spans_disjoint(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[1] < b[0] or b[1] < a[0]
