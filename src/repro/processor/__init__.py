"""Decoupled access/execute vector processor (Figure 1) and its ISA."""

from repro.processor.chaining import (
    chained_pair_latency,
    chaining_speedup,
    conflict_free_load_latency,
    decoupled_pair_latency,
)
from repro.processor.decoupled import (
    DecoupledVectorMachine,
    InstructionTiming,
    MachineResult,
)
from repro.processor.isa import (
    Instruction,
    VAdd,
    VBinary,
    VGather,
    VLoad,
    VMul,
    VSAdd,
    VScalarOp,
    VScale,
    VScatter,
    VStore,
    VSub,
    VSum,
)
from repro.processor.program import Program, assemble, disassemble
from repro.processor.stripmine import (
    Strip,
    daxpy_program,
    elementwise_product_program,
    full_strip_fraction,
    strip_bounds,
)

__all__ = [
    "DecoupledVectorMachine",
    "Instruction",
    "InstructionTiming",
    "MachineResult",
    "Program",
    "Strip",
    "VAdd",
    "VBinary",
    "VGather",
    "VLoad",
    "VMul",
    "VSAdd",
    "VScalarOp",
    "VScale",
    "VScatter",
    "VStore",
    "VSub",
    "VSum",
    "assemble",
    "chained_pair_latency",
    "chaining_speedup",
    "conflict_free_load_latency",
    "daxpy_program",
    "decoupled_pair_latency",
    "disassemble",
    "elementwise_product_program",
    "full_strip_fraction",
    "strip_bounds",
]
