"""A small vector instruction set for the decoupled machine (Figure 1).

The paper's machine splits into a memory-access module and an execute
unit communicating through a vector register file.  This ISA is the
minimum needed to express the paper's motivating workloads (strided
loads/stores plus element-wise arithmetic), with enough structure for the
machine to account cycles per instruction:

=============  =======================================  ==============
Instruction    Meaning                                  Unit
=============  =======================================  ==============
``VLOAD``      ``V[dst][i] = MEM[base + i*stride]``     memory access
``VSTORE``     ``MEM[base + i*stride] = V[src][i]``     memory access
``VADD``       ``V[dst] = V[a] + V[b]``                 execute
``VSUB``       ``V[dst] = V[a] - V[b]``                 execute
``VMUL``       ``V[dst] = V[a] * V[b]``                 execute
``VSCALE``     ``V[dst] = scalar * V[src]``             execute
``VSADD``      ``V[dst] = scalar + V[src]``             execute
=============  =======================================  ==============

All vector instructions operate on ``length`` elements (defaulting to the
machine's register length; shorter lengths express strip-mined tails).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError


@dataclass(frozen=True)
class Instruction:
    """Base class: every instruction reads/writes vector registers."""

    def reads(self) -> tuple[int, ...]:
        """Vector register numbers whose values this instruction uses."""
        return ()

    def writes(self) -> tuple[int, ...]:
        """Vector register numbers this instruction defines."""
        return ()

    @property
    def is_memory(self) -> bool:
        """True for instructions executed by the memory-access module."""
        return False

    @property
    def mnemonic(self) -> str:
        return type(self).__name__.upper().removeprefix("V")


@dataclass(frozen=True)
class VLoad(Instruction):
    """Load a constant-stride vector into register ``dst``."""

    dst: int
    base: int
    stride: int
    length: int | None = None

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ProgramError("VLOAD with stride 0 is not a vector access")
        if self.length is not None and self.length < 1:
            raise ProgramError(f"VLOAD length must be >= 1, got {self.length}")

    def writes(self) -> tuple[int, ...]:
        return (self.dst,)

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class VStore(Instruction):
    """Store register ``src`` to a constant-stride vector in memory."""

    src: int
    base: int
    stride: int
    length: int | None = None

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ProgramError("VSTORE with stride 0 is not a vector access")
        if self.length is not None and self.length < 1:
            raise ProgramError(f"VSTORE length must be >= 1, got {self.length}")

    def reads(self) -> tuple[int, ...]:
        return (self.src,)

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class VBinary(Instruction):
    """Element-wise binary operation ``dst = a <op> b``."""

    dst: int
    a: int
    b: int
    length: int | None = None

    def reads(self) -> tuple[int, ...]:
        return (self.a, self.b)

    def writes(self) -> tuple[int, ...]:
        return (self.dst,)

    def apply(self, left: float, right: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class VAdd(VBinary):
    def apply(self, left: float, right: float) -> float:
        return left + right


@dataclass(frozen=True)
class VSub(VBinary):
    def apply(self, left: float, right: float) -> float:
        return left - right


@dataclass(frozen=True)
class VMul(VBinary):
    def apply(self, left: float, right: float) -> float:
        return left * right


@dataclass(frozen=True)
class VScalarOp(Instruction):
    """Element-wise op between a scalar and a vector register."""

    dst: int
    src: int
    scalar: float
    length: int | None = None

    def reads(self) -> tuple[int, ...]:
        return (self.src,)

    def writes(self) -> tuple[int, ...]:
        return (self.dst,)

    def apply(self, value: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class VScale(VScalarOp):
    """``dst = scalar * src``."""

    def apply(self, value: float) -> float:
        return self.scalar * value


@dataclass(frozen=True)
class VSAdd(VScalarOp):
    """``dst = scalar + src``."""

    def apply(self, value: float) -> float:
        return self.scalar + value


@dataclass(frozen=True)
class VGather(Instruction):
    """Indexed load: ``V[dst][i] = MEM[base + int(V[index][i])]``.

    The index vector lives in a register, as in classic vector ISAs; the
    memory-access module plans the requests with the cooldown scheduler
    (see :mod:`repro.core.gather`), which the paper's out-of-order
    hardware supports for free — element indices already travel with the
    requests and the register file is random access.
    """

    dst: int
    base: int
    index: int
    length: int | None = None

    def reads(self) -> tuple[int, ...]:
        return (self.index,)

    def writes(self) -> tuple[int, ...]:
        return (self.dst,)

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class VScatter(Instruction):
    """Indexed store: ``MEM[base + int(V[index][i])] = V[src][i]``."""

    src: int
    base: int
    index: int
    length: int | None = None

    def reads(self) -> tuple[int, ...]:
        return (self.src, self.index)

    def writes(self) -> tuple[int, ...]:
        return ()

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class VSum(Instruction):
    """Reduction: broadcast ``sum(V[src])`` into every element of dst.

    Modelled as a linear accumulation (one element per cycle plus the
    pipeline start-up), the organisation of the classic register-based
    vector machines the paper targets.
    """

    dst: int
    src: int
    length: int | None = None

    def reads(self) -> tuple[int, ...]:
        return (self.src,)

    def writes(self) -> tuple[int, ...]:
        return (self.dst,)
