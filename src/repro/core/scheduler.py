"""Oracle conflict-free scheduling for arbitrary T-matched vectors.

The paper's reordering is deliberately structured so the Figure 5/6
hardware can generate it with two adders and a handful of latches.  This
module answers the natural ablation question: *how much coverage does
that structure give up?*  It implements an idealised scheduler with no
hardware constraints: given the module number of every element, greedily
build an issue order in which requests to the same module are at least
``T`` slots apart.

The scheduling problem is the classic "task scheduler with cooldown".
With module multiset counts ``c_1 >= c_2 >= ...`` over ``L`` elements, a
zero-idle schedule exists iff

    ``(c_1 - 1) * T + k <= L``

where ``k`` is the number of modules attaining ``c_1`` — a refinement of
the paper's necessary T-matched condition ``c_1 <= L / T``.  The greedy
*most-remaining-first with cooldown* rule achieves the bound, so for any
T-matched vector (any length, any mapping — not just the window's chunk
multiples) the oracle finds a conflict-free order.

The ablation bench compares the oracle against the paper's ordering:
inside the window they agree on latency exactly; the oracle additionally
covers awkward lengths — at the price of needing the whole module
sequence up front, which is precisely what 1992 hardware could not do.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Sequence

from repro.core.distributions import is_conflict_free
from repro.core.orderings import RequestOrder
from repro.core.planner import AccessPlan, AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import OrderingError


def schedule_with_cooldown(
    modules: Sequence[int], cooldown: int, best_effort: bool = False
) -> list[int] | None:
    """Order positions so equal values are at least ``cooldown`` apart.

    Parameters
    ----------
    modules:
        ``modules[i]`` is the module of element ``i``.
    cooldown:
        The service ratio ``T``: two requests to one module must be at
        least ``T`` issue slots apart.
    best_effort:
        When no module is eligible (all pending modules still cooling
        down) the strict mode returns ``None``; best-effort mode instead
        issues the module that releases soonest — accepting that one
        conflict — and continues.  The result is then a permutation that
        *minimises clustering* rather than a proof of conflict-freedom.

    Returns
    -------
    A permutation of ``range(len(modules))``, or ``None`` in strict mode
    when no zero-idle schedule exists.  The greedy rule is *most
    remaining elements first*, excluding modules still in cooldown; ties
    break on module number for determinism.
    """
    if cooldown < 1:
        raise OrderingError(f"cooldown must be >= 1, got {cooldown}")
    positions: dict[int, list[int]] = {}
    for position, module in enumerate(modules):
        positions.setdefault(module, []).append(position)

    # Max-heap of (-remaining, module).
    heap: list[tuple[int, int]] = [
        (-len(queue), module) for module, queue in positions.items()
    ]
    heapq.heapify(heap)
    # Modules cooling down, as a heap of (release_slot, remaining, module).
    cooling: list[tuple[int, int, int]] = []
    order: list[int] = []
    taken: dict[int, int] = {module: 0 for module in positions}

    for slot in range(len(modules)):
        while cooling and cooling[0][0] <= slot:
            _release, remaining, module = heapq.heappop(cooling)
            heapq.heappush(heap, (-remaining, module))
        if heap:
            negative_remaining, module = heapq.heappop(heap)
            remaining = -negative_remaining - 1
        elif best_effort:
            # Concede one conflict: take the soonest-releasing module.
            _release, pending, module = heapq.heappop(cooling)
            remaining = pending - 1
        else:
            return None  # every pending module is cooling down: idle slot
        order.append(positions[module][taken[module]])
        taken[module] += 1
        if remaining > 0:
            heapq.heappush(cooling, (slot + cooldown, remaining, module))
    return order


def feasible_with_cooldown(modules: Sequence[int], cooldown: int) -> bool:
    """Closed-form feasibility test for a zero-idle schedule.

    ``(c_max - 1) * cooldown + k <= L`` with ``k`` = number of modules
    whose count equals ``c_max``.  Verified against the greedy scheduler
    in the tests.
    """
    if not modules:
        return True
    counts = Counter(modules)
    c_max = max(counts.values())
    k = sum(1 for count in counts.values() if count == c_max)
    return (c_max - 1) * cooldown + k <= len(modules)


class OraclePlanner:
    """An idealised planner: conflict-free whenever mathematically possible.

    Wraps an :class:`~repro.core.planner.AccessPlanner`'s mapping and
    service ratio but replaces the structured Section 3/4 orderings with
    the greedy cooldown schedule.  Used by the ablation benches as the
    upper bound on what any reordering could achieve.
    """

    def __init__(self, planner: AccessPlanner):
        self.mapping = planner.mapping
        self.t = planner.t
        self.service_ratio = planner.service_ratio

    def plan(self, vector: VectorAccess) -> AccessPlan:
        """Greedy conflict-free plan; falls back to canonical order when
        no zero-idle schedule exists (non-T-matched vectors)."""
        modules = [
            self.mapping.module_of(self.mapping.reduce(address))
            for address in vector.addresses()
        ]
        schedule = schedule_with_cooldown(modules, self.service_ratio)
        if schedule is None:
            indices = tuple(range(vector.length))
            name = "canonical"
        else:
            indices = tuple(schedule)
            name = "oracle"
        order = RequestOrder(name, indices, vector)
        ordered_modules = tuple(modules[index] for index in indices)
        return AccessPlan(
            vector=vector,
            order=order,
            modules=ordered_modules,
            service_ratio=self.service_ratio,
            conflict_free=is_conflict_free(
                ordered_modules, self.service_ratio
            ),
        )
