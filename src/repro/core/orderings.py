"""Request orderings: canonical, subsequence (Sec 3.1), conflict-free (3.2/4.2).

A *request order* is the permutation of element indices in which the
memory-access unit issues the vector's elements.  Three orders matter:

* **canonical** — elements in order; conflict-free only for the single
  family ``x = s`` (matched Eq. 1) or ``s <= x <= s+m-t`` (unmatched);
* **subsequence** (Section 3.1) — the Figure 4 loop nest: subsequences
  issued back-to-back in their natural order.  Each subsequence is
  conflict-free on its own, but different subsequences may have different
  temporal distributions, so the whole vector can still conflict (bounded
  excess latency of at most ``T - 1`` cycles with ``q = 2`` input
  buffers);
* **conflict-free** (Sections 3.2 / 4.2) — every subsequence is issued in
  the *key order of the first subsequence*, where the key is the module
  number (matched), the supermodule number (unmatched, low window) or the
  section number (unmatched, high window).  Requests to the same module
  are then always exactly ``T`` issue slots apart, so the whole vector is
  conflict-free and completes in the minimum ``T + L + 1`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.subsequences import SubsequencePlan
from repro.core.vector import VectorAccess
from repro.errors import OrderingError

#: Signature of a reorder key: maps an (unreduced) element address to the
#: small integer the conflict-free ordering aligns across subsequences.
KeyFunction = Callable[[int], int]


@dataclass(frozen=True)
class RequestOrder:
    """A complete issue order for one vector access.

    Attributes
    ----------
    name:
        ``"canonical"``, ``"subsequence"`` or ``"conflict_free"``.
    indices:
        Element indices (0-based) in issue order; always a permutation of
        ``range(vector.length)``.
    vector:
        The access the order belongs to.
    """

    name: str
    indices: tuple[int, ...]
    vector: VectorAccess

    def __post_init__(self) -> None:
        if len(self.indices) != self.vector.length:
            raise OrderingError(
                f"order has {len(self.indices)} entries for a vector of "
                f"length {self.vector.length}"
            )

    def addresses(self) -> list[int]:
        """Element addresses in issue order (unreduced)."""
        return [self.vector.address_of(index) for index in self.indices]

    def is_permutation(self) -> bool:
        """Sanity check used by the tests."""
        return sorted(self.indices) == list(range(self.vector.length))


def canonical_order(vector: VectorAccess) -> RequestOrder:
    """Elements in natural order (the ordered-access baseline)."""
    return RequestOrder("canonical", tuple(range(vector.length)), vector)


def subsequence_order(plan: SubsequencePlan) -> RequestOrder:
    """The Section 3.1 order: subsequences back-to-back, natural order.

    Matches the Figure 4 control loop: within a subsequence the address
    grows by ``sigma * 2**w``; between subsequences and across chunk
    boundaries it steps by ``sigma * 2**x``.
    """
    return RequestOrder(
        "subsequence", tuple(plan.all_indices_natural()), plan.vector
    )


def conflict_free_order(
    plan: SubsequencePlan, key_of: KeyFunction
) -> RequestOrder:
    """The Section 3.2 / 4.2 order: align every subsequence on the first.

    ``key_of`` maps an element address to the alignment key; Lemmas 2 and
    4 guarantee the key takes all ``2**t`` values exactly once inside
    every subsequence, and the XOR mappings guarantee the key of a given
    (chunk, subsequence, position) only depends on the position pattern —
    so issuing each subsequence in the first subsequence's key order puts
    same-key (hence possibly same-module) requests exactly ``T`` slots
    apart.

    Raises
    ------
    OrderingError
        If some subsequence does not contain every key exactly once —
        i.e. the caller applied the ordering outside its window of
        validity.
    """
    vector = plan.vector
    first_indices = plan.subsequence_indices(0, 0)
    key_sequence = [key_of(vector.address_of(i)) for i in first_indices]
    if len(set(key_sequence)) != len(key_sequence):
        raise OrderingError(
            f"first subsequence repeats a key ({key_sequence}); the "
            "conflict-free ordering requires distinct keys per subsequence"
        )
    position_of_key = {key: pos for pos, key in enumerate(key_sequence)}

    ordered: list[int] = []
    slots: list[int | None] = [None] * len(key_sequence)
    for chunk, sub, indices in plan.iter_subsequences():
        for slot in range(len(slots)):
            slots[slot] = None
        for index in indices:
            key = key_of(vector.address_of(index))
            position = position_of_key.get(key)
            if position is None:
                raise OrderingError(
                    f"subsequence ({chunk}, {sub}) produced key {key} absent "
                    f"from the first subsequence {key_sequence}"
                )
            if slots[position] is not None:
                raise OrderingError(
                    f"subsequence ({chunk}, {sub}) repeats key {key}; the "
                    "reordering window does not cover this stride family"
                )
            slots[position] = index
        ordered.extend(slot for slot in slots if slot is not None)
    return RequestOrder("conflict_free", tuple(ordered), vector)
