"""Stride families: the sigma * 2**x decomposition used throughout the paper.

Every non-zero integer stride ``S`` factors uniquely as ``S = sigma * 2**x``
with ``sigma`` odd.  Following Harper and Linebarger (and Section 2 of the
paper) all strides with the same exponent ``x`` form the *family* ``x``:
they behave identically with respect to the XOR mappings, because only the
power-of-two part of the stride determines which address bits cycle.

The fraction of strides that belong to family ``x`` (among all non-zero
integers, equivalently among a uniform choice of odd/even factorisations)
is ``2**-(x+1)``: half of all strides are odd (family 0), a quarter are
twice an odd number (family 1), and so on.  Section 5-A of the paper uses
these fractions to weigh the conflict-free window.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import VectorSpecError


def decompose_stride(stride: int) -> tuple[int, int]:
    """Return ``(sigma, x)`` with ``stride = sigma * 2**x`` and sigma odd.

    Negative strides are supported: the sign is carried by ``sigma`` so
    that ``x`` still identifies the family (the module-sequence algebra is
    unchanged under negation because it works modulo powers of two).

    Raises
    ------
    VectorSpecError
        If ``stride`` is zero, which has no family (a zero-stride access
        touches a single address and is rejected by the planner).
    """
    if stride == 0:
        raise VectorSpecError("stride 0 has no sigma * 2**x decomposition")
    x = 0
    sigma = stride
    while sigma % 2 == 0:
        sigma //= 2
        x += 1
    return sigma, x


def family_of(stride: int) -> int:
    """Return the family exponent ``x`` of ``stride`` (sigma * 2**x)."""
    return decompose_stride(stride)[1]


def odd_part(stride: int) -> int:
    """Return the odd factor ``sigma`` of ``stride``."""
    return decompose_stride(stride)[0]


def family_fraction(family: int) -> Fraction:
    """Fraction of all strides that belong to ``family`` (= ``2**-(x+1)``)."""
    if family < 0:
        raise VectorSpecError(f"stride family must be >= 0, got {family}")
    return Fraction(1, 2 ** (family + 1))


def window_fraction(window: int) -> Fraction:
    """Fraction of strides covered by families ``0..window`` inclusive.

    Section 5-A:  ``f = 1 - 2**-(w+1)``.
    """
    if window < 0:
        raise VectorSpecError(f"window bound must be >= 0, got {window}")
    return Fraction(1) - Fraction(1, 2 ** (window + 1))


@dataclass(frozen=True)
class StrideFamily:
    """The set of strides ``sigma * 2**x`` with ``sigma`` odd, for fixed x."""

    x: int

    def __post_init__(self) -> None:
        if self.x < 0:
            raise VectorSpecError(f"stride family must be >= 0, got {self.x}")

    def contains(self, stride: int) -> bool:
        """True when ``stride`` belongs to this family."""
        return stride != 0 and family_of(stride) == self.x

    def representative(self) -> int:
        """The smallest positive member, ``2**x`` itself (sigma = 1)."""
        return 1 << self.x

    def members(self, bound: int) -> list[int]:
        """All positive members ``<= bound``, in increasing order."""
        step = 1 << (self.x + 1)
        first = 1 << self.x
        return list(range(first, bound + 1, step))

    def fraction(self) -> Fraction:
        """Fraction of all strides in this family (``2**-(x+1)``)."""
        return family_fraction(self.x)

    def __str__(self) -> str:
        return f"family x={self.x} (strides sigma*2^{self.x}, sigma odd)"


def families_up_to(max_x: int) -> list[StrideFamily]:
    """The families ``0..max_x`` inclusive, e.g. a conflict-free window."""
    if max_x < 0:
        raise VectorSpecError(f"max_x must be >= 0, got {max_x}")
    return [StrideFamily(x) for x in range(max_x + 1)]


def strides_of_families(max_stride: int) -> dict[int, list[int]]:
    """Group the strides ``1..max_stride`` by family exponent.

    Useful for Monte-Carlo estimates of the conflict-free fraction
    (experiment E08): the returned dict maps family ``x`` to its members.
    """
    groups: dict[int, list[int]] = {}
    for stride in range(1, max_stride + 1):
        groups.setdefault(family_of(stride), []).append(stride)
    return groups
