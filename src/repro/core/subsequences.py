"""Subsequence construction — Lemmas 2 and 4 of the paper.

For a stride family ``x`` at or below the mapping parameter ``w`` (``w`` is
``s`` for the matched scheme of Lemma 2 and ``y`` for the section scheme of
Lemma 4), the ``P = 2**(w+t-x)`` elements of one period group into
``2**(w-x)`` *subsequences* of ``2**t`` elements each: subsequence ``j``
(0-based here; the paper is 1-based) contains the period's elements

    ``j + k1 * 2**(w-x)``        for ``0 <= k1 <= 2**t - 1``.

Consecutive elements of a subsequence are ``2**(w-x)`` element positions
apart, i.e. their addresses differ by ``sigma * 2**w`` — which is why the
hardware of Figure 5 only needs the two increments ``sigma * 2**x`` and
``sigma * 2**w``.  The lemmas guarantee that the elements of one
subsequence land in ``2**t`` distinct modules (Lemma 2) or distinct
sections (Lemma 4), making each subsequence conflict-free on its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.vector import VectorAccess
from repro.errors import OrderingError


@dataclass(frozen=True)
class SubsequencePlan:
    """The chunk/subsequence decomposition of a vector access.

    Attributes
    ----------
    vector:
        The access being decomposed.
    family:
        Stride family ``x``.
    w:
        The mapping exponent the decomposition is built against (``s`` or
        ``y``).
    t:
        ``T = 2**t`` is the memory/processor cycle ratio; each
        subsequence has ``2**t`` elements.
    chunk_elements:
        ``2**(w+t-x)`` — elements per chunk (one mapping period for the
        matched case; the inner period for the section low window).
    subsequences_per_chunk:
        ``2**(w-x)``.
    chunks:
        ``length / chunk_elements``.
    """

    vector: VectorAccess
    family: int
    w: int
    t: int
    chunk_elements: int
    subsequences_per_chunk: int
    chunks: int

    @property
    def elements_per_subsequence(self) -> int:
        """Always ``2**t`` (Lemmas 2 and 4)."""
        return 1 << self.t

    @property
    def intra_step_elements(self) -> int:
        """Element-index step inside a subsequence, ``2**(w-x)``."""
        return self.subsequences_per_chunk

    @property
    def intra_step_address(self) -> int:
        """Address step inside a subsequence, ``sigma * 2**w``."""
        return self.vector.stride * self.intra_step_elements

    def subsequence_indices(self, chunk: int, subsequence: int) -> list[int]:
        """Global 0-based element indices of one subsequence."""
        if not 0 <= chunk < self.chunks:
            raise OrderingError(f"chunk {chunk} out of range (chunks={self.chunks})")
        if not 0 <= subsequence < self.subsequences_per_chunk:
            raise OrderingError(
                f"subsequence {subsequence} out of range "
                f"(per chunk: {self.subsequences_per_chunk})"
            )
        start = chunk * self.chunk_elements + subsequence
        step = self.intra_step_elements
        return [start + k * step for k in range(self.elements_per_subsequence)]

    def iter_subsequences(self):
        """Yield ``(chunk, subsequence, element_indices)`` in natural order.

        The natural order is the Figure 4 loop nest: all subsequences of
        chunk 0, then chunk 1, and so on.
        """
        for chunk in range(self.chunks):
            for subsequence in range(self.subsequences_per_chunk):
                yield chunk, subsequence, self.subsequence_indices(
                    chunk, subsequence
                )

    def all_indices_natural(self) -> list[int]:
        """Element indices in the Section 3.1 issue order."""
        out: list[int] = []
        for _, _, indices in self.iter_subsequences():
            out.extend(indices)
        return out


def build_subsequences(
    vector: VectorAccess, w: int, t: int
) -> SubsequencePlan:
    """Decompose ``vector`` against exponent ``w`` (Lemma 2 with ``w = s``,
    Lemma 4 with ``w = y``).

    Raises
    ------
    OrderingError
        If the stride family exceeds ``w`` (the lemmas do not apply) or the
        vector length is not a positive multiple of the chunk size
        ``2**(w+t-x)`` (Lemma 1's ``L = k * Px`` precondition fails —
        callers fall back to ordered access or the short-vector split).
    """
    x = vector.family
    if x > w:
        raise OrderingError(
            f"stride family x={x} exceeds the mapping exponent w={w}; "
            "Lemma 2/4 subsequences are undefined"
        )
    chunk = 1 << (w + t - x)
    if vector.length % chunk != 0 or vector.length < chunk:
        raise OrderingError(
            f"vector length {vector.length} is not a positive multiple of "
            f"the chunk size 2**(w+t-x) = {chunk}; the reordered access "
            "requires L = k * Px (Lemma 1)"
        )
    return SubsequencePlan(
        vector=vector,
        family=x,
        w=w,
        t=t,
        chunk_elements=chunk,
        subsequences_per_chunk=1 << (w - x),
        chunks=vector.length // chunk,
    )
