"""Vector access specification: base address, constant stride, fixed length.

The paper's access pattern (Section 2): the ``i``-th element of the vector
has address ``A1 + S * (i - 1)``; we use 0-based element indices, so
element ``i`` has address ``base + stride * i``.  The vector can start at
any address, and the interesting lengths are powers of two equal to the
machine's vector-register length ``L = 2**lambda``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.families import decompose_stride
from repro.errors import VectorSpecError
from repro.mappings.base import is_power_of_two


@dataclass(frozen=True)
class VectorAccess:
    """A single constant-stride vector access request.

    Attributes
    ----------
    base:
        Address of element 0 (the paper's ``A1``); any value is legal,
        negative bases wrap in the machine address space.
    stride:
        Constant element separation ``S = sigma * 2**x`` (sigma odd,
        non-zero; negative strides are allowed).
    length:
        Number of elements ``L >= 1``.
    """

    base: int
    stride: int
    length: int

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise VectorSpecError(
                "stride must be non-zero; a zero-stride access touches a "
                "single address and is not a vector in the paper's sense"
            )
        if self.length < 1:
            raise VectorSpecError(f"length must be >= 1, got {self.length}")

    @property
    def sigma(self) -> int:
        """Odd part of the stride (may be negative)."""
        return decompose_stride(self.stride)[0]

    @property
    def family(self) -> int:
        """Family exponent ``x`` of the stride (``S = sigma * 2**x``)."""
        return decompose_stride(self.stride)[1]

    @property
    def lambda_exponent(self) -> int:
        """``lambda`` with ``L = 2**lambda``.

        Raises
        ------
        VectorSpecError
            If the length is not a power of two (short vectors go through
            :mod:`repro.core.shortvec` instead).
        """
        if not is_power_of_two(self.length):
            raise VectorSpecError(
                f"length {self.length} is not a power of two; use the "
                "short-vector planner for general lengths"
            )
        return self.length.bit_length() - 1

    def address_of(self, index: int) -> int:
        """Address of element ``index`` (0-based, unreduced)."""
        if not 0 <= index < self.length:
            raise VectorSpecError(
                f"element index {index} out of range for length {self.length}"
            )
        return self.base + self.stride * index

    def addresses(self) -> list[int]:
        """All element addresses in element order (unreduced)."""
        return [self.base + self.stride * i for i in range(self.length)]

    def slice(self, start: int, count: int) -> "VectorAccess":
        """Sub-vector of ``count`` elements starting at element ``start``.

        Used by the short-vector planner (Section 5-C) and by strip-mining
        to carve register-length pieces out of a long vector.
        """
        if start < 0 or count < 1 or start + count > self.length:
            raise VectorSpecError(
                f"slice [{start}, {start + count}) out of range for length "
                f"{self.length}"
            )
        return VectorAccess(self.base + self.stride * start, self.stride, count)

    def __str__(self) -> str:
        return f"vector(base={self.base}, stride={self.stride}, L={self.length})"
