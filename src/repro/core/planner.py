"""The access planner: chooses and materialises a request order.

This is the library's central entry point.  Given a mapping, the memory's
service ratio ``T = 2**t`` and a :class:`~repro.core.vector.VectorAccess`,
the planner produces an :class:`AccessPlan` — the exact issue order of the
vector's elements together with its temporal distribution and a
conflict-freedom verdict.  The plan's request stream feeds both the
cycle-accurate simulator (:mod:`repro.memory`) and the register-level
hardware models (:mod:`repro.hardware`), which are tested to reproduce it
cycle for cycle.

Scheme selection (mode ``"auto"``) follows the paper:

* matched-style mappings (anything exposing the ``s`` exponent — Eq. (1),
  field interleaving, skewing): Lemma-2 subsequences aligned on the first
  subsequence's *module* order (Section 3.2);
* the section mapping of Eq. (2): low-window families use Lemma-2
  subsequences aligned on *supermodule* order, high-window families use
  Lemma-4 subsequences aligned on *section* order (Section 4.2);
* anything else (family outside the windows, length not a chunk multiple,
  mapping without structure): ordered access.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Literal

from repro.core.distributions import (
    is_conflict_free,
    spatial_distribution,
    is_t_matched,
)
from repro.core.orderings import (
    RequestOrder,
    canonical_order,
    conflict_free_order,
    subsequence_order,
)
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, OrderingError
from repro.mappings.base import AddressMapping
from repro.mappings.section import SectionXorMapping

PlanMode = Literal["auto", "ordered", "subsequence", "conflict_free"]

#: Set to ``0``/``off``/``false``/``no`` to disable the process-wide
#: plan cache (every ``plan()`` call then recomputes from scratch).
PLAN_CACHE_ENV = "REPRO_PLAN_CACHE"
#: Override the cache capacity (entries); read once at import.
PLAN_CACHE_SIZE_ENV = "REPRO_PLAN_CACHE_SIZE"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})


def plan_cache_enabled() -> bool:
    """Whether :meth:`AccessPlanner.plan` consults the shared cache."""
    value = os.environ.get(PLAN_CACHE_ENV, "1").strip().lower()
    return value not in _DISABLED_VALUES


class PlanCache:
    """A thread-safe LRU of finished :class:`AccessPlan` objects.

    Keyed on the exact plan inputs — ``(type(mapping),
    mapping.cache_token(), t, mode, vector)`` — so a hit is
    bit-identical to recomputation by construction: plans are frozen,
    planning is a pure function of the key, and mappings without a
    declared :meth:`~repro.mappings.base.AddressMapping.cache_token`
    are never cached.  The win comes from repetition the per-point
    paths cannot see: a strip that stores the vector it just loaded, a
    chained program re-run on the non-chaining machine, and grid
    points that share workload geometry across ``q``/ports/streams
    axes all re-plan identical vectors.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(
                f"plan cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._plans: OrderedDict[tuple, AccessPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> "AccessPlan | None":
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, key: tuple, plan: "AccessPlan") -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "plan_cache_hits": self.hits,
                "plan_cache_misses": self.misses,
                "plan_cache_entries": len(self._plans),
                "plan_cache_capacity": self.capacity,
            }


def _default_capacity() -> int:
    try:
        value = int(os.environ.get(PLAN_CACHE_SIZE_ENV, "4096"))
    except ValueError:
        return 4096
    return value if value >= 1 else 4096


#: The process-wide cache every :class:`AccessPlanner` shares.
_PLAN_CACHE = PlanCache(_default_capacity())


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/occupancy counters of the shared plan cache."""
    return _PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Empty the shared plan cache (tests, benchmarks)."""
    _PLAN_CACHE.clear()


@dataclass(frozen=True)
class AccessPlan:
    """A fully materialised vector access.

    Attributes
    ----------
    vector:
        The access being planned.
    order:
        The issue order (a permutation of element indices).
    modules:
        Temporal distribution: module of each request in issue order.
    service_ratio:
        ``T = 2**t``.
    conflict_free:
        Verdict of the Section 2 definition on ``modules``.
    """

    vector: VectorAccess
    order: RequestOrder
    modules: tuple[int, ...]
    service_ratio: int
    conflict_free: bool

    @property
    def scheme(self) -> str:
        """Name of the ordering used (``canonical`` / ``subsequence`` /
        ``conflict_free``)."""
        return self.order.name

    @property
    def minimum_latency(self) -> int:
        """The conflict-free latency ``T + L + 1`` (Section 2)."""
        return self.service_ratio + self.vector.length + 1

    def request_stream(self) -> list[tuple[int, int]]:
        """``(element_index, address)`` pairs in issue order.

        The element index travels with the request so the vector register
        file can be written in element order even though requests are
        issued out of order (Section 5-D: the register must be random
        access).
        """
        return [
            (index, self.vector.address_of(index)) for index in self.order.indices
        ]


class AccessPlanner:
    """Builds :class:`AccessPlan` objects for one memory configuration.

    Parameters
    ----------
    mapping:
        The module-number mapping of the memory.
    t:
        ``T = 2**t`` — the module service time in processor cycles.  For a
        matched memory ``t == mapping.module_bits``; an unmatched memory
        has more module bits than ``t``.
    """

    def __init__(self, mapping: AddressMapping, t: int):
        if t < 0:
            raise ConfigurationError(f"t must be >= 0, got {t}")
        if mapping.module_bits < t:
            raise ConfigurationError(
                f"memory with {mapping.module_count} modules cannot hide a "
                f"service time of 2**{t} cycles (m={mapping.module_bits} < t={t})"
            )
        self.mapping = mapping
        self.t = t

    @property
    def service_ratio(self) -> int:
        """``T = 2**t``."""
        return 1 << self.t

    def plan(self, vector: VectorAccess, mode: PlanMode = "auto") -> AccessPlan:
        """Materialise an access plan for ``vector``.

        ``mode``:

        * ``"auto"`` — conflict-free reordering when the stride family and
          length allow it, otherwise ordered access (never raises for a
          valid vector);
        * ``"ordered"`` — canonical order;
        * ``"subsequence"`` — the Section 3.1 order (raises
          :class:`~repro.errors.OrderingError` outside its window);
        * ``"conflict_free"`` — the Section 3.2/4.2 order (same).

        Successful plans are memoized in the process-wide
        :class:`PlanCache` (disable with ``REPRO_PLAN_CACHE=0``); the
        key is exact — mapping identity, ``t``, mode and the full
        vector — so a cached plan is indistinguishable from a fresh
        one.  Forced modes that raise are never cached.
        """
        key = self._plan_cache_key(vector, mode)
        if key is not None:
            cached = _PLAN_CACHE.lookup(key)
            if cached is not None:
                return cached
        plan = self._plan_uncached(vector, mode)
        if key is not None:
            _PLAN_CACHE.store(key, plan)
        return plan

    def _plan_cache_key(
        self, vector: VectorAccess, mode: PlanMode
    ) -> tuple | None:
        if not plan_cache_enabled():
            return None
        token = self.mapping.cache_token()
        if token is None:
            return None
        return (type(self.mapping), token, self.t, mode, vector)

    def _plan_uncached(
        self, vector: VectorAccess, mode: PlanMode
    ) -> AccessPlan:
        if mode == "ordered":
            return self._finish(vector, canonical_order(vector))
        if mode == "subsequence":
            w, _ = self._reorder_parameters(vector)
            plan = build_subsequences(vector, w, self.t)
            return self._finish(vector, subsequence_order(plan))
        if mode == "conflict_free":
            return self._conflict_free(vector)
        if mode == "auto":
            try:
                return self._conflict_free(vector)
            except OrderingError:
                return self._finish(vector, canonical_order(vector))
        raise ConfigurationError(f"unknown plan mode {mode!r}")

    def _conflict_free(self, vector: VectorAccess) -> AccessPlan:
        w, key_of = self._reorder_parameters(vector)
        plan = build_subsequences(vector, w, self.t)
        return self._finish(vector, conflict_free_order(plan, key_of))

    def _reorder_parameters(self, vector: VectorAccess):
        """Pick the decomposition exponent ``w`` and the alignment key.

        Returns ``(w, key_of)`` where ``key_of`` maps an element address
        to the value aligned across subsequences.
        """
        mapping = self.mapping
        x = vector.family
        if isinstance(mapping, SectionXorMapping):
            if x <= mapping.s:
                # Align on the within-section module field b[t-1..0]
                # (Section 4.2 stores exactly these bits).  Inside one
                # subsequence it equals the supermodule number XOR a
                # constant, but across subsequences with x < t the low
                # address bits change, and only the b-field alignment
                # keeps same-module requests exactly T slots apart.
                return mapping.s, mapping.module_within_section
            return mapping.y, mapping.section_of
        s = getattr(mapping, "s", None)
        if s is None:
            raise OrderingError(
                f"mapping {mapping.describe()} exposes no stride-window "
                "structure; only ordered access is available"
            )
        if x > s:
            raise OrderingError(
                f"stride family x={x} lies above the mapping exponent s={s}; "
                "the Lemma-2 decomposition does not apply"
            )
        return s, mapping.module_of

    def _finish(self, vector: VectorAccess, order: RequestOrder) -> AccessPlan:
        modules = tuple(
            self.mapping.module_of(self.mapping.reduce(address))
            for address in order.addresses()
        )
        return AccessPlan(
            vector=vector,
            order=order,
            modules=modules,
            service_ratio=self.service_ratio,
            conflict_free=is_conflict_free(modules, self.service_ratio),
        )

    def vector_t_matched(self, vector: VectorAccess) -> bool:
        """Section 2: is the vector's spatial distribution T-matched?

        A necessary condition for any conflict-free temporal distribution
        (used by the theorem-verification tests)."""
        return is_t_matched(
            spatial_distribution(self.mapping, vector), self.service_ratio
        )
