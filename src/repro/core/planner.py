"""The access planner: chooses and materialises a request order.

This is the library's central entry point.  Given a mapping, the memory's
service ratio ``T = 2**t`` and a :class:`~repro.core.vector.VectorAccess`,
the planner produces an :class:`AccessPlan` — the exact issue order of the
vector's elements together with its temporal distribution and a
conflict-freedom verdict.  The plan's request stream feeds both the
cycle-accurate simulator (:mod:`repro.memory`) and the register-level
hardware models (:mod:`repro.hardware`), which are tested to reproduce it
cycle for cycle.

Scheme selection (mode ``"auto"``) follows the paper:

* matched-style mappings (anything exposing the ``s`` exponent — Eq. (1),
  field interleaving, skewing): Lemma-2 subsequences aligned on the first
  subsequence's *module* order (Section 3.2);
* the section mapping of Eq. (2): low-window families use Lemma-2
  subsequences aligned on *supermodule* order, high-window families use
  Lemma-4 subsequences aligned on *section* order (Section 4.2);
* anything else (family outside the windows, length not a chunk multiple,
  mapping without structure): ordered access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.distributions import (
    is_conflict_free,
    spatial_distribution,
    is_t_matched,
)
from repro.core.orderings import (
    RequestOrder,
    canonical_order,
    conflict_free_order,
    subsequence_order,
)
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, OrderingError
from repro.mappings.base import AddressMapping
from repro.mappings.section import SectionXorMapping

PlanMode = Literal["auto", "ordered", "subsequence", "conflict_free"]


@dataclass(frozen=True)
class AccessPlan:
    """A fully materialised vector access.

    Attributes
    ----------
    vector:
        The access being planned.
    order:
        The issue order (a permutation of element indices).
    modules:
        Temporal distribution: module of each request in issue order.
    service_ratio:
        ``T = 2**t``.
    conflict_free:
        Verdict of the Section 2 definition on ``modules``.
    """

    vector: VectorAccess
    order: RequestOrder
    modules: tuple[int, ...]
    service_ratio: int
    conflict_free: bool

    @property
    def scheme(self) -> str:
        """Name of the ordering used (``canonical`` / ``subsequence`` /
        ``conflict_free``)."""
        return self.order.name

    @property
    def minimum_latency(self) -> int:
        """The conflict-free latency ``T + L + 1`` (Section 2)."""
        return self.service_ratio + self.vector.length + 1

    def request_stream(self) -> list[tuple[int, int]]:
        """``(element_index, address)`` pairs in issue order.

        The element index travels with the request so the vector register
        file can be written in element order even though requests are
        issued out of order (Section 5-D: the register must be random
        access).
        """
        return [
            (index, self.vector.address_of(index)) for index in self.order.indices
        ]


class AccessPlanner:
    """Builds :class:`AccessPlan` objects for one memory configuration.

    Parameters
    ----------
    mapping:
        The module-number mapping of the memory.
    t:
        ``T = 2**t`` — the module service time in processor cycles.  For a
        matched memory ``t == mapping.module_bits``; an unmatched memory
        has more module bits than ``t``.
    """

    def __init__(self, mapping: AddressMapping, t: int):
        if t < 0:
            raise ConfigurationError(f"t must be >= 0, got {t}")
        if mapping.module_bits < t:
            raise ConfigurationError(
                f"memory with {mapping.module_count} modules cannot hide a "
                f"service time of 2**{t} cycles (m={mapping.module_bits} < t={t})"
            )
        self.mapping = mapping
        self.t = t

    @property
    def service_ratio(self) -> int:
        """``T = 2**t``."""
        return 1 << self.t

    def plan(self, vector: VectorAccess, mode: PlanMode = "auto") -> AccessPlan:
        """Materialise an access plan for ``vector``.

        ``mode``:

        * ``"auto"`` — conflict-free reordering when the stride family and
          length allow it, otherwise ordered access (never raises for a
          valid vector);
        * ``"ordered"`` — canonical order;
        * ``"subsequence"`` — the Section 3.1 order (raises
          :class:`~repro.errors.OrderingError` outside its window);
        * ``"conflict_free"`` — the Section 3.2/4.2 order (same).
        """
        if mode == "ordered":
            return self._finish(vector, canonical_order(vector))
        if mode == "subsequence":
            w, _ = self._reorder_parameters(vector)
            plan = build_subsequences(vector, w, self.t)
            return self._finish(vector, subsequence_order(plan))
        if mode == "conflict_free":
            return self._conflict_free(vector)
        if mode == "auto":
            try:
                return self._conflict_free(vector)
            except OrderingError:
                return self._finish(vector, canonical_order(vector))
        raise ConfigurationError(f"unknown plan mode {mode!r}")

    def _conflict_free(self, vector: VectorAccess) -> AccessPlan:
        w, key_of = self._reorder_parameters(vector)
        plan = build_subsequences(vector, w, self.t)
        return self._finish(vector, conflict_free_order(plan, key_of))

    def _reorder_parameters(self, vector: VectorAccess):
        """Pick the decomposition exponent ``w`` and the alignment key.

        Returns ``(w, key_of)`` where ``key_of`` maps an element address
        to the value aligned across subsequences.
        """
        mapping = self.mapping
        x = vector.family
        if isinstance(mapping, SectionXorMapping):
            if x <= mapping.s:
                # Align on the within-section module field b[t-1..0]
                # (Section 4.2 stores exactly these bits).  Inside one
                # subsequence it equals the supermodule number XOR a
                # constant, but across subsequences with x < t the low
                # address bits change, and only the b-field alignment
                # keeps same-module requests exactly T slots apart.
                return mapping.s, mapping.module_within_section
            return mapping.y, mapping.section_of
        s = getattr(mapping, "s", None)
        if s is None:
            raise OrderingError(
                f"mapping {mapping.describe()} exposes no stride-window "
                "structure; only ordered access is available"
            )
        if x > s:
            raise OrderingError(
                f"stride family x={x} lies above the mapping exponent s={s}; "
                "the Lemma-2 decomposition does not apply"
            )
        return s, mapping.module_of

    def _finish(self, vector: VectorAccess, order: RequestOrder) -> AccessPlan:
        modules = tuple(
            self.mapping.module_of(self.mapping.reduce(address))
            for address in order.addresses()
        )
        return AccessPlan(
            vector=vector,
            order=order,
            modules=modules,
            service_ratio=self.service_ratio,
            conflict_free=is_conflict_free(modules, self.service_ratio),
        )

    def vector_t_matched(self, vector: VectorAccess) -> bool:
        """Section 2: is the vector's spatial distribution T-matched?

        A necessary condition for any conflict-free temporal distribution
        (used by the theorem-verification tests)."""
        return is_t_matched(
            spatial_distribution(self.mapping, vector), self.service_ratio
        )
