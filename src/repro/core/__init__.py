"""Core algorithms: the paper's primary contribution.

Stride-family algebra, distribution theory (Section 2), the Lemma-2/4
subsequence decompositions, the three request orderings, the Theorem-1/3
conflict-free windows and the access planner that ties them together.
"""

from repro.core.distributions import (
    PeriodAnalysis,
    canonical_temporal_distribution,
    conflict_count,
    ctp_period,
    first_conflict,
    is_conflict_free,
    is_t_matched,
    spatial_distribution,
    temporal_distribution,
    vector_is_t_matched,
)
from repro.core.gather import IndexedAccess, IndexedPlan, plan_indexed
from repro.core.families import (
    StrideFamily,
    decompose_stride,
    families_up_to,
    family_fraction,
    family_of,
    odd_part,
    strides_of_families,
    window_fraction,
)
from repro.core.orderings import (
    RequestOrder,
    canonical_order,
    conflict_free_order,
    subsequence_order,
)
from repro.core.planner import AccessPlan, AccessPlanner
from repro.core.scheduler import (
    OraclePlanner,
    feasible_with_cooldown,
    schedule_with_cooldown,
)
from repro.core.shortvec import CompositePlan, plan_short_vector
from repro.core.subsequences import SubsequencePlan, build_subsequences
from repro.core.vector import VectorAccess
from repro.core.windows import (
    MatchedDesign,
    UnmatchedDesign,
    Window,
    fused_unmatched_window,
    matched_ordered_window,
    matched_window,
    recommended_s,
    recommended_y,
    unmatched_ordered_window,
    unmatched_windows,
)

__all__ = [
    "AccessPlan",
    "AccessPlanner",
    "CompositePlan",
    "IndexedAccess",
    "IndexedPlan",
    "MatchedDesign",
    "OraclePlanner",
    "PeriodAnalysis",
    "RequestOrder",
    "StrideFamily",
    "SubsequencePlan",
    "UnmatchedDesign",
    "VectorAccess",
    "Window",
    "build_subsequences",
    "canonical_order",
    "canonical_temporal_distribution",
    "conflict_count",
    "conflict_free_order",
    "ctp_period",
    "decompose_stride",
    "families_up_to",
    "family_fraction",
    "family_of",
    "feasible_with_cooldown",
    "first_conflict",
    "fused_unmatched_window",
    "is_conflict_free",
    "is_t_matched",
    "matched_ordered_window",
    "matched_window",
    "odd_part",
    "plan_indexed",
    "plan_short_vector",
    "recommended_s",
    "recommended_y",
    "schedule_with_cooldown",
    "spatial_distribution",
    "strides_of_families",
    "subsequence_order",
    "temporal_distribution",
    "unmatched_ordered_window",
    "unmatched_windows",
    "vector_is_t_matched",
    "window_fraction",
]
