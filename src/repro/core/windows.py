"""Conflict-free stride windows — Theorems 1 and 3 and the parameter choices.

Matched memory (Theorem 1): with the Eq. (1) mapping, vectors of length
``L = 2**lambda`` are T-matched — and conflict-free under the Section 3.2
reordering — for the families ``s - N <= x <= s`` with
``N = min(lambda - t, s)``.  Section 3.3 recommends ``s = lambda - t``,
giving the window ``0 <= x <= lambda - t``.

Unmatched memory with ``M = T**2`` (Theorem 3): the Eq. (2) mapping adds a
second window ``y - R <= x <= y`` with ``R = min(lambda - t, y)``; choosing
``s = lambda - t`` and ``y = 2(lambda - t) + 1`` fuses the two into the
single window ``0 <= x <= 2(lambda - t) + 1``.

For comparison, ordered access provides a single family ``x = s`` on the
matched mapping and the ``m - t + 1`` families ``s <= x <= s + m - t`` on
an unmatched Eq. (1) mapping (Harper 1991).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping


@dataclass(frozen=True)
class Window:
    """An inclusive range ``[low, high]`` of conflict-free stride families."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                f"window [{self.low}, {self.high}] is empty or negative"
            )

    def contains(self, family: int) -> bool:
        """True when stride family ``family`` lies in the window."""
        return self.low <= family <= self.high

    @property
    def size(self) -> int:
        """Number of families in the window."""
        return self.high - self.low + 1

    def families(self) -> list[int]:
        """All family exponents in the window, ascending."""
        return list(range(self.low, self.high + 1))

    def __str__(self) -> str:
        return f"[{self.low}..{self.high}]"


def matched_window(lambda_exponent: int, t: int, s: int) -> Window:
    """Theorem 1: families ``s - N .. s`` with ``N = min(lambda - t, s)``."""
    _check_matched_params(lambda_exponent, t, s)
    n = min(lambda_exponent - t, s)
    return Window(s - n, s)


def matched_ordered_window(s: int) -> Window:
    """Ordered access on Eq. (1): the single family ``x = s``."""
    return Window(s, s)


def unmatched_ordered_window(s: int, m: int, t: int) -> Window:
    """Ordered access, unmatched Eq. (1) with ``m`` module bits:
    families ``s .. s + m - t`` (Harper 1991)."""
    if m < t:
        raise ConfigurationError(f"unmatched memory needs m >= t (m={m}, t={t})")
    return Window(s, s + m - t)


def unmatched_windows(
    lambda_exponent: int, t: int, s: int, y: int
) -> tuple[Window, Window]:
    """Theorem 3: the two windows ``[s-N, s]`` and ``[y-R, y]``.

    ``N = min(lambda - t, s)``, ``R = min(lambda - t, y)``.  The paper
    additionally assumes ``y - R >= s + 1`` so the windows partition the
    family axis cleanly.
    """
    _check_matched_params(lambda_exponent, t, s)
    if y < s + t:
        raise ConfigurationError(f"Eq. (2) requires y >= s + t (y={y})")
    n = min(lambda_exponent - t, s)
    r = min(lambda_exponent - t, y)
    low = Window(s - n, s)
    high = Window(y - r, y)
    if high.low < s + 1:
        raise ConfigurationError(
            f"expected y - R >= s + 1 for a clean partition "
            f"(y={y}, R={r}, s={s}); choose a larger y"
        )
    return low, high


def fused_unmatched_window(lambda_exponent: int, t: int, s: int, y: int) -> Window:
    """The single window when ``y - R = s + 1`` (Section 4.3).

    Raises if the two Theorem-3 windows do not actually abut.
    """
    low, high = unmatched_windows(lambda_exponent, t, s, y)
    if high.low != low.high + 1:
        raise ConfigurationError(
            f"windows {low} and {high} do not abut; with s={s}, y={y} there "
            f"is a gap of families {low.high + 1}..{high.low - 1}"
        )
    return Window(low.low, high.high)


def recommended_s(lambda_exponent: int, t: int) -> int:
    """Section 3.3: ``s = lambda - t`` maximises the matched window and
    includes the odd strides (family 0)."""
    if lambda_exponent < t:
        raise ConfigurationError(
            f"lambda must be >= t so the register holds at least T elements "
            f"(lambda={lambda_exponent}, t={t})"
        )
    return lambda_exponent - t


def recommended_y(lambda_exponent: int, t: int) -> int:
    """Section 4.3: ``y = 2(lambda - t) + 1`` fuses the two windows."""
    return 2 * recommended_s(lambda_exponent, t) + 1


def _check_matched_params(lambda_exponent: int, t: int, s: int) -> None:
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    if lambda_exponent < t:
        raise ConfigurationError(
            f"vectors shorter than T cannot be T-matched "
            f"(lambda={lambda_exponent}, t={t})"
        )
    if s < t:
        raise ConfigurationError(f"Eq. (1) requires s >= t (s={s}, t={t})")


@dataclass(frozen=True)
class MatchedDesign:
    """A complete matched-memory design point (Section 3.3).

    Bundles the Eq. (1) mapping with its conflict-free window for vectors
    of length ``2**lambda``.  ``s`` defaults to the recommended
    ``lambda - t``.
    """

    lambda_exponent: int
    t: int
    s: int
    address_bits: int = 32

    @classmethod
    def recommended(
        cls, lambda_exponent: int, t: int, address_bits: int = 32
    ) -> "MatchedDesign":
        s = max(recommended_s(lambda_exponent, t), t)
        return cls(lambda_exponent, t, s, address_bits)

    def mapping(self) -> MatchedXorMapping:
        """The Eq. (1) mapping of this design."""
        return MatchedXorMapping(self.t, self.s, self.address_bits)

    def window(self) -> Window:
        """Theorem-1 conflict-free window for out-of-order access."""
        return matched_window(self.lambda_exponent, self.t, self.s)

    def ordered_window(self) -> Window:
        """Single family served conflict-free by ordered access."""
        return matched_ordered_window(self.s)

    @property
    def vector_length(self) -> int:
        return 1 << self.lambda_exponent

    @property
    def module_count(self) -> int:
        return 1 << self.t


@dataclass(frozen=True)
class UnmatchedDesign:
    """A complete unmatched-memory design point (Section 4.3, ``M = T**2``)."""

    lambda_exponent: int
    t: int
    s: int
    y: int
    address_bits: int = 32

    @classmethod
    def recommended(
        cls, lambda_exponent: int, t: int, address_bits: int = 32
    ) -> "UnmatchedDesign":
        s = max(recommended_s(lambda_exponent, t), t)
        y = max(recommended_y(lambda_exponent, t), s + t)
        return cls(lambda_exponent, t, s, y, address_bits)

    def mapping(self) -> SectionXorMapping:
        """The Eq. (2) mapping of this design."""
        return SectionXorMapping(self.t, self.s, self.y, self.address_bits)

    def windows(self) -> tuple[Window, Window]:
        """The two Theorem-3 windows (low/Lemma-2, high/Lemma-4)."""
        return unmatched_windows(self.lambda_exponent, self.t, self.s, self.y)

    def fused_window(self) -> Window:
        """The single fused window when the recommended ``y`` is used."""
        return fused_unmatched_window(self.lambda_exponent, self.t, self.s, self.y)

    @property
    def vector_length(self) -> int:
        return 1 << self.lambda_exponent

    @property
    def module_count(self) -> int:
        return 1 << (2 * self.t)
