"""Spatial and temporal distributions, T-matched and conflict-free tests.

Direct implementations of the Section 2 definitions:

* the SPATIAL DISTRIBUTION ``SD`` counts vector elements per module;
  a vector is *T-matched* when ``SD(i) <= L / T`` for all modules;
* the TEMPORAL DISTRIBUTION is the module sequence in request order;
  it is CONFLICT FREE when every ``T`` consecutively requested elements
  land in ``T`` distinct modules;
* the CANONICAL temporal distribution (CTP) is the in-order one, and its
  period ``Px`` gives the chunking used by the reorderings.

These predicates are the ground truth the theorems are tested against and
the cross-check the cycle-accurate simulator must agree with.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.vector import VectorAccess
from repro.errors import VectorSpecError
from repro.mappings.base import AddressMapping


def spatial_distribution(
    mapping: AddressMapping, vector: VectorAccess
) -> list[int]:
    """Element count per module (the M-tuple ``SD`` of Section 2)."""
    counts = Counter(
        mapping.module_of(mapping.reduce(address)) for address in vector.addresses()
    )
    return [counts.get(module, 0) for module in range(mapping.module_count)]

def is_t_matched(distribution: Sequence[int], service_ratio: int) -> bool:
    """T-matched test: no module holds more than ``L / T`` elements.

    ``service_ratio`` is ``T = 2**t``.  The definition implies at least
    ``T`` modules are non-empty when the test passes (the counts must sum
    to ``L``).
    """
    if service_ratio < 1:
        raise VectorSpecError(f"T must be >= 1, got {service_ratio}")
    total = sum(distribution)
    return all(count * service_ratio <= total for count in distribution)


def vector_is_t_matched(
    mapping: AddressMapping, vector: VectorAccess, service_ratio: int
) -> bool:
    """Convenience wrapper: spatial distribution of the vector, tested."""
    return is_t_matched(spatial_distribution(mapping, vector), service_ratio)


def canonical_temporal_distribution(
    mapping: AddressMapping, vector: VectorAccess
) -> list[int]:
    """Module sequence when elements are requested in element order."""
    return mapping.module_sequence(vector.base, vector.stride, vector.length)


def temporal_distribution(
    mapping: AddressMapping, vector: VectorAccess, order: Sequence[int]
) -> list[int]:
    """Module sequence for an arbitrary request ``order``.

    ``order`` is a permutation (or prefix) of element indices; entry ``k``
    names the element requested at position ``k``.
    """
    return [
        mapping.module_of(mapping.reduce(vector.address_of(index)))
        for index in order
    ]


def is_conflict_free(modules: Sequence[int], service_ratio: int) -> bool:
    """True when every window of ``T`` consecutive requests is distinct.

    This is the paper's definition of a conflict-free temporal
    distribution: a module receives a new request no sooner than ``T``
    cycles after the previous one, so it is never busy when addressed.
    """
    if service_ratio < 1:
        raise VectorSpecError(f"T must be >= 1, got {service_ratio}")
    last_seen: dict[int, int] = {}
    for position, module in enumerate(modules):
        previous = last_seen.get(module)
        if previous is not None and position - previous < service_ratio:
            return False
        last_seen[module] = position
    return True


def first_conflict(modules: Sequence[int], service_ratio: int) -> int | None:
    """Position of the first conflicting request, or None if conflict-free."""
    last_seen: dict[int, int] = {}
    for position, module in enumerate(modules):
        previous = last_seen.get(module)
        if previous is not None and position - previous < service_ratio:
            return position
        last_seen[module] = position
    return None


def conflict_count(modules: Sequence[int], service_ratio: int) -> int:
    """Number of requests that would find their module still busy.

    Counts, for an idealised one-request-per-cycle issue with no stalls,
    how many requests arrive within ``T`` positions of a previous request
    to the same module.  A diagnostic (the real stall behaviour with
    buffers comes from the cycle-accurate simulator).
    """
    last_seen: dict[int, int] = {}
    conflicts = 0
    for position, module in enumerate(modules):
        previous = last_seen.get(module)
        if previous is not None and position - previous < service_ratio:
            conflicts += 1
        last_seen[module] = position
    return conflicts


@dataclass(frozen=True)
class PeriodAnalysis:
    """The canonical temporal distribution of one period (``CTPx``)."""

    family: int
    period: int
    modules: tuple[int, ...]

    def is_t_matched(self, service_ratio: int) -> bool:
        """T-matched test applied to one period (Lemma 1 prerequisite)."""
        counts = Counter(self.modules)
        return all(
            count * service_ratio <= self.period for count in counts.values()
        )

    def modules_visited(self) -> int:
        """Number of distinct modules appearing in the period."""
        return len(set(self.modules))


def ctp_period(mapping: AddressMapping, vector: VectorAccess) -> PeriodAnalysis:
    """One period of the canonical temporal distribution of ``vector``.

    The period length comes from the mapping's analytic ``period()``;
    if the vector is shorter than one period the analysis covers the
    whole vector (flagged by ``period > len(modules)`` never happening —
    we truncate and the caller can compare lengths).
    """
    family = vector.family
    period = mapping.period(family)
    span = min(period, vector.length)
    modules = mapping.module_sequence(vector.base, vector.stride, span)
    return PeriodAnalysis(family=family, period=period, modules=tuple(modules))
