"""Indexed (gather/scatter) accesses and their best-effort scheduling.

The paper's introduction contrasts constant-stride vectors with "more
unstructured patterns", which conventional interleaving serves poorly
and for which the Section 3 reordering does not apply (there is no
sigma*2^x structure to exploit).  This module extends the library to
that case:

* :class:`IndexedAccess` — a gather/scatter: ``address[i] = base +
  indices[i]`` (arbitrary index vector, duplicates allowed);
* :func:`plan_indexed` — an issue order for the gather.  Mode
  ``"ordered"`` issues in element order; mode ``"scheduled"`` applies
  the greedy cooldown scheduler of :mod:`repro.core.scheduler`, which is
  conflict-free whenever the gather's module multiset admits any
  conflict-free order at all.

Out-of-order gather needs exactly the hardware the paper already pays
for (random-access vector registers, element indices travelling with
requests), so the scheduled mode is a natural extension of the paper's
design — the ablation bench A6 quantifies the win on random and on
power-of-two-clustered index sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.distributions import is_conflict_free
from repro.core.scheduler import schedule_with_cooldown
from repro.errors import VectorSpecError
from repro.mappings.base import AddressMapping

IndexedMode = Literal["ordered", "scheduled"]


@dataclass(frozen=True)
class IndexedAccess:
    """A gather/scatter access: element ``i`` touches ``base + indices[i]``.

    Duplicate indices are allowed (a gather may read one address twice);
    they cap the achievable throughput exactly like a clustered stride.
    """

    base: int
    indices: tuple[int, ...]

    def __init__(self, base: int, indices: Sequence[int]):
        if not indices:
            raise VectorSpecError("an indexed access needs at least one index")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "indices", tuple(indices))

    @property
    def length(self) -> int:
        return len(self.indices)

    def address_of(self, element: int) -> int:
        if not 0 <= element < self.length:
            raise VectorSpecError(
                f"element {element} out of range for gather of length "
                f"{self.length}"
            )
        return self.base + self.indices[element]

    def addresses(self) -> list[int]:
        return [self.base + index for index in self.indices]


@dataclass(frozen=True)
class IndexedPlan:
    """A materialised gather/scatter issue order."""

    access: IndexedAccess
    order: tuple[int, ...]
    modules: tuple[int, ...]
    service_ratio: int
    conflict_free: bool
    scheme: str

    @property
    def minimum_latency(self) -> int:
        return self.service_ratio + self.access.length + 1

    def request_stream(self) -> list[tuple[int, int]]:
        """``(element_index, address)`` pairs in issue order."""
        return [
            (element, self.access.address_of(element))
            for element in self.order
        ]


def plan_indexed(
    mapping: AddressMapping,
    t: int,
    access: IndexedAccess,
    mode: IndexedMode = "scheduled",
) -> IndexedPlan:
    """Build an issue order for a gather/scatter.

    ``"scheduled"`` runs the greedy cooldown scheduler on the gather's
    module sequence and falls back to element order when no zero-idle
    schedule exists (the multiset is not T-matched); ``"ordered"``
    always issues in element order.
    """
    service_ratio = 1 << t
    modules = [
        mapping.module_of(mapping.reduce(address))
        for address in access.addresses()
    ]
    if mode == "ordered":
        order = tuple(range(access.length))
        scheme = "canonical"
    elif mode == "scheduled":
        # Best-effort: even when no zero-idle schedule exists (the module
        # multiset is not T-matched), spreading clustered requests still
        # cuts queueing; the conflict_free field reports the truth.
        schedule = schedule_with_cooldown(
            modules, service_ratio, best_effort=True
        )
        assert schedule is not None  # best-effort always returns an order
        order = tuple(schedule)
        scheme = "scheduled"
    else:
        raise VectorSpecError(f"unknown indexed plan mode {mode!r}")
    ordered_modules = tuple(modules[element] for element in order)
    return IndexedPlan(
        access=access,
        order=order,
        modules=ordered_modules,
        service_ratio=service_ratio,
        conflict_free=is_conflict_free(ordered_modules, service_ratio),
        scheme=scheme,
    )
