"""Short-vector handling — Section 5-C of the paper.

The reordered access needs the vector length to be a multiple of the chunk
``2**(w+t-x)``.  Vectors shorter than the register (or of awkward length)
are split at compile time: a prefix of length ``V = k * 2**(w+t-x)`` (the
largest such multiple) is accessed out of order and conflict-free, and the
remaining tail is accessed in order.  When no complete chunk fits the
whole vector falls back to ordered access — exactly the paper's "access
the vector in order" alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributions import is_conflict_free
from repro.core.planner import AccessPlan, AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import OrderingError


@dataclass(frozen=True)
class CompositePlan:
    """A vector accessed as an out-of-order prefix plus an ordered tail.

    Presents the same interface surface as :class:`AccessPlan` for the
    simulator: a request stream with global element indices, a temporal
    distribution and a conflict-freedom verdict.
    """

    vector: VectorAccess
    prefix: AccessPlan | None
    tail: AccessPlan | None
    service_ratio: int

    @property
    def scheme(self) -> str:
        if self.prefix is None:
            return "ordered"
        if self.tail is None:
            return self.prefix.scheme
        return f"composite({self.prefix.scheme}+{self.tail.scheme})"

    @property
    def prefix_length(self) -> int:
        """Elements in the out-of-order part (``V`` in the paper)."""
        return self.prefix.vector.length if self.prefix is not None else 0

    @property
    def modules(self) -> tuple[int, ...]:
        parts: list[int] = []
        if self.prefix is not None:
            parts.extend(self.prefix.modules)
        if self.tail is not None:
            parts.extend(self.tail.modules)
        return tuple(parts)

    @property
    def conflict_free(self) -> bool:
        """Verdict over the *whole* composite stream (prefix then tail).

        Note the paper only guarantees the prefix; the junction and tail
        may conflict, which the simulator quantifies in experiment E10.
        """
        return is_conflict_free(self.modules, self.service_ratio)

    @property
    def minimum_latency(self) -> int:
        return self.service_ratio + self.vector.length + 1

    def request_stream(self) -> list[tuple[int, int]]:
        """Global ``(element_index, address)`` pairs in issue order."""
        stream: list[tuple[int, int]] = []
        if self.prefix is not None:
            stream.extend(self.prefix.request_stream())
        if self.tail is not None:
            offset = self.prefix_length
            stream.extend(
                (offset + index, address)
                for index, address in self.tail.request_stream()
            )
        return stream


def plan_short_vector(planner: AccessPlanner, vector: VectorAccess) -> CompositePlan:
    """Section 5-C split: out-of-order prefix ``V = k * 2**(w+t-x)``,
    ordered tail.

    Mirrors what the paper's compiler would emit: the largest prefix whose
    length satisfies the Lemma-1 precondition is accessed with the
    conflict-free reordering; the remainder (fewer elements than one
    chunk) is accessed in order.
    """
    try:
        w, _ = planner._reorder_parameters(vector)
    except OrderingError:
        ordered = planner.plan(vector, mode="ordered")
        return CompositePlan(vector, None, ordered, planner.service_ratio)

    chunk = 1 << (w + planner.t - vector.family)
    prefix_length = (vector.length // chunk) * chunk
    if prefix_length == 0:
        ordered = planner.plan(vector, mode="ordered")
        return CompositePlan(vector, None, ordered, planner.service_ratio)

    prefix_vector = vector.slice(0, prefix_length)
    prefix = planner.plan(prefix_vector, mode="conflict_free")
    if prefix_length == vector.length:
        return CompositePlan(vector, prefix, None, planner.service_ratio)

    tail_vector = vector.slice(prefix_length, vector.length - prefix_length)
    tail = planner.plan(tail_vector, mode="ordered")
    return CompositePlan(vector, prefix, tail, planner.service_ratio)
