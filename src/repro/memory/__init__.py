"""Cycle-accurate multi-module memory subsystem (the Figure 2 machine)."""

from repro.memory.arbiter import FifoArbiter, ResultArbiter, RoundRobinArbiter
from repro.memory.config import MemoryConfig
from repro.memory.events import Event, EventKind, EventLog
from repro.memory.metrics import (
    PopulationSummary,
    access_efficiency,
    cycles_per_element,
    module_load_balance,
    streaming_efficiency,
    summarise_population,
)
from repro.memory.module import InFlightRequest, MemoryModule
from repro.memory.multiport import MultiPortMemorySystem, PortAssignment
from repro.memory.multistream import (
    MultiStreamMemorySystem,
    MultiStreamResult,
    StreamResult,
)
from repro.memory.storage import MemoryStore
from repro.memory.system import AccessResult, MemorySystem
from repro.memory.trace import describe_result, render_timeline

__all__ = [
    "AccessResult",
    "Event",
    "EventKind",
    "EventLog",
    "FifoArbiter",
    "InFlightRequest",
    "MemoryConfig",
    "MemoryModule",
    "MemoryStore",
    "MemorySystem",
    "MultiPortMemorySystem",
    "MultiStreamMemorySystem",
    "MultiStreamResult",
    "StreamResult",
    "PopulationSummary",
    "PortAssignment",
    "ResultArbiter",
    "RoundRobinArbiter",
    "access_efficiency",
    "cycles_per_element",
    "describe_result",
    "module_load_balance",
    "render_timeline",
    "streaming_efficiency",
    "summarise_population",
]
