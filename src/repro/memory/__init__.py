"""Cycle-accurate multi-module memory subsystem (the Figure 2 machine).

Module map
----------

* :mod:`repro.memory.kernel` — **the one memory kernel**:
  :class:`MemoryKernel` simulates M modules × ``k`` address/result
  ports × ``n`` named request streams in a single flat, event-skipping
  cycle loop.  Every other simulator here is a view over it.
* :mod:`repro.memory.system` — :class:`MemorySystem`, the classic
  single-stream view (``k = 1, n = 1``) returning
  :class:`AccessResult`.
* :mod:`repro.memory.multistream` — :class:`MultiStreamMemorySystem`,
  several streams sharing one address bus (``k = 1, n >= 1``).
* :mod:`repro.memory.multiport` — :class:`MultiPortMemorySystem`, the
  widened machine (``k >= 1`` buses).
* :mod:`repro.memory.config` — :class:`MemoryConfig`: mapping, ``T``,
  buffer depths ``q``/``q'`` and the port count.
* :mod:`repro.memory.module` — the single-module state machine
  (documentation/reference model; the kernel keeps the same state in
  flat arrays) and the :class:`InFlightRequest` timing record.
* :mod:`repro.memory.arbiter` — result-bus arbitration policies.
* :mod:`repro.memory.storage` — the word-addressable backing store.
* :mod:`repro.memory.metrics`, :mod:`repro.memory.trace`,
  :mod:`repro.memory.events` — derived metrics, Gantt rendering and
  event logs.
"""

from repro.memory.arbiter import FifoArbiter, ResultArbiter, RoundRobinArbiter
from repro.memory.config import MemoryConfig
from repro.memory.events import Event, EventKind, EventLog
from repro.memory.kernel import (
    KernelRun,
    KernelStream,
    MemoryKernel,
    StreamRun,
)
from repro.memory.metrics import (
    PopulationSummary,
    access_efficiency,
    cycles_per_element,
    module_load_balance,
    streaming_efficiency,
    summarise_population,
)
from repro.memory.module import InFlightRequest, MemoryModule
from repro.memory.multiport import MultiPortMemorySystem, PortAssignment
from repro.memory.multistream import (
    MultiStreamMemorySystem,
    MultiStreamResult,
    StreamResult,
)
from repro.memory.storage import MemoryStore
from repro.memory.system import AccessResult, MemorySystem
from repro.memory.trace import describe_result, render_timeline

__all__ = [
    "AccessResult",
    "Event",
    "EventKind",
    "EventLog",
    "FifoArbiter",
    "InFlightRequest",
    "KernelRun",
    "KernelStream",
    "MemoryConfig",
    "MemoryKernel",
    "MemoryModule",
    "MemoryStore",
    "MemorySystem",
    "MultiPortMemorySystem",
    "MultiStreamMemorySystem",
    "MultiStreamResult",
    "StreamResult",
    "StreamRun",
    "PopulationSummary",
    "PortAssignment",
    "ResultArbiter",
    "RoundRobinArbiter",
    "access_efficiency",
    "cycles_per_element",
    "describe_result",
    "module_load_balance",
    "render_timeline",
    "streaming_efficiency",
    "summarise_population",
]
