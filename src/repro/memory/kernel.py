"""The one memory kernel: M modules × k ports × n streams, cycle-level.

Every cycle-accurate memory simulation in the library runs through
:class:`MemoryKernel`.  It generalises the Figure 2 machine along the
two axes the paper's Section 6 defers to future work:

* ``ports`` — ``k >= 1`` address/result bus pairs.  Each port carries at
  most one request and one result per cycle, so ``k`` requests can enter
  and ``k`` results can return per cycle (module bandwidth permitting);
* ``streams`` — ``n >= 1`` named request sequences, each bound to one
  port.  Streams sharing a port take turns under an issue policy
  (``round_robin`` or ``priority``); streams on different ports issue
  concurrently.

The historical simulators are thin views over this kernel:
:class:`~repro.memory.system.MemorySystem` is ``k = 1, n = 1``,
:class:`~repro.memory.multistream.MultiStreamMemorySystem` is ``k = 1,
n >= 1`` and :class:`~repro.memory.multiport.MultiPortMemorySystem` is
``k >= 1, n >= 1`` — all with bit-identical metrics to the per-cycle
loops they replaced (the equivalence suite in ``tests/memory/
test_kernel.py`` drives both against a reference implementation).

Timing contract (unchanged from the package docstring, per port):

* one request per port per cycle; a stream whose head request targets a
  module with a full input queue stalls (and, under ``round_robin``,
  yields the port to the next stream);
* address bus delay 1 cycle: a request issued at ``c`` arrives at
  ``c + 1``;
* a module starts the head request when idle; service takes ``T``
  cycles and needs the output queue to drain (``q'`` back-pressure);
* one result per port per cycle, arbitrated oldest-first, delivered the
  cycle it is granted; a result finishing service at the end of cycle
  ``f`` is first deliverable at ``f + 1``.

Hence ``ports = 1, streams = 1`` degenerates exactly to the paper's
conflict-free minimum latency ``T + L + 1``.

Performance: the kernel keeps per-module state in flat preallocated
lists (no per-cycle attribute churn through module objects) and
fast-forwards over idle cycles — when a cycle passes with no issue, no
grant, no service start and no completion, the loop jumps straight to
the next scheduled event (service completion, head-of-queue arrival, or
result-ready edge), accounting the skipped stall and busy cycles
arithmetically.  ``benchmarks/bench_simulator_perf.py`` tracks the
resulting throughput.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.memory.arbiter import ResultArbiter
from repro.memory.config import MemoryConfig
from repro.memory.module import InFlightRequest
from repro.obs.tracer import resolve_tracer

#: Issue policies for streams sharing one port.
ISSUE_POLICIES = ("round_robin", "priority")


@dataclass(frozen=True)
class KernelStream:
    """One named request stream bound to a port.

    ``requests`` are ``(element_index, address)`` pairs in issue order
    (addresses are reduced through the mapping by the kernel).
    ``stores`` lists stream positions that are store operations.
    ``port`` binds the stream to an address/result bus pair; ``None``
    means automatic round-robin binding (stream ``i`` -> port
    ``i % ports``).  ``start_cycle`` staggers injection: the stream is
    invisible to its port until that kernel-relative cycle (default 1,
    i.e. eligible from the first cycle) — cycles spent waiting for the
    start are deliberate delay, not issue stalls.
    """

    name: str
    requests: tuple[tuple[int, int], ...]
    stores: frozenset[int] = frozenset()
    port: int | None = None
    start_cycle: int = 1

    @classmethod
    def of(
        cls,
        name: str,
        requests: Sequence[tuple[int, int]],
        stores: Sequence[int] = (),
        port: int | None = None,
        start_cycle: int = 1,
    ) -> "KernelStream":
        return cls(name, tuple(requests), frozenset(stores), port, start_cycle)


@dataclass(frozen=True)
class StreamRun:
    """Per-stream outcome of one kernel run.

    Cycle fields are kernel-relative (the run starts at cycle 1).
    ``module_request_counts`` attributes each module's load to this
    stream, so per-stream busy accounting (``service_ratio *
    count``) stays exact even when streams share modules.
    """

    name: str
    index: int
    port: int
    first_issue_cycle: int
    last_delivery_cycle: int
    issue_stall_cycles: int
    requests: tuple[InFlightRequest, ...]
    module_request_counts: tuple[int, ...]
    start_cycle: int = 1

    @property
    def element_count(self) -> int:
        return len(self.requests)

    @property
    def latency(self) -> int:
        """Cycles from this stream's first issue to its last delivery."""
        return self.last_delivery_cycle - self.first_issue_cycle + 1

    @property
    def wait_count(self) -> int:
        """Requests that queued behind a busy module."""
        return sum(1 for request in self.requests if request.waited)

    @property
    def conflict_free(self) -> bool:
        return self.wait_count == 0 and self.issue_stall_cycles == 0

    @property
    def result_held(self) -> bool:
        """Some result of *this stream* was delivered later than the
        first cycle it was deliverable (``finish + 1``) — held back by
        result-bus contention or ``q'`` back-pressure.  The per-stream
        counterpart of :attr:`KernelRun.bus_held_result`."""
        return any(
            request.delivery_cycle > request.finish_cycle + 1
            for request in self.requests
        )


@dataclass(frozen=True)
class KernelRun:
    """Aggregate outcome of one kernel run."""

    streams: tuple[StreamRun, ...]
    total_cycles: int
    ports: int
    bus_busy_cycles: int
    bus_held_result: bool
    module_busy_cycles: tuple[int, ...]
    port_issue_cycles: tuple[int, ...] = field(default_factory=tuple)

    @property
    def aggregate_elements(self) -> int:
        return sum(stream.element_count for stream in self.streams)

    @property
    def bus_utilisation(self) -> float:
        return self.bus_busy_cycles / (self.total_cycles * self.ports)


class MemoryKernel:
    """Cycle-level simulator of M modules fed by k ports and n streams.

    Parameters
    ----------
    config:
        Memory geometry (mapping, ``T``, buffer depths, default port
        count).
    ports:
        Address/result bus pairs; defaults to ``config.ports``.
    policy:
        How streams sharing one port take turns: ``"round_robin"``
        (rotate past the last issuer) or ``"priority"`` (lowest stream
        index first, head-of-line blocking).
    arbiter:
        Optional custom :class:`~repro.memory.arbiter.ResultArbiter`.
        ``None`` selects the built-in oldest-first (FIFO) grant, which
        also enables the event-skip fast path.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  Events are derived
        *after* the cycle loop from the per-request timing records the
        kernel materialises anyway, so the hot loop is identical with
        tracing on or off and a ``None``/null tracer costs nothing.
    """

    def __init__(
        self,
        config: MemoryConfig,
        *,
        ports: int | None = None,
        policy: str = "round_robin",
        arbiter: ResultArbiter | None = None,
        tracer=None,
    ):
        resolved_ports = config.ports if ports is None else ports
        if not isinstance(resolved_ports, int) or isinstance(
            resolved_ports, bool
        ):
            raise ConfigurationError(
                f"kernel field 'ports' must be an integer, got "
                f"{resolved_ports!r}"
            )
        if resolved_ports < 1:
            raise ConfigurationError(
                f"kernel field 'ports' must be >= 1, got {resolved_ports}"
            )
        if resolved_ports > config.module_count:
            raise ConfigurationError(
                f"kernel field 'ports' ({resolved_ports}) cannot exceed the "
                f"module count M={config.module_count}: each port needs at "
                "least one module to talk to"
            )
        if policy not in ISSUE_POLICIES:
            raise SimulationError(f"unknown issue policy {policy!r}")
        self.config = config
        self.ports = resolved_ports
        self.policy = policy
        self.arbiter = arbiter
        self.tracer = resolve_tracer(tracer)

    # -- public API -----------------------------------------------------

    def run(
        self, streams: Sequence[KernelStream | Sequence[tuple[int, int]]]
    ) -> KernelRun:
        """Simulate all streams to completion."""
        kernel_streams = self._normalise(streams)
        return self._simulate(kernel_streams)

    # -- stream validation ---------------------------------------------

    def _normalise(self, streams) -> list[KernelStream]:
        if not streams:
            raise SimulationError("need at least one non-empty stream")
        normalised: list[KernelStream] = []
        for index, stream in enumerate(streams):
            if isinstance(stream, KernelStream):
                normalised.append(stream)
            else:
                normalised.append(KernelStream.of(f"s{index}", stream))
        seen: set[str] = set()
        for stream in normalised:
            if not stream.requests:
                raise SimulationError("need at least one non-empty stream")
            if stream.name in seen:
                raise ConfigurationError(
                    f"kernel field 'streams' has colliding stream names: "
                    f"{stream.name!r} appears more than once (streams must "
                    "be uniquely named)"
                )
            seen.add(stream.name)
            if stream.port is not None and not (
                0 <= stream.port < self.ports
            ):
                raise ConfigurationError(
                    f"stream {stream.name!r} field 'port' must be in "
                    f"[0, {self.ports}), got {stream.port}"
                )
            if not isinstance(stream.start_cycle, int) or isinstance(
                stream.start_cycle, bool
            ):
                raise ConfigurationError(
                    f"stream {stream.name!r} field 'start_cycle' must be "
                    f"an integer, got {stream.start_cycle!r}"
                )
            if stream.start_cycle < 1:
                raise ConfigurationError(
                    f"stream {stream.name!r} field 'start_cycle' must be "
                    f">= 1, got {stream.start_cycle}"
                )
        return normalised

    # -- the cycle loop -------------------------------------------------

    def _simulate(self, kernel_streams: list[KernelStream]) -> KernelRun:
        config = self.config
        mapping = config.mapping
        service_time = config.service_ratio
        module_count = config.module_count
        input_capacity = config.input_capacity
        output_capacity = config.output_capacity
        ports = self.ports
        round_robin = self.policy == "round_robin"
        stream_count = len(kernel_streams)

        # Flat request state, indexed by request id (rid).
        elem: list[int] = []
        addr: list[int] = []
        mod: list[int] = []
        store_flag: list[bool] = []
        stream_of: list[int] = []
        stream_rids: list[list[int]] = []
        for s_index, stream in enumerate(kernel_streams):
            rids: list[int] = []
            for position, (element, address) in enumerate(stream.requests):
                reduced = mapping.reduce(address)
                rids.append(len(elem))
                elem.append(element)
                addr.append(reduced)
                mod.append(mapping.module_of(reduced))
                store_flag.append(position in stream.stores)
                stream_of.append(s_index)
            stream_rids.append(rids)
        total = len(elem)
        issue = [0] * total
        arrival = [0] * total
        start = [0] * total
        delivery = [0] * total

        # Flat per-module state.
        in_q: list[deque[int]] = [deque() for _ in range(module_count)]
        svc_rid = [-1] * module_count
        svc_finish = [0] * module_count
        blk_rid = [-1] * module_count
        out_q: list[deque[tuple[int, int]]] = [
            deque() for _ in range(module_count)
        ]
        active: set[int] = set()

        # Per-stream and per-port bookkeeping.
        port_of = [
            stream.port if stream.port is not None else index % ports
            for index, stream in enumerate(kernel_streams)
        ]
        port_members: list[list[int]] = [[] for _ in range(ports)]
        for index, port in enumerate(port_of):
            port_members[port].append(index)
        stream_len = [len(rids) for rids in stream_rids]
        starts = [stream.start_cycle for stream in kernel_streams]
        cursors = [0] * stream_count
        stalls = [0] * stream_count
        first_issue = [0] * stream_count
        last_delivery = [0] * stream_count
        rotation = [0] * ports
        port_issues = [0] * ports

        delivered = 0
        bus_busy = 0
        bus_held = False
        cycle = 0
        guard = (total + 2) * (service_time + 2) + 64 + max(starts) - 1
        # Custom arbiters may carry state across grants, so the
        # event-skip fast-forward (which elides whole no-op cycles) is
        # only safe with the built-in FIFO grant.
        shims = (
            [_ModuleShim(out_q, m) for m in range(module_count)]
            if self.arbiter is not None
            else None
        )

        while delivered < total:
            cycle += 1
            if cycle > guard:
                raise SimulationError(
                    f"simulation exceeded {guard} cycles for {total} "
                    f"requests — livelock?"
                )
            progressed = False

            # 1. Address ports: one request per port per cycle.
            for port in range(ports):
                members = port_members[port]
                candidates = [
                    s
                    for s in members
                    if cursors[s] < stream_len[s] and starts[s] <= cycle
                ]
                if not candidates:
                    continue
                if round_robin and len(candidates) > 1:
                    rot = rotation[port]
                    candidates.sort(
                        key=lambda s: (s - rot) % stream_count
                    )
                for s in candidates:
                    rid = stream_rids[s][cursors[s]]
                    m = mod[rid]
                    if len(in_q[m]) < input_capacity:
                        issue[rid] = cycle
                        arrival[rid] = cycle + 1
                        in_q[m].append(rid)
                        active.add(m)
                        if first_issue[s] == 0:
                            first_issue[s] = cycle
                        cursors[s] += 1
                        rotation[port] = s + 1
                        bus_busy += 1
                        port_issues[port] += 1
                        progressed = True
                        break
                    stalls[s] += 1
                    if not round_robin:
                        break

            # 2. Result ports: up to ``ports`` deliveries per cycle,
            # oldest result first (ready cycle, then module index).
            ready_count = 0
            for m in active:
                queue = out_q[m]
                if queue and queue[0][0] <= cycle:
                    ready_count += 1
            grants = 0
            if shims is None:
                while grants < ports and delivered < total:
                    best_key: tuple[int, int] | None = None
                    best_m = -1
                    for m in active:
                        queue = out_q[m]
                        if queue:
                            ready = queue[0][0]
                            if ready <= cycle:
                                key = (ready, m)
                                if best_key is None or key < best_key:
                                    best_key = key
                                    best_m = m
                    if best_m < 0:
                        break
                    rid = out_q[best_m].popleft()[1]
                    delivery[rid] = cycle
                    s = stream_of[rid]
                    if cycle > last_delivery[s]:
                        last_delivery[s] = cycle
                    delivered += 1
                    grants += 1
                    progressed = True
            else:
                for _port in range(ports):
                    granted = self.arbiter.grant(shims, cycle)
                    if granted is None:
                        break
                    rid = out_q[granted].popleft()[1]
                    delivery[rid] = cycle
                    s = stream_of[rid]
                    if cycle > last_delivery[s]:
                        last_delivery[s] = cycle
                    delivered += 1
                    grants += 1
                    progressed = True
            if ready_count > grants:
                bus_held = True

            # 3. Module service: start new work, then retire finishing
            # work (start-before-finish per module preserves the legacy
            # phase order; modules are independent within a phase).
            for m in list(active):
                if svc_rid[m] < 0 and blk_rid[m] < 0:
                    queue = in_q[m]
                    if queue:
                        rid = queue[0]
                        if arrival[rid] <= cycle:
                            queue.popleft()
                            start[rid] = cycle
                            svc_rid[m] = rid
                            svc_finish[m] = cycle + service_time - 1
                            progressed = True
                if blk_rid[m] >= 0:
                    if len(out_q[m]) < output_capacity:
                        out_q[m].append((cycle + 1, blk_rid[m]))
                        blk_rid[m] = -1
                        progressed = True
                elif svc_rid[m] >= 0 and svc_finish[m] == cycle:
                    rid = svc_rid[m]
                    svc_rid[m] = -1
                    if len(out_q[m]) < output_capacity:
                        out_q[m].append((cycle + 1, rid))
                    else:
                        blk_rid[m] = rid
                    progressed = True
                if (
                    svc_rid[m] < 0
                    and blk_rid[m] < 0
                    and not in_q[m]
                    and not out_q[m]
                ):
                    active.discard(m)

            # 4. Event skip: a cycle in which nothing moved is followed
            # by identical cycles until the next scheduled event; jump
            # there, accounting the skipped stall cycles arithmetically.
            if not progressed and delivered < total and shims is None:
                next_event = guard + 1
                for m in active:
                    if svc_rid[m] >= 0:
                        if svc_finish[m] < next_event:
                            next_event = svc_finish[m]
                    elif blk_rid[m] < 0 and in_q[m]:
                        head_arrival = arrival[in_q[m][0]]
                        if cycle < head_arrival < next_event:
                            next_event = head_arrival
                    if out_q[m]:
                        ready = out_q[m][0][0]
                        if cycle < ready < next_event:
                            next_event = ready
                # A stream still waiting for its staggered start is the
                # next event when nothing else is scheduled sooner.
                for s in range(stream_count):
                    if (
                        cursors[s] < stream_len[s]
                        and cycle < starts[s] < next_event
                    ):
                        next_event = starts[s]
                jump = next_event - cycle - 1
                if jump > 0:
                    for port in range(ports):
                        blocked = [
                            s
                            for s in port_members[port]
                            if cursors[s] < stream_len[s]
                            and starts[s] <= cycle
                        ]
                        if not blocked:
                            continue
                        if round_robin:
                            for s in blocked:
                                stalls[s] += jump
                        else:
                            stalls[blocked[0]] += jump
                    cycle += jump

        # Materialise the timing records and per-stream summaries.
        stream_runs: list[StreamRun] = []
        for s_index, stream in enumerate(kernel_streams):
            requests: list[InFlightRequest] = []
            counts = [0] * module_count
            for rid in stream_rids[s_index]:
                m = mod[rid]
                counts[m] += 1
                requests.append(
                    InFlightRequest(
                        element_index=elem[rid],
                        address=addr[rid],
                        module=m,
                        is_store=store_flag[rid],
                        issue_cycle=issue[rid],
                        arrival_cycle=arrival[rid],
                        start_cycle=start[rid],
                        finish_cycle=start[rid] + service_time - 1,
                        delivery_cycle=delivery[rid],
                    )
                )
            stream_runs.append(
                StreamRun(
                    name=stream.name,
                    index=s_index,
                    port=port_of[s_index],
                    first_issue_cycle=first_issue[s_index],
                    last_delivery_cycle=last_delivery[s_index],
                    issue_stall_cycles=stalls[s_index],
                    requests=tuple(requests),
                    module_request_counts=tuple(counts),
                    start_cycle=stream.start_cycle,
                )
            )
        # Every request is serviced for exactly ``T`` cycles, so busy
        # accounting is arithmetic, not per-cycle ticking.
        busy = tuple(
            service_time
            * sum(run.module_request_counts[m] for run in stream_runs)
            for m in range(module_count)
        )
        run = KernelRun(
            streams=tuple(stream_runs),
            total_cycles=cycle,
            ports=ports,
            bus_busy_cycles=bus_busy,
            bus_held_result=bus_held,
            module_busy_cycles=busy,
            port_issue_cycles=tuple(port_issues),
        )
        if self.tracer.enabled:
            self._emit_trace(run)
        return run

    # -- trace emission -------------------------------------------------

    def _emit_trace(self, run: KernelRun) -> None:
        """Derive module/port/stream events from the finished run.

        Runs only when tracing is enabled; everything is read off the
        materialised :class:`InFlightRequest` records, so it adds zero
        work to the cycle loop.  Tracks follow the ``group/lane``
        convention of :mod:`repro.obs.tracer`: ``streams/<name>`` spans
        the stream's active window, ``memory/module <m>`` spans each
        request's service occupancy, ``ports/port <p>`` carries issue
        and delivery instants, and ``memory/in flight`` samples the
        number of outstanding requests.
        """
        tracer = self.tracer
        deltas: list[tuple[int, int]] = []
        for stream in run.streams:
            tracer.span(
                f"streams/{stream.name}",
                f"{stream.name} ({stream.element_count} elem)",
                stream.first_issue_cycle,
                stream.last_delivery_cycle,
                port=stream.port,
                start_cycle=stream.start_cycle,
                issue_stalls=stream.issue_stall_cycles,
                conflict_free=stream.conflict_free,
            )
            for request in stream.requests:
                tracer.span(
                    f"memory/module {request.module}",
                    f"{stream.name}[{request.element_index}]",
                    request.start_cycle,
                    request.finish_cycle,
                    address=request.address,
                    store=request.is_store,
                    waited=request.waited,
                )
                tracer.instant(
                    f"ports/port {stream.port}",
                    "issue",
                    request.issue_cycle,
                    stream=stream.name,
                    element=request.element_index,
                )
                tracer.instant(
                    f"ports/port {stream.port}",
                    "deliver",
                    request.delivery_cycle,
                    stream=stream.name,
                    element=request.element_index,
                )
                deltas.append((request.issue_cycle, 1))
                deltas.append((request.delivery_cycle, -1))
        deltas.sort()
        level = 0
        previous: int | None = None
        for at_cycle, delta in deltas:
            if previous is not None and at_cycle != previous:
                tracer.counter(
                    "memory/in flight", "in_flight", previous, level
                )
            level += delta
            previous = at_cycle
        if previous is not None:
            tracer.counter("memory/in flight", "in_flight", previous, level)


class _ModuleShim:
    """Adapter presenting kernel flat state through the
    :class:`~repro.memory.module.MemoryModule` result-side interface,
    so custom :class:`~repro.memory.arbiter.ResultArbiter` policies keep
    working against the kernel."""

    __slots__ = ("_out_q", "index")

    def __init__(self, out_q: list[deque[tuple[int, int]]], index: int):
        self._out_q = out_q
        self.index = index

    def peek_deliverable(self, cycle: int) -> tuple[int, int] | None:
        queue = self._out_q[self.index]
        if not queue:
            return None
        ready, rid = queue[0]
        if ready > cycle:
            return None
        return ready, rid
