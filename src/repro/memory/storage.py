"""Backing store: actual data behind the (module, displacement) mapping.

The latency results of the paper depend only on module numbers, but the
decoupled-processor examples move real data, and storing values through
the two-dimensional mapping doubles as a continuous check that every
mapping is a genuine bijection (two addresses colliding on the same cell
would corrupt a value and fail the end-to-end tests).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.mappings.base import AddressMapping


class MemoryStore:
    """Word-addressable data store organised as the mapping dictates."""

    def __init__(self, mapping: AddressMapping):
        self.mapping = mapping
        self._cells: list[dict[int, float]] = [
            {} for _ in range(mapping.module_count)
        ]

    def write(self, address: int, value: float) -> None:
        """Store ``value`` at ``address`` (reduced into the address space)."""
        module, displacement = self.mapping.map(self.mapping.reduce(address))
        self._cells[module][displacement] = value

    def read(self, address: int) -> float:
        """Load the value at ``address``.

        Raises
        ------
        SimulationError
            If the cell was never written — surfacing use-before-define
            bugs in example programs instead of silently returning zeros.
        """
        module, displacement = self.mapping.map(self.mapping.reduce(address))
        try:
            return self._cells[module][displacement]
        except KeyError:
            raise SimulationError(
                f"read of uninitialised address {address} "
                f"(module {module}, displacement {displacement})"
            ) from None

    def write_vector(self, base: int, stride: int, values) -> None:
        """Bulk store: ``values[i]`` at ``base + i * stride``."""
        for i, value in enumerate(values):
            self.write(base + i * stride, value)

    def read_vector(self, base: int, stride: int, length: int) -> list[float]:
        """Bulk load of a constant-stride vector."""
        return [self.read(base + i * stride) for i in range(length)]

    def occupancy(self) -> list[int]:
        """Number of written cells per module (storage balance check)."""
        return [len(cells) for cells in self._cells]
