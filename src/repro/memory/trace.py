"""Human-readable timelines of simulated accesses.

Renders an ASCII Gantt chart of a simulation — one row per module, one
column per cycle — used by the examples and handy when debugging a
non-conflict-free ordering.  Glyphs: digits mark the service cycles of a
request (its element index modulo 10), ``.`` is idle.
"""

from __future__ import annotations

from repro.memory.system import AccessResult


def render_timeline(
    result: AccessResult,
    module_count: int,
    max_cycles: int = 120,
) -> str:
    """ASCII Gantt chart of module activity.

    Parameters
    ----------
    result:
        A finished simulation.
    module_count:
        Number of rows (modules) to draw.
    max_cycles:
        Clip the chart after this many cycles to keep output readable.
    """
    cycles = min(result.latency, max_cycles)
    grid = [["."] * cycles for _ in range(module_count)]
    for request in result.requests:
        if request.start_cycle is None or request.finish_cycle is None:
            continue
        glyph = str(request.element_index % 10)
        for cycle in range(request.start_cycle, request.finish_cycle + 1):
            if 1 <= cycle <= cycles:
                grid[request.module][cycle - 1] = glyph
    header = "cycle   " + "".join(
        str((c + 1) // 10 % 10) if (c + 1) % 10 == 0 else " " for c in range(cycles)
    )
    lines = [header]
    for module_index, row in enumerate(grid):
        lines.append(f"mod {module_index:3d} " + "".join(row))
    if result.latency > max_cycles:
        lines.append(f"... clipped at cycle {max_cycles} of {result.latency}")
    return "\n".join(lines)


def describe_result(result: AccessResult, service_ratio: int) -> str:
    """One-paragraph summary of a simulation outcome."""
    minimum = service_ratio + result.element_count + 1
    status = "conflict-free" if result.conflict_free else (
        f"{result.wait_count} queued requests, "
        f"{result.issue_stall_cycles} issue stalls"
    )
    return (
        f"{result.element_count} elements in {result.latency} cycles "
        f"(minimum {minimum}, excess {result.latency - minimum}); {status}"
    )
