"""Derived metrics over simulation results.

Turns :class:`~repro.memory.system.AccessResult` records into the
quantities the paper's evaluation section reports: efficiency (elements
per cycle relative to the one-per-cycle ideal), steady-state cycles per
element, and aggregates over stride populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.memory.system import AccessResult


def access_efficiency(result: AccessResult, service_ratio: int) -> float:
    """``(T + L + 1) / latency`` — 1.0 exactly when conflict-free.

    Ratio of the minimum possible latency to the observed latency for a
    single vector access (includes the unavoidable start-up).
    """
    return (service_ratio + result.element_count + 1) / result.latency


def streaming_efficiency(result: AccessResult, service_ratio: int) -> float:
    """``L / (latency - T - 1)`` — the issue-throughput view.

    Removes the fixed start-up so that long-vector results converge to
    the paper's "one element per cycle" steady-state measure (Section
    5-B compares average cycles per element).
    """
    issue_span = result.latency - service_ratio - 1
    return result.element_count / issue_span if issue_span > 0 else 0.0


def cycles_per_element(result: AccessResult, service_ratio: int) -> float:
    """Average issue-slot cost per element, start-up excluded."""
    issue_span = result.latency - service_ratio - 1
    return issue_span / result.element_count


@dataclass(frozen=True)
class PopulationSummary:
    """Aggregate efficiency over a population of vector accesses.

    ``weights`` follow the paper's Section 5-B convention: when averaging
    over "a uniform distribution of strides" each access counts equally
    and the efficiency is the harmonic-style ratio of total elements to
    total issue cycles.
    """

    accesses: int
    total_elements: int
    total_issue_cycles: int
    conflict_free_accesses: int

    @property
    def efficiency(self) -> float:
        """Elements delivered per issue cycle (1.0 = ideal)."""
        if self.total_issue_cycles == 0:
            return 0.0
        return self.total_elements / self.total_issue_cycles

    @property
    def conflict_free_fraction(self) -> float:
        return self.conflict_free_accesses / self.accesses if self.accesses else 0.0


def summarise_population(
    results: Iterable[AccessResult], service_ratio: int
) -> PopulationSummary:
    """Aggregate a batch of accesses into a :class:`PopulationSummary`."""
    accesses = 0
    elements = 0
    issue_cycles = 0
    conflict_free = 0
    for result in results:
        accesses += 1
        elements += result.element_count
        issue_cycles += result.latency - service_ratio - 1
        if result.conflict_free:
            conflict_free += 1
    return PopulationSummary(accesses, elements, issue_cycles, conflict_free)


def module_load_balance(result: AccessResult) -> float:
    """Max/mean busy-cycle ratio across modules (1.0 = perfectly even).

    A diagnostic for spatial distributions: a T-matched vector on an
    M-module memory keeps the ratio at ``M * SD_max / L`` which the
    theorems bound by ``M / T``.
    """
    busy = [cycles for cycles in result.module_busy_cycles]
    mean = sum(busy) / len(busy)
    return max(busy) / mean if mean > 0 else 0.0
