"""Structured event logs derived from simulation results.

The simulator's per-request records hold five timestamps each; this
module flattens them into a queryable event stream (issue / arrive /
start / finish / deliver), which the examples use for narrative output
and which makes regression-debugging a non-conflict-free ordering
tractable ("what else was in module 3 at cycle 41?").
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.errors import SimulationError
from repro.memory.system import AccessResult


class EventKind(Enum):
    """Lifecycle stages of a memory request, in lifecycle order."""

    ISSUE = "issue"
    ARRIVE = "arrive"
    START = "start"
    FINISH = "finish"
    DELIVER = "deliver"

    @property
    def rank(self) -> int:
        """Position within the request lifecycle (for sorting)."""
        order = ["issue", "arrive", "start", "finish", "deliver"]
        return order.index(self.value)

    def __lt__(self, other: "EventKind") -> bool:
        if not isinstance(other, EventKind):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped lifecycle event of one request."""

    cycle: int
    module: int
    element_index: int
    kind: EventKind


class EventLog:
    """Sorted event stream over one simulation result."""

    def __init__(self, events: Iterable[Event]):
        self.events = sorted(events)

    @classmethod
    def from_result(cls, result: AccessResult) -> "EventLog":
        events: list[Event] = []
        for request in result.requests:
            stamps = [
                (request.issue_cycle, EventKind.ISSUE),
                (request.arrival_cycle, EventKind.ARRIVE),
                (request.start_cycle, EventKind.START),
                (request.finish_cycle, EventKind.FINISH),
                (request.delivery_cycle, EventKind.DELIVER),
            ]
            for cycle, kind in stamps:
                if cycle is None:
                    raise SimulationError(
                        f"request for element {request.element_index} has an "
                        f"incomplete {kind.value} timestamp"
                    )
                events.append(
                    Event(cycle, request.module, request.element_index, kind)
                )
        return cls(events)

    def at_cycle(self, cycle: int) -> list[Event]:
        """All events happening at one cycle."""
        return [event for event in self.events if event.cycle == cycle]

    def for_module(self, module: int) -> list[Event]:
        """All events touching one module, in time order."""
        return [event for event in self.events if event.module == module]

    def for_element(self, element_index: int) -> list[Event]:
        """The five lifecycle events of one element."""
        return [
            event
            for event in self.events
            if event.element_index == element_index
        ]

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    def queue_depth_at(self, module: int, cycle: int) -> int:
        """Requests that have arrived at ``module`` but not yet started
        service, at the end of ``cycle``."""
        arrived = sum(
            1
            for event in self.events
            if event.module == module
            and event.kind == EventKind.ARRIVE
            and event.cycle <= cycle
        )
        started = sum(
            1
            for event in self.events
            if event.module == module
            and event.kind == EventKind.START
            and event.cycle <= cycle
        )
        return arrived - started

    def peak_queue_depth(self, module: int) -> int:
        """Maximum end-of-cycle waiting-queue depth reached at ``module``.

        A request that arrives and starts service in the same cycle never
        waits, so the depth is evaluated after all of a cycle's events:
        a conflict-free stream peaks at 0.
        """
        depth = 0
        peak = 0
        current_cycle: int | None = None
        for event in self.for_module(module):
            if event.cycle != current_cycle:
                peak = max(peak, depth)
                current_cycle = event.cycle
            if event.kind == EventKind.ARRIVE:
                depth += 1
            elif event.kind == EventKind.START:
                depth -= 1
        return max(peak, depth)

    def delivery_span(self) -> tuple[int, int]:
        """(first, last) delivery cycles."""
        deliveries = self.of_kind(EventKind.DELIVER)
        if not deliveries:
            raise SimulationError("no deliveries in the event log")
        cycles = [event.cycle for event in deliveries]
        return min(cycles), max(cycles)

    def to_csv(self) -> str:
        """The log as CSV text (cycle, kind, module, element)."""
        buffer = io.StringIO()
        buffer.write("cycle,kind,module,element\n")
        for event in self.events:
            buffer.write(
                f"{event.cycle},{event.kind.value},{event.module},"
                f"{event.element_index}\n"
            )
        return buffer.getvalue()

    def __len__(self) -> int:
        return len(self.events)
