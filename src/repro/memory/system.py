"""Cycle-accurate simulator of the Figure 2 memory subsystem.

Timing contract (all cycles 1-based):

* the processor issues at most one request per cycle; it stalls when the
  target module's input queue is full;
* address bus delay 1 cycle: a request issued at ``c`` arrives at its
  module at ``c + 1``;
* a module starts the head request when idle; service takes ``T`` cycles
  (busy ``start .. start + T - 1``) and needs the output queue to drain;
* result bus: one result per cycle, arbitrated, delivered the cycle it is
  granted; a result finishing service at the end of cycle ``f`` is first
  deliverable at ``f + 1``.

Hence a conflict-free access of ``L`` elements issued at cycles
``1 .. L`` delivers its last element at cycle ``L + T + 1`` — the paper's
minimum latency ``T + L + 1``.  The simulator's ``conflict_free``
observation (no request ever waited) is cross-checked against the static
predicate of :mod:`repro.core.distributions` in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.planner import AccessPlan
from repro.errors import SimulationError
from repro.memory.arbiter import FifoArbiter, ResultArbiter
from repro.memory.config import MemoryConfig
from repro.memory.module import InFlightRequest, MemoryModule


@dataclass(frozen=True)
class AccessResult:
    """Outcome of simulating one request stream.

    Attributes
    ----------
    latency:
        Cycles from the first issue attempt to the last delivery.
    issue_stall_cycles:
        Cycles the processor spent unable to issue (input queue full).
    conflict_free:
        True when no request ever found its module busy *and* the result
        bus never held a result back — the dynamic counterpart of the
        paper's definition.
    requests:
        Per-request timing records, in issue order.
    module_busy_cycles:
        Utilisation per module.
    """

    latency: int
    issue_stall_cycles: int
    conflict_free: bool
    requests: tuple[InFlightRequest, ...]
    module_busy_cycles: tuple[int, ...]

    @property
    def element_count(self) -> int:
        return len(self.requests)

    @property
    def cycles_per_element(self) -> float:
        """Average issue-to-drain cost per element."""
        return self.latency / self.element_count

    @property
    def wait_count(self) -> int:
        """Requests that queued behind a busy module."""
        return sum(1 for request in self.requests if request.waited)

    def delivery_order(self) -> list[int]:
        """Element indices in the order their data returned."""
        ordered = sorted(self.requests, key=lambda r: r.delivery_cycle)
        return [request.element_index for request in ordered]

    def excess_latency(self, service_ratio: int) -> int:
        """Latency above the conflict-free minimum ``T + L + 1``."""
        return self.latency - (service_ratio + self.element_count + 1)


class MemorySystem:
    """The multi-module memory of Figure 2, driven cycle by cycle."""

    def __init__(self, config: MemoryConfig, arbiter: ResultArbiter | None = None):
        self.config = config
        self.arbiter = arbiter if arbiter is not None else FifoArbiter()

    def run_plan(self, plan: AccessPlan) -> AccessResult:
        """Simulate an :class:`~repro.core.planner.AccessPlan` (or any
        object with a ``request_stream()`` method)."""
        return self.run_stream(plan.request_stream())

    def run_stream(
        self, stream: Sequence[tuple[int, int]], stores: Iterable[int] = ()
    ) -> AccessResult:
        """Simulate a stream of ``(element_index, address)`` requests.

        ``stores`` optionally lists stream positions that are store
        operations; stores follow the same request path (the paper's
        module timing applies to loads and stores alike) and their
        "result" models the store acknowledgement.
        """
        if not stream:
            raise SimulationError("cannot simulate an empty request stream")
        store_positions = frozenset(stores)
        mapping = self.config.mapping
        requests = [
            InFlightRequest(
                element_index=element,
                address=mapping.reduce(address),
                module=mapping.module_of(mapping.reduce(address)),
                is_store=position in store_positions,
            )
            for position, (element, address) in enumerate(stream)
        ]

        modules = [
            MemoryModule(
                index,
                self.config.service_ratio,
                self.config.input_capacity,
                self.config.output_capacity,
            )
            for index in range(self.config.module_count)
        ]

        next_to_issue = 0
        delivered = 0
        issue_stalls = 0
        bus_held_result = False
        cycle = 0
        guard = self._cycle_guard(len(requests))

        while delivered < len(requests):
            cycle += 1
            if cycle > guard:
                raise SimulationError(
                    f"simulation exceeded {guard} cycles for "
                    f"{len(requests)} requests — livelock?"
                )

            # 1. Processor issue (one request per cycle, stall on full).
            if next_to_issue < len(requests):
                request = requests[next_to_issue]
                target = modules[request.module]
                if target.can_accept():
                    request.issue_cycle = cycle
                    request.arrival_cycle = cycle + 1
                    target.accept(request)
                    next_to_issue += 1
                else:
                    issue_stalls += 1

            # 2. Result bus: one delivery per cycle.
            ready = [
                module
                for module in modules
                if module.peek_deliverable(cycle) is not None
            ]
            if len(ready) > 1:
                bus_held_result = True
            granted = self.arbiter.grant(modules, cycle)
            if granted is not None:
                delivered_request = modules[granted].pop_deliverable()
                delivered_request.delivery_cycle = cycle
                delivered += 1

            # 3. Module service: start new work, then retire finishing work.
            for module in modules:
                module.try_start(cycle)
                module.tick_stats()
            for module in modules:
                module.try_finish(cycle)

        no_waits = all(not request.waited for request in requests)
        return AccessResult(
            latency=cycle,
            issue_stall_cycles=issue_stalls,
            conflict_free=no_waits and not bus_held_result and issue_stalls == 0,
            requests=tuple(requests),
            module_busy_cycles=tuple(module.busy_cycles for module in modules),
        )

    def _cycle_guard(self, request_count: int) -> int:
        """Upper bound on cycles: everything serialised through one module
        plus drain, with generous margin."""
        return (request_count + 2) * (self.config.service_ratio + 2) + 64
