"""Cycle-accurate simulator of the Figure 2 memory subsystem.

Timing contract (all cycles 1-based):

* the processor issues at most one request per cycle; it stalls when the
  target module's input queue is full;
* address bus delay 1 cycle: a request issued at ``c`` arrives at its
  module at ``c + 1``;
* a module starts the head request when idle; service takes ``T`` cycles
  (busy ``start .. start + T - 1``) and needs the output queue to drain;
* result bus: one result per cycle, arbitrated, delivered the cycle it is
  granted; a result finishing service at the end of cycle ``f`` is first
  deliverable at ``f + 1``.

Hence a conflict-free access of ``L`` elements issued at cycles
``1 .. L`` delivers its last element at cycle ``L + T + 1`` — the paper's
minimum latency ``T + L + 1``.  The simulator's ``conflict_free``
observation (no request ever waited) is cross-checked against the static
predicate of :mod:`repro.core.distributions` in the test-suite.

:class:`MemorySystem` is the single-stream view over the unified
:class:`~repro.memory.kernel.MemoryKernel` (one stream; ``config.ports``
result buses, one by default) — the cycle loop itself lives in the
kernel, shared with the multi-stream and multi-port views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.planner import AccessPlan
from repro.errors import SimulationError
from repro.memory.arbiter import ResultArbiter
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelRun, KernelStream, MemoryKernel
from repro.memory.module import InFlightRequest


@dataclass(frozen=True)
class AccessResult:
    """Outcome of simulating one request stream.

    Attributes
    ----------
    latency:
        Cycles from the first issue attempt to the last delivery.
    issue_stall_cycles:
        Cycles the processor spent unable to issue (input queue full).
    conflict_free:
        True when no request ever found its module busy *and* the result
        bus never held a result back — the dynamic counterpart of the
        paper's definition.
    requests:
        Per-request timing records, in issue order.
    module_busy_cycles:
        Utilisation per module.
    """

    latency: int
    issue_stall_cycles: int
    conflict_free: bool
    requests: tuple[InFlightRequest, ...]
    module_busy_cycles: tuple[int, ...]

    @property
    def element_count(self) -> int:
        return len(self.requests)

    @property
    def cycles_per_element(self) -> float:
        """Average issue-to-drain cost per element."""
        return self.latency / self.element_count

    @property
    def wait_count(self) -> int:
        """Requests that queued behind a busy module."""
        return sum(1 for request in self.requests if request.waited)

    def delivery_order(self) -> list[int]:
        """Element indices in the order their data returned."""
        ordered = sorted(self.requests, key=lambda r: r.delivery_cycle)
        return [request.element_index for request in ordered]

    def excess_latency(self, service_ratio: int) -> int:
        """Latency above the conflict-free minimum ``T + L + 1``."""
        return self.latency - (service_ratio + self.element_count + 1)


def access_result_from_run(
    run: KernelRun, stream_index: int, service_ratio: int
) -> AccessResult:
    """One kernel stream's outcome as an :class:`AccessResult`.

    For a single-stream run this is the classic whole-run record
    (``latency`` = total cycles, busy cycles = the whole machine's,
    and the run-global held-result flag — there is only one stream to
    attribute it to).  For a stream in a multi-stream run, latency
    spans cycle 1 (when the stream became eligible to issue) to its own
    last delivery, and both busy cycles and held results are attributed
    per stream: every request occupies its module for exactly ``T``
    cycles, and a hold only taints the stream whose delivery actually
    slipped past ``finish + 1``.
    """
    stream = run.streams[stream_index]
    if len(run.streams) == 1:
        latency = run.total_cycles
        busy = run.module_busy_cycles
        held = run.bus_held_result
    else:
        latency = stream.last_delivery_cycle
        busy = tuple(
            service_ratio * count for count in stream.module_request_counts
        )
        held = stream.result_held
    return AccessResult(
        latency=latency,
        issue_stall_cycles=stream.issue_stall_cycles,
        conflict_free=stream.conflict_free and not held,
        requests=stream.requests,
        module_busy_cycles=busy,
    )


class MemorySystem:
    """The multi-module memory of Figure 2, driven cycle by cycle."""

    def __init__(self, config: MemoryConfig, arbiter: ResultArbiter | None = None):
        self.config = config
        self.arbiter = arbiter

    def run_plan(self, plan: AccessPlan, *, tracer=None) -> AccessResult:
        """Simulate an :class:`~repro.core.planner.AccessPlan` (or any
        object with a ``request_stream()`` method)."""
        return self.run_stream(plan.request_stream(), tracer=tracer)

    def run_stream(
        self,
        stream: Sequence[tuple[int, int]],
        stores: Iterable[int] = (),
        *,
        tracer=None,
    ) -> AccessResult:
        """Simulate a stream of ``(element_index, address)`` requests.

        ``stores`` optionally lists stream positions that are store
        operations; stores follow the same request path (the paper's
        module timing applies to loads and stores alike) and their
        "result" models the store acknowledgement.  ``tracer`` is
        forwarded to the kernel for cycle-level event emission.
        """
        if not stream:
            raise SimulationError("cannot simulate an empty request stream")
        kernel = MemoryKernel(self.config, arbiter=self.arbiter, tracer=tracer)
        run = kernel.run([KernelStream.of("access", stream, stores=stores)])
        result = run.streams[0]
        return AccessResult(
            latency=run.total_cycles,
            issue_stall_cycles=result.issue_stall_cycles,
            conflict_free=(
                result.conflict_free and not run.bus_held_result
            ),
            requests=result.requests,
            module_busy_cycles=run.module_busy_cycles,
        )
