"""Memory-subsystem configuration (the Figure 2 machine).

Bundles the geometry of the multi-module memory: the address mapping, the
service-time ratio ``T = 2**t``, and the per-module buffer depths ``q``
(input) and ``q'`` (output).  The paper's two headline configurations are
provided as constructors:

* :meth:`MemoryConfig.matched` — ``M = T`` with the Eq. (1) mapping;
* :meth:`MemoryConfig.unmatched` — ``M = T**2`` with the Eq. (2) mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mappings.base import AddressMapping
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and buffering of the multi-module memory.

    Attributes
    ----------
    mapping:
        Module-number component of the address mapping.
    t:
        Module service time is ``T = 2**t`` processor cycles.
    input_capacity:
        ``q`` — waiting slots per module (requests that have crossed the
        address bus but not yet entered service).  The processor stalls
        when the target module's input queue is full.  The conflict-free
        scheme of Section 3.2 needs only ``q = 1``.
    output_capacity:
        ``q'`` — completed results a module can hold while waiting for
        the single result bus.  Section 3.1's bounded-latency claim uses
        ``q = 2, q' = 1``.
    ports:
        ``k`` — address/result bus pairs (the Section 6 "several memory
        ports" outlook).  Each port carries one request and one result
        per cycle; the classic Figure 2 machine is ``ports = 1``.
    """

    mapping: AddressMapping
    t: int
    input_capacity: int = 1
    output_capacity: int = 1
    ports: int = 1

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ConfigurationError(f"t must be >= 0, got {self.t}")
        if self.mapping.module_bits < self.t:
            raise ConfigurationError(
                f"m={self.mapping.module_bits} modules cannot sustain one "
                f"access per cycle with T=2**{self.t} (need m >= t)"
            )
        if self.input_capacity < 1:
            raise ConfigurationError(
                f"input_capacity must be >= 1 (the module's request "
                f"register), got {self.input_capacity}"
            )
        if self.output_capacity < 1:
            raise ConfigurationError(
                f"output_capacity must be >= 1, got {self.output_capacity}"
            )
        if not isinstance(self.ports, int) or isinstance(self.ports, bool):
            raise ConfigurationError(
                f"memory config field 'ports' must be an integer, got "
                f"{self.ports!r}"
            )
        if self.ports < 1:
            raise ConfigurationError(
                f"memory config field 'ports' must be >= 1, got {self.ports}"
            )
        if self.ports > self.mapping.module_count:
            raise ConfigurationError(
                f"memory config field 'ports' ({self.ports}) cannot exceed "
                f"the module count M={self.mapping.module_count}: each port "
                "needs at least one module to talk to"
            )

    @property
    def service_ratio(self) -> int:
        """``T = 2**t``."""
        return 1 << self.t

    @property
    def module_count(self) -> int:
        """``M = 2**m``."""
        return self.mapping.module_count

    @property
    def is_matched(self) -> bool:
        """True when ``M == T`` (Section 3's case)."""
        return self.module_count == self.service_ratio

    @classmethod
    def matched(
        cls,
        t: int,
        s: int,
        input_capacity: int = 1,
        output_capacity: int = 1,
        address_bits: int = 32,
        ports: int = 1,
    ) -> "MemoryConfig":
        """Matched memory with the Eq. (1) XOR mapping."""
        return cls(
            MatchedXorMapping(t, s, address_bits),
            t,
            input_capacity,
            output_capacity,
            ports,
        )

    @classmethod
    def unmatched(
        cls,
        t: int,
        s: int,
        y: int,
        input_capacity: int = 1,
        output_capacity: int = 1,
        address_bits: int = 32,
        ports: int = 1,
    ) -> "MemoryConfig":
        """Unmatched memory (``M = T**2``) with the Eq. (2) mapping."""
        return cls(
            SectionXorMapping(t, s, y, address_bits),
            t,
            input_capacity,
            output_capacity,
            ports,
        )

    def describe(self) -> str:
        ports = f", ports={self.ports}" if self.ports != 1 else ""
        return (
            f"MemoryConfig(M={self.module_count}, T={self.service_ratio}, "
            f"q={self.input_capacity}, q'={self.output_capacity}"
            f"{ports}, mapping={self.mapping.describe()})"
        )
