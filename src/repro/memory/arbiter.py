"""Result-bus arbitration policies.

The Figure 2 machine returns results to the processor over a single bus,
one element per cycle.  When several modules hold ready results the
arbiter picks one; the policy matters only for non-conflict-free streams
(a conflict-free stream produces at most one ready result per cycle).

Two policies are provided:

* :class:`FifoArbiter` — oldest result first (by ready cycle, ties broken
  by module index); matches the paper's implicit assumption that elements
  come back as soon as possible;
* :class:`RoundRobinArbiter` — rotating priority, a common hardware
  choice; used in the robustness tests to show latency results do not
  depend on the tie-break for conflict-free streams.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.memory.module import MemoryModule


class ResultArbiter(ABC):
    """Chooses which module drives the result bus this cycle."""

    @abstractmethod
    def grant(self, modules: Sequence[MemoryModule], cycle: int) -> int | None:
        """Return the index of the module granted the bus, or None."""


class FifoArbiter(ResultArbiter):
    """Grant the oldest ready result (ready cycle, then module index)."""

    def grant(self, modules: Sequence[MemoryModule], cycle: int) -> int | None:
        best: tuple[int, int] | None = None
        for module in modules:
            head = module.peek_deliverable(cycle)
            if head is None:
                continue
            key = (head[0], module.index)
            if best is None or key < best:
                best = key
        return best[1] if best is not None else None


class RoundRobinArbiter(ResultArbiter):
    """Rotating-priority grant starting after the last winner."""

    def __init__(self) -> None:
        self._last = -1

    def grant(self, modules: Sequence[MemoryModule], cycle: int) -> int | None:
        count = len(modules)
        for offset in range(1, count + 1):
            index = (self._last + offset) % count
            if modules[index].peek_deliverable(cycle) is not None:
                self._last = index
                return index
        return None
