"""A single memory module: input queue, service unit, output queue.

The module is a passive state holder; :mod:`repro.memory.system` drives
the cycle loop and calls the transition methods in a fixed order so the
timing contract of the package docstring holds exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class InFlightRequest:
    """One memory request with its full timing record.

    Cycle fields are filled in as the request progresses; ``None`` means
    the event has not happened yet.
    """

    element_index: int
    address: int
    module: int
    is_store: bool = False
    issue_cycle: int | None = None
    arrival_cycle: int | None = None
    start_cycle: int | None = None
    finish_cycle: int | None = None
    delivery_cycle: int | None = None

    @property
    def waited(self) -> bool:
        """True when the request found its module busy (a conflict)."""
        if self.arrival_cycle is None or self.start_cycle is None:
            raise SimulationError("request timing incomplete")
        return self.start_cycle != self.arrival_cycle

    @property
    def latency(self) -> int:
        """Cycles from issue to delivery, inclusive."""
        if self.issue_cycle is None or self.delivery_cycle is None:
            raise SimulationError("request timing incomplete")
        return self.delivery_cycle - self.issue_cycle + 1


class MemoryModule:
    """State machine for one module.

    Timing (driven by the system):

    * a request issued at cycle ``c`` arrives at cycle ``c + 1`` (address
      bus) and sits in the input queue;
    * when the module is idle at the start of a cycle and the head request
      has arrived, service begins; it lasts ``T`` cycles, ending at
      ``start + T - 1``;
    * at the end of the finishing cycle the result moves to the output
      queue (if full, the module stays occupied — head-of-line blocking);
    * the result becomes eligible for the result bus on the next cycle.
    """

    def __init__(self, index: int, service_time: int, input_capacity: int,
                 output_capacity: int):
        self.index = index
        self.service_time = service_time
        self.input_capacity = input_capacity
        self.output_capacity = output_capacity
        self.input_queue: deque[InFlightRequest] = deque()
        self.in_service: InFlightRequest | None = None
        self.blocked_result: InFlightRequest | None = None
        self.output_queue: deque[tuple[int, InFlightRequest]] = deque()
        self.busy_cycles = 0

    def can_accept(self) -> bool:
        """Room for one more request in the input queue?"""
        return len(self.input_queue) < self.input_capacity

    def accept(self, request: InFlightRequest) -> None:
        """Enqueue a request (called by the system at issue time)."""
        if not self.can_accept():
            raise SimulationError(
                f"module {self.index}: input queue overflow (q="
                f"{self.input_capacity})"
            )
        self.input_queue.append(request)

    def try_start(self, cycle: int) -> None:
        """Begin service if idle and the head request has arrived."""
        if self.in_service is not None or self.blocked_result is not None:
            return
        if not self.input_queue:
            return
        head = self.input_queue[0]
        if head.arrival_cycle is None or head.arrival_cycle > cycle:
            return
        self.input_queue.popleft()
        head.start_cycle = cycle
        head.finish_cycle = cycle + self.service_time - 1
        self.in_service = head

    def try_finish(self, cycle: int) -> None:
        """Move a finishing request to the output queue at end of cycle.

        If the output queue is full, the result parks in
        ``blocked_result`` and the module cannot start a new service until
        it drains (the paper's q' back-pressure).
        """
        if self.blocked_result is not None:
            if len(self.output_queue) < self.output_capacity:
                ready = cycle + 1
                self.output_queue.append((ready, self.blocked_result))
                self.blocked_result = None
            return
        request = self.in_service
        if request is None or request.finish_cycle != cycle:
            return
        self.in_service = None
        if len(self.output_queue) < self.output_capacity:
            self.output_queue.append((cycle + 1, request))
        else:
            self.blocked_result = request

    def peek_deliverable(self, cycle: int) -> tuple[int, InFlightRequest] | None:
        """Head of the output queue if eligible for the result bus."""
        if not self.output_queue:
            return None
        ready, request = self.output_queue[0]
        if ready > cycle:
            return None
        return ready, request

    def pop_deliverable(self) -> InFlightRequest:
        """Remove and return the head result (bus grant)."""
        if not self.output_queue:
            raise SimulationError(f"module {self.index}: nothing to deliver")
        return self.output_queue.popleft()[1]

    def tick_stats(self) -> None:
        """Accumulate utilisation statistics (called once per cycle)."""
        if self.in_service is not None:
            self.busy_cycles += 1

    @property
    def idle(self) -> bool:
        """No request anywhere in the module."""
        return (
            self.in_service is None
            and self.blocked_result is None
            and not self.input_queue
            and not self.output_queue
        )
