"""Multiple concurrent vector streams through one memory (Section 6).

The paper's conclusions list "several vectors accessed simultaneously,
either in a single processor with several memory ports or in a
multiprocessor" as future work.  This module provides that substrate so
the interference can be measured today:

* each *stream* is an independent request sequence (typically an
  :class:`~repro.core.planner.AccessPlan`'s stream) with its own cursor;
* the shared address bus still carries one request per cycle; an issue
  policy (round-robin by default) picks which stream drives it;
* modules and the result bus behave exactly as in
  :class:`~repro.memory.system.MemorySystem`.

Two conflict-free plans interleaved this way are generally *not* jointly
conflict-free — each stream's carefully spaced module pattern is sheared
by the other's stalls — which quantifies why the paper calls the
multi-vector case a separate problem (experiment A2 in the ablation
benches).

:class:`MultiStreamMemorySystem` is the single-port multi-stream view
over the unified :class:`~repro.memory.kernel.MemoryKernel`; widening
the machine to several ports is the
:class:`~repro.memory.multiport.MultiPortMemorySystem` view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.memory.arbiter import ResultArbiter
from repro.memory.config import MemoryConfig
from repro.memory.kernel import KernelRun, MemoryKernel


@dataclass(frozen=True)
class StreamResult:
    """Per-stream outcome of a multi-stream simulation."""

    stream_index: int
    first_issue_cycle: int
    last_delivery_cycle: int
    issue_stall_cycles: int
    wait_count: int
    element_count: int

    @property
    def latency(self) -> int:
        """Cycles from this stream's first issue to its last delivery."""
        return self.last_delivery_cycle - self.first_issue_cycle + 1

    @property
    def conflict_free(self) -> bool:
        return self.wait_count == 0 and self.issue_stall_cycles == 0


@dataclass(frozen=True)
class MultiStreamResult:
    """Aggregate outcome: all streams plus the shared-bus view."""

    streams: tuple[StreamResult, ...]
    total_cycles: int
    bus_busy_cycles: int

    @property
    def aggregate_elements(self) -> int:
        return sum(stream.element_count for stream in self.streams)

    @property
    def bus_utilisation(self) -> float:
        return self.bus_busy_cycles / self.total_cycles


def stream_results_from_run(run: KernelRun) -> MultiStreamResult:
    """A kernel run as the legacy :class:`MultiStreamResult` record."""
    return MultiStreamResult(
        streams=tuple(
            StreamResult(
                stream_index=stream.index,
                first_issue_cycle=stream.first_issue_cycle,
                last_delivery_cycle=stream.last_delivery_cycle,
                issue_stall_cycles=stream.issue_stall_cycles,
                wait_count=stream.wait_count,
                element_count=stream.element_count,
            )
            for stream in run.streams
        ),
        total_cycles=run.total_cycles,
        bus_busy_cycles=run.bus_busy_cycles,
    )


class MultiStreamMemorySystem:
    """The Figure 2 machine shared by several request streams.

    Parameters
    ----------
    config:
        Shared memory geometry.  This view always models the single
        shared address/result bus, whatever ``config.ports`` says; use
        :class:`~repro.memory.multiport.MultiPortMemorySystem` (or the
        kernel directly) for the widened machine.
    policy:
        ``"round_robin"`` — rotate the address bus across streams with
        pending requests; ``"priority"`` — stream 0 issues whenever it
        can, lower-numbered streams first (models a foreground vector
        port with background traffic).
    """

    def __init__(
        self,
        config: MemoryConfig,
        policy: str = "round_robin",
        arbiter: ResultArbiter | None = None,
    ):
        self.kernel = MemoryKernel(
            config, ports=1, policy=policy, arbiter=arbiter
        )
        self.config = config
        self.policy = policy

    def run_streams(
        self, streams: Sequence[Sequence[tuple[int, int]]]
    ) -> MultiStreamResult:
        """Simulate all streams to completion."""
        if not streams or any(not stream for stream in streams):
            raise SimulationError("need at least one non-empty stream")
        return stream_results_from_run(self.kernel.run(streams))
