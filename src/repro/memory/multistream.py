"""Multiple concurrent vector streams through one memory (Section 6).

The paper's conclusions list "several vectors accessed simultaneously,
either in a single processor with several memory ports or in a
multiprocessor" as future work.  This module provides that substrate so
the interference can be measured today:

* each *stream* is an independent request sequence (typically an
  :class:`~repro.core.planner.AccessPlan`'s stream) with its own cursor;
* the shared address bus still carries one request per cycle; an issue
  policy (round-robin by default) picks which stream drives it;
* modules and the result bus behave exactly as in
  :class:`~repro.memory.system.MemorySystem`.

Two conflict-free plans interleaved this way are generally *not* jointly
conflict-free — each stream's carefully spaced module pattern is sheared
by the other's stalls — which quantifies why the paper calls the
multi-vector case a separate problem (experiment A2 in the ablation
benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.memory.arbiter import FifoArbiter, ResultArbiter
from repro.memory.config import MemoryConfig
from repro.memory.module import InFlightRequest, MemoryModule


@dataclass(frozen=True)
class StreamResult:
    """Per-stream outcome of a multi-stream simulation."""

    stream_index: int
    first_issue_cycle: int
    last_delivery_cycle: int
    issue_stall_cycles: int
    wait_count: int
    element_count: int

    @property
    def latency(self) -> int:
        """Cycles from this stream's first issue to its last delivery."""
        return self.last_delivery_cycle - self.first_issue_cycle + 1

    @property
    def conflict_free(self) -> bool:
        return self.wait_count == 0 and self.issue_stall_cycles == 0


@dataclass(frozen=True)
class MultiStreamResult:
    """Aggregate outcome: all streams plus the shared-bus view."""

    streams: tuple[StreamResult, ...]
    total_cycles: int
    bus_busy_cycles: int

    @property
    def aggregate_elements(self) -> int:
        return sum(stream.element_count for stream in self.streams)

    @property
    def bus_utilisation(self) -> float:
        return self.bus_busy_cycles / self.total_cycles


class MultiStreamMemorySystem:
    """The Figure 2 machine shared by several request streams.

    Parameters
    ----------
    config:
        Shared memory geometry.
    policy:
        ``"round_robin"`` — rotate the address bus across streams with
        pending requests; ``"priority"`` — stream 0 issues whenever it
        can, lower-numbered streams first (models a foreground vector
        port with background traffic).
    """

    def __init__(
        self,
        config: MemoryConfig,
        policy: str = "round_robin",
        arbiter: ResultArbiter | None = None,
    ):
        if policy not in ("round_robin", "priority"):
            raise SimulationError(f"unknown issue policy {policy!r}")
        self.config = config
        self.policy = policy
        self.arbiter = arbiter if arbiter is not None else FifoArbiter()

    def run_streams(
        self, streams: Sequence[Sequence[tuple[int, int]]]
    ) -> MultiStreamResult:
        """Simulate all streams to completion."""
        if not streams or any(not stream for stream in streams):
            raise SimulationError("need at least one non-empty stream")
        mapping = self.config.mapping
        pending: list[list[InFlightRequest]] = []
        for stream_index, stream in enumerate(streams):
            pending.append(
                [
                    InFlightRequest(
                        element_index=element,
                        address=mapping.reduce(address),
                        module=mapping.module_of(mapping.reduce(address)),
                    )
                    for element, address in stream
                ]
            )

        modules = [
            MemoryModule(
                index,
                self.config.service_ratio,
                self.config.input_capacity,
                self.config.output_capacity,
            )
            for index in range(self.config.module_count)
        ]

        cursors = [0] * len(streams)
        stalls = [0] * len(streams)
        first_issue = [0] * len(streams)
        last_delivery = [0] * len(streams)
        owner_of: dict[int, int] = {}
        delivered = 0
        total = sum(len(stream) for stream in pending)
        bus_busy = 0
        rotate = 0
        cycle = 0
        guard = (total + 2) * (self.config.service_ratio + 2) + 64

        while delivered < total:
            cycle += 1
            if cycle > guard:
                raise SimulationError(
                    f"multi-stream simulation exceeded {guard} cycles"
                )

            # 1. Address bus: one request from one stream.
            candidates = [
                index
                for index in range(len(streams))
                if cursors[index] < len(pending[index])
            ]
            issued = False
            scan = (
                sorted(candidates, key=lambda i: (i - rotate) % len(streams))
                if self.policy == "round_robin"
                else candidates
            )
            for stream_index in scan:
                request = pending[stream_index][cursors[stream_index]]
                target = modules[request.module]
                if target.can_accept():
                    request.issue_cycle = cycle
                    request.arrival_cycle = cycle + 1
                    target.accept(request)
                    owner_of[id(request)] = stream_index
                    if first_issue[stream_index] == 0:
                        first_issue[stream_index] = cycle
                    cursors[stream_index] += 1
                    rotate = stream_index + 1
                    issued = True
                    bus_busy += 1
                    break
                # Head-of-line blocked stream counts a stall; under
                # round-robin the bus tries the next stream.
                stalls[stream_index] += 1
                if self.policy == "priority":
                    break
            if not issued and not candidates:
                pass  # all streams done issuing, draining results

            # 2. Result bus.
            granted = self.arbiter.grant(modules, cycle)
            if granted is not None:
                request = modules[granted].pop_deliverable()
                request.delivery_cycle = cycle
                stream_index = owner_of.pop(id(request))
                last_delivery[stream_index] = max(
                    last_delivery[stream_index], cycle
                )
                delivered += 1

            # 3. Modules.
            for module in modules:
                module.try_start(cycle)
                module.tick_stats()
            for module in modules:
                module.try_finish(cycle)

        stream_results = []
        for index, requests in enumerate(pending):
            stream_results.append(
                StreamResult(
                    stream_index=index,
                    first_issue_cycle=first_issue[index],
                    last_delivery_cycle=last_delivery[index],
                    issue_stall_cycles=stalls[index],
                    wait_count=sum(1 for r in requests if r.waited),
                    element_count=len(requests),
                )
            )
        return MultiStreamResult(
            streams=tuple(stream_results),
            total_cycles=cycle,
            bus_busy_cycles=bus_busy,
        )
