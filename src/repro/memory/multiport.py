"""Multi-port memories: several address/result buses (Section 6 outlook).

Where :mod:`repro.memory.multistream` shares *one* address bus between
streams, this module widens the machine: ``ports`` requests can issue
per cycle (one per port) and ``ports`` results can return per cycle.
This models the paper's "single processor with several memory ports"
future-work case.

With ``ports = k`` and the same ``T``-cycle modules, the memory can only
sustain ``k`` elements per cycle if ``M >= k * T`` modules exist and the
combined request pattern keeps every window of ``T`` cycles within
module capacity.  The interesting (and measured) effect: two
conflict-free streams on separate ports still collide in the *modules*
unless their address patterns are disjoint in module space — e.g. two
vectors of the same stride family whose base addresses differ in the low
bits collide constantly, while streams of family ``x = s`` offset by one
period interleave perfectly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.memory.arbiter import FifoArbiter
from repro.memory.config import MemoryConfig
from repro.memory.module import InFlightRequest, MemoryModule
from repro.memory.multistream import MultiStreamResult, StreamResult


@dataclass(frozen=True)
class PortAssignment:
    """Static binding of streams to ports (stream i -> port i % ports)."""

    ports: int
    streams: int

    def port_of(self, stream_index: int) -> int:
        return stream_index % self.ports


class MultiPortMemorySystem:
    """The Figure 2 machine with ``ports`` address and result buses.

    Each port carries at most one request and one result per cycle.
    Streams are statically assigned to ports round-robin; streams on one
    port take turns (round-robin) like in the single-bus system.
    """

    def __init__(self, config: MemoryConfig, ports: int):
        if ports < 1:
            raise ConfigurationError(f"ports must be >= 1, got {ports}")
        if config.module_count < ports:
            raise ConfigurationError(
                f"{ports} ports cannot be fed by {config.module_count} modules"
            )
        self.config = config
        self.ports = ports

    def run_streams(
        self, streams: Sequence[Sequence[tuple[int, int]]]
    ) -> MultiStreamResult:
        """Simulate all streams; stream ``i`` issues on port ``i % ports``."""
        if not streams or any(not stream for stream in streams):
            raise SimulationError("need at least one non-empty stream")
        mapping = self.config.mapping
        assignment = PortAssignment(self.ports, len(streams))
        pending: list[list[InFlightRequest]] = [
            [
                InFlightRequest(
                    element_index=element,
                    address=mapping.reduce(address),
                    module=mapping.module_of(mapping.reduce(address)),
                )
                for element, address in stream
            ]
            for stream in streams
        ]

        modules = [
            MemoryModule(
                index,
                self.config.service_ratio,
                self.config.input_capacity,
                self.config.output_capacity,
            )
            for index in range(self.config.module_count)
        ]

        cursors = [0] * len(streams)
        stalls = [0] * len(streams)
        first_issue = [0] * len(streams)
        last_delivery = [0] * len(streams)
        owner_of: dict[int, int] = {}
        port_rotation = [0] * self.ports
        delivered = 0
        total = sum(len(stream) for stream in pending)
        bus_busy = 0
        cycle = 0
        guard = (total + 2) * (self.config.service_ratio + 2) + 64
        arbiters = [FifoArbiter() for _ in range(self.ports)]

        while delivered < total:
            cycle += 1
            if cycle > guard:
                raise SimulationError(
                    f"multi-port simulation exceeded {guard} cycles"
                )

            # 1. Address buses: one request per port per cycle.
            for port in range(self.ports):
                members = [
                    index
                    for index in range(len(streams))
                    if assignment.port_of(index) == port
                    and cursors[index] < len(pending[index])
                ]
                scan = sorted(
                    members,
                    key=lambda i: (i - port_rotation[port]) % max(len(streams), 1),
                )
                for stream_index in scan:
                    request = pending[stream_index][cursors[stream_index]]
                    target = modules[request.module]
                    if target.can_accept():
                        request.issue_cycle = cycle
                        request.arrival_cycle = cycle + 1
                        target.accept(request)
                        owner_of[id(request)] = stream_index
                        if first_issue[stream_index] == 0:
                            first_issue[stream_index] = cycle
                        cursors[stream_index] += 1
                        port_rotation[port] = stream_index + 1
                        bus_busy += 1
                        break
                    stalls[stream_index] += 1

            # 2. Result buses: up to ``ports`` deliveries per cycle.
            for arbiter in arbiters:
                granted = arbiter.grant(modules, cycle)
                if granted is None:
                    break
                request = modules[granted].pop_deliverable()
                request.delivery_cycle = cycle
                stream_index = owner_of.pop(id(request))
                last_delivery[stream_index] = max(
                    last_delivery[stream_index], cycle
                )
                delivered += 1

            # 3. Modules.
            for module in modules:
                module.try_start(cycle)
                module.tick_stats()
            for module in modules:
                module.try_finish(cycle)

        stream_results = tuple(
            StreamResult(
                stream_index=index,
                first_issue_cycle=first_issue[index],
                last_delivery_cycle=last_delivery[index],
                issue_stall_cycles=stalls[index],
                wait_count=sum(1 for r in requests if r.waited),
                element_count=len(requests),
            )
            for index, requests in enumerate(pending)
        )
        return MultiStreamResult(
            streams=stream_results,
            total_cycles=cycle,
            bus_busy_cycles=bus_busy,
        )
