"""Multi-port memories: several address/result buses (Section 6 outlook).

Where :mod:`repro.memory.multistream` shares *one* address bus between
streams, this module widens the machine: ``ports`` requests can issue
per cycle (one per port) and ``ports`` results can return per cycle.
This models the paper's "single processor with several memory ports"
future-work case.

With ``ports = k`` and the same ``T``-cycle modules, the memory can only
sustain ``k`` elements per cycle if ``M >= k * T`` modules exist and the
combined request pattern keeps every window of ``T`` cycles within
module capacity.  The interesting (and measured) effect: two
conflict-free streams on separate ports still collide in the *modules*
unless their address patterns are disjoint in module space — e.g. two
vectors of the same stride family whose base addresses differ in the low
bits collide constantly, while streams of family ``x = s`` offset by one
period interleave perfectly.

:class:`MultiPortMemorySystem` is the ``k >= 1`` view over the unified
:class:`~repro.memory.kernel.MemoryKernel`; the per-cycle machinery
lives there, shared with the single-stream and single-bus views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.memory.config import MemoryConfig
from repro.memory.kernel import MemoryKernel
from repro.memory.multistream import (
    MultiStreamResult,
    StreamResult,
    stream_results_from_run,
)

__all__ = [
    "MultiPortMemorySystem",
    "MultiStreamResult",
    "PortAssignment",
    "StreamResult",
]


@dataclass(frozen=True)
class PortAssignment:
    """Static binding of streams to ports (stream i -> port i % ports)."""

    ports: int
    streams: int

    def port_of(self, stream_index: int) -> int:
        return stream_index % self.ports


class MultiPortMemorySystem:
    """The Figure 2 machine with ``ports`` address and result buses.

    Each port carries at most one request and one result per cycle.
    Streams are statically assigned to ports round-robin; streams on one
    port take turns (round-robin) like in the single-bus system.
    """

    def __init__(self, config: MemoryConfig, ports: int):
        # The kernel validates the port geometry (ports >= 1, ports <= M)
        # and raises ConfigurationError naming the offending field.
        self.kernel = MemoryKernel(config, ports=ports)
        self.config = config
        self.ports = ports

    def run_streams(
        self, streams: Sequence[Sequence[tuple[int, int]]]
    ) -> MultiStreamResult:
        """Simulate all streams; stream ``i`` issues on port ``i % ports``."""
        if not streams or any(not stream for stream in streams):
            raise SimulationError("need at least one non-empty stream")
        return stream_results_from_run(self.kernel.run(streams))
