"""ASCII figures: bar charts and sparklines for terminal reports.

The benches and examples are terminal programs; these helpers render
their series the way the paper's figures would, without a plotting
dependency.  Deterministic text output also diffs cleanly in CI.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

#: Eight block glyphs, thinnest to tallest, for sparklines.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value).

    Bars scale to the maximum value; each row shows the numeric value so
    the chart is lossless.
    """
    if len(labels) != len(values):
        raise ReproError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not values:
        raise ReproError("bar_chart needs at least one value")
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    if any(value < 0 for value in values):
        raise ReproError("bar_chart values must be non-negative")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = round(width * value / peak) if peak > 0 else 0
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a series using block glyphs."""
    if not values:
        raise ReproError("sparkline needs at least one value")
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_GLYPHS[0] * len(values)
    span = high - low
    out = []
    for value in values:
        rank = int((value - low) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[rank])
    return "".join(out)


def latency_profile(
    families: Sequence[int],
    latencies: Sequence[int],
    minimum: int,
    width: int = 40,
) -> str:
    """Per-family latency chart annotated with the conflict-free floor.

    Families at the floor are drawn with ``=``, conflicting ones with
    ``#`` — the visual signature of a conflict-free window.
    """
    if len(families) != len(latencies):
        raise ReproError("families and latencies must align")
    if minimum < 1:
        raise ReproError(f"minimum latency must be >= 1, got {minimum}")
    peak = max(latencies)
    lines = [f"minimum (T+L+1) = {minimum}"]
    for family, latency in zip(families, latencies):
        filled = round(width * latency / peak) if peak > 0 else 0
        glyph = "=" if latency == minimum else "#"
        lines.append(
            f"x={family:<2d} |{(glyph * filled).ljust(width)}| {latency}"
        )
    return "\n".join(lines)
