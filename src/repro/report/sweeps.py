"""One comparison table across a scenario grid's design points.

``repro lab sweep grid.json`` expands a
:class:`~repro.scenarios.grid.ScenarioGrid`, runs every design point
through the lab's content-addressed cache, and renders *one* table —
swept axes as the leading columns, one row per point — replacing the
ad-hoc per-bench tables those sweeps used to be.  The helpers here are
pure formatting: they take the grid plus each point's metric mapping
(decoded from the lab artifact rows) and return ``(headers, rows)`` for
:func:`repro.report.tables.render_table` / ``render_markdown``.
"""

from __future__ import annotations

from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.spec import ScenarioSpec

#: Metrics every sweep table shows, in order (when the records have them).
CORE_METRICS = (
    "latency",
    "minimum_latency",
    "conflict_free",
    "efficiency",
    "issue_stalls",
    "cycles_per_element",
)

#: Optional metrics appended when any design point reports them.
EXTRA_METRICS = (
    "extra:total_cycles",
    "extra:overlap_fraction",
    "extra:chaining_speedup",
    "extra:numerically_correct",
)


def axis_columns(grid: ScenarioGrid) -> list[str]:
    """Column labels for the grid's axes: the path leaf, or the full
    dotted path when two axes share a leaf name."""
    paths = [path for path, _values in grid.axes]
    leaves = [path.rsplit(".", 1)[-1] for path in paths]
    return [
        leaf if leaves.count(leaf) == 1 else path
        for path, leaf in zip(paths, leaves)
    ]


def axis_value(spec: ScenarioSpec, path: str):
    """The value one expanded design point has at a dotted axis path."""
    cursor = spec.to_dict()
    for part in path.split("."):
        cursor = cursor[part]
    return cursor


def sweep_table(
    grid: ScenarioGrid, records: list[dict]
) -> tuple[list[str], list[list]]:
    """Headers and rows of the sweep comparison table.

    ``records`` maps metric name -> value for each design point, in the
    grid's expansion order (one entry per point; a point whose job
    failed may pass an empty dict and renders as dashes).
    """
    points = grid.expand()
    if len(records) != len(points):
        raise ValueError(
            f"grid expands to {len(points)} design points but "
            f"{len(records)} result records were given"
        )
    metrics = [
        metric
        for metric in CORE_METRICS
        if any(metric in record for record in records)
    ]
    metrics += [
        metric
        for metric in EXTRA_METRICS
        if any(metric in record for record in records)
    ]
    headers = axis_columns(grid) + [
        metric.removeprefix("extra:") for metric in metrics
    ]
    rows = []
    for spec, record in zip(points, records):
        row = [axis_value(spec, path) for path, _values in grid.axes]
        row += [record.get(metric, "-") for metric in metrics]
        rows.append(row)
    return headers, rows
