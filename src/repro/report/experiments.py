"""Experiment runners: one function per reproduced table/figure/number.

Each ``run_eNN`` function regenerates one artifact of the paper (see the
experiment index in DESIGN.md) and returns an :class:`ExperimentResult`
carrying the table rows plus explicit paper-vs-measured checks.  The
``benchmarks/`` suite wraps these in pytest-benchmark targets, and
``benchmarks/run_all.py`` renders them into EXPERIMENTS.md.

Machines are constructed through :mod:`repro.scenarios` specs (see
:func:`_spec_machine`), so every experiment's memory + mapping
combination is one declarative, serializable design point — the same
currency ``repro scenario run`` and the lab's parameterised jobs use.
The runners accept keyword parameters (lambda/t/s/y...) which
``repro.lab.experiment_spec`` exposes as hashed job params for
sweep-style grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.analysis.efficiency import (
    matched_ordered_efficiency,
    matched_proposed_efficiency,
    unmatched_ordered_efficiency,
    unmatched_proposed_efficiency,
)
from repro.analysis.fractions import (
    matched_design_fraction,
    monte_carlo_fraction,
    unmatched_design_fraction,
)
from repro.analysis.tradeoffs import (
    families_vs_length,
    matched_design_point,
    ordered_design_point,
    unmatched_design_point,
)
from repro.analysis.validation import (
    validate_families,
    weighted_measured_efficiency,
)
from repro.core.distributions import canonical_temporal_distribution
from repro.core.shortvec import plan_short_vector
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.hardware.oos_engine import Figure6Engine
from repro.processor.chaining import (
    chained_pair_latency,
    decoupled_pair_latency,
)
from repro.processor.decoupled import DecoupledVectorMachine
from repro.processor.isa import VAdd, VLoad
from repro.processor.program import Program
from repro.scenarios import (
    ComponentSpec,
    MemorySpec,
    ScenarioSpec,
    build_machine,
)


def _spec_machine(
    t: int,
    mapping_kind: str,
    mapping_params: dict,
    q: int = 1,
    qp: int = 1,
):
    """``(MemoryConfig, AccessPlanner, MemorySystem)`` from a spec.

    The single machine-construction path of every experiment: the
    combination is first expressed as a declarative
    :class:`~repro.scenarios.ScenarioSpec` and then materialised by the
    scenarios facade, so each experiment's design point is available as
    serializable data (and produces bit-identical machines to the old
    hand wiring).
    """
    spec = ScenarioSpec(
        mapping=ComponentSpec.of(mapping_kind, **mapping_params),
        memory=MemorySpec(t=t, q=q, qp=qp),
    )
    return build_machine(spec)


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured assertion."""

    claim: str
    expected: str
    measured: str
    passed: bool


@dataclass
class ExperimentResult:
    """A regenerated artifact: a table plus its checks."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def check(self, claim: str, expected, measured) -> None:
        self.checks.append(
            Check(claim, str(expected), str(measured), expected == measured)
        )

    def check_close(
        self, claim: str, expected: float, measured: float, tolerance: float
    ) -> None:
        passed = abs(expected - measured) <= tolerance
        self.checks.append(
            Check(claim, f"{expected:.4g}", f"{measured:.4g}", passed)
        )

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)


# -- E01: Figure 3 ------------------------------------------------------

#: The first nine rows of Figure 3 (m=t=3, s=3): entry [r][b] is the
#: address stored in module b, row r.
FIGURE3_ROWS = [
    [0, 1, 2, 3, 4, 5, 6, 7],
    [9, 8, 11, 10, 13, 12, 15, 14],
    [18, 19, 16, 17, 22, 23, 20, 21],
    [27, 26, 25, 24, 31, 30, 29, 28],
    [36, 37, 38, 39, 32, 33, 34, 35],
    [45, 44, 47, 46, 41, 40, 43, 42],
    [54, 55, 52, 53, 50, 51, 48, 49],
    [63, 62, 61, 60, 59, 58, 57, 56],
    [64, 65, 66, 67, 68, 69, 70, 71],
]


def run_e01() -> ExperimentResult:
    """Regenerate the Figure 3 address layout (m=t=3, s=3)."""
    config, _planner, _system = _spec_machine(3, "matched-xor", {"t": 3, "s": 3})
    mapping = config.mapping
    result = ExperimentResult(
        "E01",
        "Figure 3: XOR mapping layout, m=t=3, s=3",
        ["row"] + [f"mod{b}" for b in range(8)],
        [],
    )
    generated = []
    for row in range(9):
        by_module = {}
        for address in range(row * 8, row * 8 + 8):
            by_module[mapping.module_of(address)] = address
        generated.append([by_module[b] for b in range(8)])
        result.rows.append([row] + generated[-1])
    result.check("layout matches Figure 3", FIGURE3_ROWS, generated)
    return result


# -- E02: Section 3 worked example --------------------------------------

PAPER_CTP_STRIDE12 = [2, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4]
PAPER_SUBSEQ_MODULES = [(2, 5, 0, 3, 6, 1, 4, 7), (7, 2, 5, 0, 3, 6, 1, 4)]


def run_e02() -> ExperimentResult:
    """Stride 12, A1=16, L=64 on the Figure 3 mapping (Section 3)."""
    config, e02_planner, _system = _spec_machine(
        3, "matched-xor", {"t": 3, "s": 3}
    )
    mapping = config.mapping
    vector = VectorAccess(16, 12, 64)
    ctp = canonical_temporal_distribution(mapping, vector)[:16]

    plan = build_subsequences(vector, w=3, t=3)
    subsequence_modules = []
    for j in range(plan.subsequences_per_chunk):
        indices = plan.subsequence_indices(0, j)
        subsequence_modules.append(
            tuple(mapping.module_of(vector.address_of(i)) for i in indices)
        )

    result = ExperimentResult(
        "E02",
        "Section 3 example: stride 12, A1=16, L=64",
        ["item", "value"],
        [
            ["CTP (one period)", " ".join(map(str, ctp))],
            ["subsequence 1 modules", " ".join(map(str, subsequence_modules[0]))],
            ["subsequence 2 modules", " ".join(map(str, subsequence_modules[1]))],
        ],
    )
    result.check("canonical period", PAPER_CTP_STRIDE12, ctp)
    result.check(
        "subsequence module orders",
        PAPER_SUBSEQ_MODULES,
        subsequence_modules,
    )
    ordered_cf = e02_planner.plan(vector, mode="ordered").conflict_free
    result.check("ordered access conflicts (not CF)", False, ordered_cf)
    return result


# -- E03: Theorem 1 / matched window -------------------------------------


def run_e03(
    lambda_exponent: int = 7,
    t: int = 3,
    s: int = 4,
    sigmas: tuple[int, ...] = (1, 3, 5),
    bases: tuple[int, ...] = (0, 1, 16, 777),
) -> ExperimentResult:
    """Latency per stride family, matched memory L=128, M=T=8, s=4."""
    config, planner, system = _spec_machine(t, "matched-xor", {"t": t, "s": s})
    length = 1 << lambda_exponent
    minimum = config.service_ratio + length + 1

    result = ExperimentResult(
        "E03",
        f"Theorem 1: matched window, L={length}, T={1 << t}, s={s}",
        [
            "family x",
            "scheme",
            "worst latency",
            "min latency",
            "conflict-free",
            "ordered CF",
        ],
        [],
    )
    window = list(range(max(0, s - (lambda_exponent - t)), s + 1))
    for family in range(s + 3):
        worst = 0
        all_cf = True
        ordered_cf = True
        scheme = ""
        for sigma in sigmas:
            for base in bases:
                vector = VectorAccess(base, sigma * (1 << family), length)
                plan = planner.plan(vector, mode="auto")
                scheme = plan.scheme
                run = system.run_plan(plan)
                worst = max(worst, run.latency)
                all_cf = all_cf and run.conflict_free
                ordered_plan = planner.plan(vector, mode="ordered")
                ordered_cf = ordered_cf and ordered_plan.conflict_free
        result.rows.append(
            [family, scheme, worst, minimum, all_cf, ordered_cf]
        )
        expected_cf = family in window
        result.check(
            f"family {family} conflict-free == {expected_cf}",
            expected_cf,
            all_cf,
        )
        if expected_cf:
            result.check(
                f"family {family} latency == T+L+1 = {minimum}",
                minimum,
                worst,
            )
    result.notes.append(
        f"window predicted by Theorem 1: x in [{window[0]}, {window[-1]}]; "
        "ordered access is conflict-free only for x = s"
    )
    return result


# -- E04: Section 3.1 bounded excess latency ------------------------------


def run_e04(
    lambda_exponent: int = 7, t: int = 3, s: int = 4
) -> ExperimentResult:
    """Subsequence-only ordering with q=2, q'=1: latency <= 2T + L."""
    config, planner, system = _spec_machine(
        t, "matched-xor", {"t": t, "s": s}, q=2, qp=1
    )
    length = 1 << lambda_exponent
    service = config.service_ratio
    bound = 2 * service + length

    result = ExperimentResult(
        "E04",
        f"Section 3.1: subsequence order, q=2, q'=1, L={length}",
        ["family x", "sigma", "base", "latency", "bound 2T+L", "excess"],
        [],
    )
    worst_excess = 0
    for family in range(s + 1):
        for sigma in (1, 3, 7):
            for base in (0, 5, 100, 12345):
                vector = VectorAccess(base, sigma * (1 << family), length)
                plan = planner.plan(vector, mode="subsequence")
                run = system.run_plan(plan)
                excess = run.latency - (service + length + 1)
                worst_excess = max(worst_excess, excess)
                if base == 0 and sigma in (1, 3):
                    result.rows.append(
                        [family, sigma, base, run.latency, bound, excess]
                    )
                result.check(
                    f"x={family} sigma={sigma} A1={base}: latency <= 2T+L",
                    True,
                    run.latency <= bound,
                )
    result.notes.append(
        f"worst observed excess over T+L+1: {worst_excess} cycles "
        f"(paper bound: at most T-1 = {service - 1})"
    )
    return result


# -- E05/E06: Figure 7 and Section 4.1 examples ---------------------------

#: Figure 7's in-italic example: lambda=5, A1=6, S=16 on (t=2, s=3, y=7);
#: subsequences are consecutive element groups landing in these modules.
PAPER_E05_SUBSEQ = [(2, 6, 10, 14), (0, 4, 8, 12)]
PAPER_E06_SUBSEQ = [(0, 12, 8, 4), (4, 0, 12, 8)]


def run_e05() -> ExperimentResult:
    """Figure 7 mapping table and both Section 4.1 worked examples."""
    config, _planner, _system = _spec_machine(
        2, "section-xor", {"t": 2, "s": 3, "y": 7}
    )
    mapping = config.mapping
    result = ExperimentResult(
        "E05",
        "Figure 7: section mapping t=2, m=4, s=3, y=7 + Section 4.1 examples",
        ["item", "value"],
        [],
    )

    # First rows of the layout: address -> module for 0..31.
    first_block = [mapping.module_of(address) for address in range(32)]
    expected_block = []
    for address in range(32):
        low = (address & 3) ^ ((address >> 3) & 3)
        expected_block.append(low)  # section field is 0 below address 128
    result.rows.append(
        ["modules of addresses 0..15", " ".join(map(str, first_block[:16]))]
    )
    result.check(
        "low-window layout matches Eq. (2)", expected_block, first_block
    )
    # Block structure: addresses 2**y .. 2**y + 3 live in section 1.
    sections = [mapping.section_of(128 + i) for i in range(4)]
    result.check("block at 2**y maps to section 1", [1, 1, 1, 1], sections)

    # Example 1 (x=4, sigma=1, A1=6, L=32): subsequences of Lemma 4.
    vector = VectorAccess(6, 16, 32)
    plan = build_subsequences(vector, w=7, t=2)
    observed = []
    for j in range(2):
        indices = plan.subsequence_indices(0, j)
        observed.append(
            tuple(mapping.module_of(vector.address_of(i)) for i in indices)
        )
        result.rows.append(
            [f"x=4 subsequence {j + 1} modules", " ".join(map(str, observed[-1]))]
        )
    result.check("Section 4.1 example 1 modules", PAPER_E05_SUBSEQ, observed)

    # Example 2 (x=6, sigma=3, A1=0): Px=8, two subsequences.
    vector2 = VectorAccess(0, 3 * 64, 8)
    plan2 = build_subsequences(vector2, w=7, t=2)
    observed2 = []
    for j in range(2):
        indices = plan2.subsequence_indices(0, j)
        observed2.append(
            tuple(mapping.module_of(vector2.address_of(i)) for i in indices)
        )
        result.rows.append(
            [
                f"x=6 subsequence {j + 1} modules",
                " ".join(map(str, observed2[-1])),
            ]
        )
    result.check("Section 4.1 example 2 modules", PAPER_E06_SUBSEQ, observed2)
    return result


# -- E07: Theorem 3 / unmatched window ------------------------------------


def run_e07(
    lambda_exponent: int = 7,
    t: int = 3,
    s: int = 4,
    y: int = 9,
) -> ExperimentResult:
    """Unmatched memory L=128, T=8, M=64: conflict-free families 0..9."""
    config, planner, system = _spec_machine(
        t, "section-xor", {"t": t, "s": s, "y": y}
    )
    length = 1 << lambda_exponent
    minimum = config.service_ratio + length + 1

    result = ExperimentResult(
        "E07",
        f"Theorem 3: unmatched window, L={length}, T={1 << t}, M=64, "
        f"s={s}, y={y}",
        ["family x", "scheme", "worst latency", "min latency", "conflict-free"],
        [],
    )
    for family in range(y + 3):
        worst = 0
        all_cf = True
        scheme = ""
        for sigma in (1, 3, 5):
            for base in (0, 6, 777, 54321):
                vector = VectorAccess(base, sigma * (1 << family), length)
                plan = planner.plan(vector, mode="auto")
                scheme = plan.scheme
                run = system.run_plan(plan)
                worst = max(worst, run.latency)
                all_cf = all_cf and run.conflict_free
        result.rows.append([family, scheme, worst, minimum, all_cf])
        expected_cf = family <= y
        result.check(
            f"family {family} conflict-free == {expected_cf}",
            expected_cf,
            all_cf,
        )
        if expected_cf:
            result.check(
                f"family {family} latency == {minimum}", minimum, worst
            )
    result.notes.append(
        "window predicted by Section 4.3: 0 <= x <= 2(lambda-t)+1 = 9"
    )
    return result


# -- E08: Section 5-A fractions -------------------------------------------


def run_e08(samples: int = 1500) -> ExperimentResult:
    """Fraction of conflict-free strides: analytic and Monte-Carlo."""
    result = ExperimentResult(
        "E08",
        "Section 5-A: fraction of conflict-free strides (lambda=7, t=3)",
        ["design", "analytic f", "analytic (float)", "monte carlo"],
        [],
    )
    matched_f = matched_design_fraction(7, 3)
    unmatched_f = unmatched_design_fraction(7, 3)

    _, matched_planner, _ = _spec_machine(3, "matched-xor", {"t": 3, "s": 4})
    _, unmatched_planner, _ = _spec_machine(
        3, "section-xor", {"t": 3, "s": 4, "y": 9}
    )
    matched_mc = monte_carlo_fraction(matched_planner, 128, samples=samples)
    unmatched_mc = monte_carlo_fraction(unmatched_planner, 128, samples=samples)

    result.rows.append(
        ["matched M=T=8", str(matched_f), float(matched_f), matched_mc]
    )
    result.rows.append(
        ["unmatched M=64", str(unmatched_f), float(unmatched_f), unmatched_mc]
    )
    result.check("matched fraction = 31/32", Fraction(31, 32), matched_f)
    result.check(
        "unmatched fraction = 1023/1024", Fraction(1023, 1024), unmatched_f
    )
    result.check_close(
        "matched Monte-Carlo near 31/32", float(matched_f), matched_mc, 0.02
    )
    result.check_close(
        "unmatched Monte-Carlo near 1023/1024",
        float(unmatched_f),
        unmatched_mc,
        0.01,
    )
    return result


# -- E09/E16: Section 5-B efficiency ---------------------------------------


def run_e09(length: int = 128) -> ExperimentResult:
    """Efficiency under uniform strides: model vs simulation, 4 schemes."""
    t = 3
    result = ExperimentResult(
        "E09",
        "Section 5-B: efficiency under a uniform stride distribution",
        ["scheme", "window w", "model eta", "simulated eta"],
        [],
    )

    schemes = [
        (
            "proposed, matched (s=4)",
            4,
            ("matched-xor", {"t": 3, "s": 4}),
            "auto",
            matched_proposed_efficiency(7, 3),
        ),
        (
            "proposed, unmatched (s=4, y=9)",
            9,
            ("section-xor", {"t": 3, "s": 4, "y": 9}),
            "auto",
            unmatched_proposed_efficiency(7, 3),
        ),
        (
            "ordered, matched (s=0)",
            0,
            ("interleaved", {"m": 3}),
            "ordered",
            matched_ordered_efficiency(3),
        ),
        (
            "ordered, unmatched (M=64, s=0)",
            3,
            ("interleaved", {"m": 6}),
            "ordered",
            unmatched_ordered_efficiency(6, 3),
        ),
    ]

    for name, window, (mapping_kind, mapping_params), mode, model in schemes:
        _, planner, system = _spec_machine(
            t, mapping_kind, mapping_params, q=8, qp=8
        )
        validations = validate_families(
            planner, system, window, length, max_family=window + t + 1, mode=mode
        )
        measured = weighted_measured_efficiency(validations, t, window)
        result.rows.append([name, window, float(model), measured])
        result.check_close(
            f"{name}: simulated eta matches model",
            float(model),
            measured,
            0.06,
        )

    result.check_close(
        "paper: proposed matched eta = 0.914",
        0.914,
        float(matched_proposed_efficiency(7, 3)),
        0.001,
    )
    result.check_close(
        "paper: proposed unmatched eta = 0.997",
        0.997,
        float(unmatched_proposed_efficiency(7, 3)),
        0.001,
    )
    result.check_close(
        "paper: ordered matched eta = 0.4",
        0.4,
        float(matched_ordered_efficiency(3)),
        0.001,
    )
    result.check_close(
        "paper: ordered unmatched eta = 0.84",
        0.84,
        float(unmatched_ordered_efficiency(6, 3)),
        0.003,
    )
    return result


def run_e16(length: int = 512) -> ExperimentResult:
    """Per-family steady-state cost: model 2**min(i,t) vs simulation."""
    t, s = 3, 4
    _, planner, system = _spec_machine(
        t, "matched-xor", {"t": t, "s": s}, q=8, qp=8
    )
    validations = validate_families(
        planner, system, window_high=s, length=length, max_family=s + t + 2
    )
    result = ExperimentResult(
        "E16",
        "Section 5-B model check: cycles/element per family (matched, s=4)",
        ["family x", "model", "measured", "conflict-free"],
        [],
    )
    for validation in validations:
        result.rows.append(
            [
                validation.family,
                validation.model_cycles_per_element,
                validation.measured_cycles_per_element,
                validation.conflict_free,
            ]
        )
        result.check_close(
            f"family {validation.family} cost matches model",
            validation.model_cycles_per_element,
            validation.measured_cycles_per_element,
            0.15 * validation.model_cycles_per_element + 0.1,
        )
    return result


# -- E10: Section 5-C short vectors ----------------------------------------


def run_e10(t: int = 3, s: int = 4) -> ExperimentResult:
    """Short vectors: composite (OOO prefix + ordered tail) vs all-ordered."""
    config, planner, system = _spec_machine(
        t, "matched-xor", {"t": t, "s": s}, q=4, qp=4
    )

    result = ExperimentResult(
        "E10",
        "Section 5-C: short/odd-length vectors, composite access (t=3, s=4)",
        [
            "length V",
            "family x",
            "prefix (OOO)",
            "composite latency",
            "ordered latency",
            "min latency",
        ],
        [],
    )
    for family, length in [
        (0, 96), (0, 100), (1, 48), (2, 72), (2, 30), (3, 40), (4, 24), (4, 100)
    ]:
        vector = VectorAccess(7, 3 * (1 << family), length)
        composite = plan_short_vector(planner, vector)
        ordered = planner.plan(vector, mode="ordered")
        composite_run = system.run_stream(composite.request_stream())
        ordered_run = system.run_plan(ordered)
        minimum = config.service_ratio + length + 1
        result.rows.append(
            [
                length,
                family,
                composite.prefix_length,
                composite_run.latency,
                ordered_run.latency,
                minimum,
            ]
        )
        # The OOO prefix is conflict-free; only the prefix/tail junction
        # and the short ordered tail can conflict, so the composite is at
        # worst a service-time's worth of cycles behind the better of the
        # two pure strategies (and usually ahead of all-ordered).
        service = config.service_ratio
        result.check(
            f"V={length} x={family}: composite within T-1 of all-ordered",
            True,
            composite_run.latency <= ordered_run.latency + service - 1,
        )
        chunk = 1 << (s + t - family)
        if length % chunk == 0:
            result.check(
                f"V={length} x={family}: full multiple of chunk is optimal",
                minimum,
                composite_run.latency,
            )
    result.notes.append(
        "prefix length is the paper's V = k * 2**(w+t-x); the tail is "
        "accessed in order"
    )
    return result


# -- E11: Section 5-H families vs length ------------------------------------


def run_e11(t: int = 3) -> ExperimentResult:
    """Conflict-free family count vs vector length (unmatched, m=2t)."""
    result = ExperimentResult(
        "E11",
        "Section 5-H: conflict-free families vs vector length (m=2t, t=3)",
        [
            "lambda",
            "L",
            "ordered (any length)",
            "proposed (any length)",
            "proposed (L=2^lambda)",
        ],
        [],
    )
    for lam in range(t, t + 7):
        sensitivity = families_vs_length(lam, t)
        result.rows.append(
            [
                lam,
                1 << lam,
                sensitivity.ordered_any_length,
                sensitivity.proposed_any_length,
                sensitivity.proposed_fixed_length,
            ]
        )
    expected = families_vs_length(7, t)
    result.check("ordered any-length families = t+1", 4, expected.ordered_any_length)
    result.check(
        "proposed fixed-length families = 2(lambda-t+1)",
        10,
        expected.proposed_fixed_length,
    )
    return result


# -- E12: ordering comparison ------------------------------------------------


def run_e12(lambda_exponent: int = 7, t: int = 3, s: int = 4) -> ExperimentResult:
    """Canonical vs subsequence vs conflict-free across the window."""
    length = 1 << lambda_exponent
    minimum = (1 << t) + length + 1
    result = ExperimentResult(
        "E12",
        f"Ordering comparison, matched L={length}, T={1 << t}, s={s}",
        [
            "family x",
            "canonical (q=1)",
            "canonical (q=2)",
            "subsequence (q=2)",
            "conflict-free (q=1)",
            "min",
        ],
        [],
    )
    _, planner, system_q1 = _spec_machine(
        t, "matched-xor", {"t": t, "s": s}, q=1, qp=1
    )
    _, _, system_q2 = _spec_machine(
        t, "matched-xor", {"t": t, "s": s}, q=2, qp=1
    )

    for family in range(s + 1):
        vector = VectorAccess(16, 3 * (1 << family), length)
        canonical = planner.plan(vector, mode="ordered")
        subsequence = planner.plan(vector, mode="subsequence")
        conflict_free = planner.plan(vector, mode="conflict_free")
        lat_canon_q1 = system_q1.run_plan(canonical).latency
        lat_canon_q2 = system_q2.run_plan(canonical).latency
        lat_subseq = system_q2.run_plan(subsequence).latency
        run_cf = system_q1.run_plan(conflict_free)
        result.rows.append(
            [
                family,
                lat_canon_q1,
                lat_canon_q2,
                lat_subseq,
                run_cf.latency,
                minimum,
            ]
        )
        result.check(
            f"family {family}: conflict-free order reaches minimum with q=1",
            minimum,
            run_cf.latency,
        )
        result.check(
            f"family {family}: subsequence order within 2T+L",
            True,
            lat_subseq <= 2 * (1 << t) + length,
        )
    return result


# -- E13: Section 5-E module cost ---------------------------------------------


def run_e13(lambda_exponent: int = 7, t: int = 3) -> ExperimentResult:
    """Module count vs conflict-free window (the squaring law)."""
    points = [
        ordered_design_point(t, t),
        ordered_design_point(2 * t, t),
        matched_design_point(lambda_exponent, t),
        unmatched_design_point(lambda_exponent, t),
    ]
    result = ExperimentResult(
        "E13",
        "Section 5-E: module cost of widening the window (lambda=7, t=3)",
        ["design", "modules", "CF families", "stride fraction", "eta"],
        [
            [
                point.name,
                point.modules,
                point.window_families,
                float(point.stride_fraction),
                float(point.efficiency),
            ]
            for point in points
        ],
    )
    matched = matched_design_point(lambda_exponent, t)
    unmatched = unmatched_design_point(lambda_exponent, t)
    result.check(
        "doubling the window squares the module count",
        matched.modules**2,
        unmatched.modules,
    )
    result.check(
        "window roughly doubles",
        2 * matched.window_families,
        unmatched.window_families,
    )
    return result


# -- E14: Section 5-F chaining ------------------------------------------------


def run_e14(lambda_exponent: int = 7, t: int = 3, s: int = 4) -> ExperimentResult:
    """Chained vs decoupled LOAD + VADD on the full machine."""
    length = 1 << lambda_exponent
    startup = 4
    result = ExperimentResult(
        "E14",
        f"Section 5-F: chaining LOAD->VADD, L={length}, T={1 << t}",
        ["mode", "total cycles", "analytic model"],
        [],
    )

    config, _planner, _system = _spec_machine(t, "matched-xor", {"t": t, "s": s})

    def build_e14_machine(chaining: bool) -> DecoupledVectorMachine:
        machine = DecoupledVectorMachine(
            config,
            register_length=length,
            execute_startup=startup,
            chaining=chaining,
        )
        machine.store.write_vector(0, 3, [float(i) for i in range(length)])
        machine.store.write_vector(65536, 1, [2.0] * length)
        return machine

    program = Program(
        [
            VLoad(1, 65536, 1),  # operand already loaded before the chain
            VLoad(2, 0, 3),  # the conflict-free strided load
            VAdd(3, 2, 1),  # chains on V2
        ]
    )

    for chaining in (False, True):
        machine = build_e14_machine(chaining)
        run = machine.run(program)
        pair_model = (
            chained_pair_latency(length, 1 << t, startup)
            if chaining
            else decoupled_pair_latency(length, 1 << t, startup)
        )
        first_load = run.timings[0].duration
        result.rows.append(
            [
                "chained" if chaining else "decoupled",
                run.total_cycles,
                first_load + pair_model,
            ]
        )
        result.check(
            f"{'chained' if chaining else 'decoupled'} total matches model",
            first_load + pair_model,
            run.total_cycles,
        )
    decoupled_total = result.rows[0][1]
    chained_total = result.rows[1][1]
    result.check(
        "chaining strictly faster", True, chained_total < decoupled_total
    )
    return result


# -- E15: hardware equivalence --------------------------------------------------


def run_e15(lambda_exponent: int = 7, t: int = 3, s: int = 4) -> ExperimentResult:
    """Figure 6 engine == abstract conflict-free plan, with budgets."""
    _, planner, _ = _spec_machine(t, "matched-xor", {"t": t, "s": s})
    result = ExperimentResult(
        "E15",
        "Figures 4-6: hardware models reproduce the abstract streams",
        ["family x", "streams equal", "latch peak", "latch capacity", "adds/elem"],
        [],
    )
    length = 1 << lambda_exponent
    for family in range(s + 1):
        vector = VectorAccess(777, 3 * (1 << family), length)
        plan = planner.plan(vector, mode="conflict_free")
        engine = Figure6Engine(planner, vector)
        equal = engine.request_stream() == plan.request_stream()
        report = engine.report()
        adds = (report.generator1_adds + report.generator2_adds) / length
        result.rows.append(
            [
                family,
                equal,
                report.latch_peak_occupancy,
                report.latch_capacity,
                adds,
            ]
        )
        result.check(f"family {family}: engine stream equals plan", True, equal)
        result.check(
            f"family {family}: latch budget 2*2**t respected",
            True,
            report.latch_peak_occupancy <= (1 << t),
        )
        result.check(
            f"family {family}: about two adds per element (addr+reg)",
            True,
            adds <= 2.0,
        )
    return result


def registry_entries() -> list[tuple[str, str, Callable[[], ExperimentResult]]]:
    """Declarative ``(experiment_id, title, runner)`` triples, report order.

    This is the hook ``repro.lab`` uses to wrap every runner as a job:
    the title comes from the runner's docstring (available without
    running anything), so a registry can be built cheaply and
    identically in every worker process.
    """
    entries = []
    for experiment_id in sorted(ALL_EXPERIMENTS):
        runner = ALL_EXPERIMENTS[experiment_id]
        doc = (runner.__doc__ or "").strip().splitlines()
        title = doc[0].rstrip(".") if doc else experiment_id
        entries.append((experiment_id, title, runner))
    return entries


ALL_EXPERIMENTS = {
    "E01": run_e01,
    "E02": run_e02,
    "E03": run_e03,
    "E04": run_e04,
    "E05": run_e05,
    "E07": run_e07,
    "E08": run_e08,
    "E09": run_e09,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
}
