"""Plain-text table rendering for the benchmark harness.

The benches print the same rows the paper reports; this module renders
them as aligned ASCII tables (and as Markdown for EXPERIMENTS.md).  No
third-party dependency — the output must be readable in a terminal and a
diff.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value) -> str:
    """Render one cell: floats to 4 significant figures, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Aligned ASCII table."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[col]) for col, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_markdown(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(format_cell(value) for value in row) + " |")
    return "\n".join(lines)
