"""Grid dedupe preview: duplicate design points flagged pre-submit.

The comparison ignores ``name``, which the lab's cache key does NOT:
two points identical except for their names each simulate separately
(and byte-identical duplicates collapse to one cached artifact).
Either way the batch burns quota re-measuring one machine and reads as
more coverage than it is, so ``DD401`` *warn* names each group of
identical points before anything is queued.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, canonical_json

from repro.check.findings import Finding

__all__ = ["dedupe_findings"]


def dedupe_findings(
    specs: list[tuple[ScenarioSpec, str]]
) -> list[Finding]:
    """``DD401`` findings over ``(spec, location)`` pairs."""
    groups: dict[str, list[str]] = {}
    for spec, location in specs:
        body = canonical_json(
            {
                key: value
                for key, value in spec.to_dict().items()
                if key != "name"
            }
        )
        groups.setdefault(body, []).append(location)
    findings = []
    for locations in groups.values():
        if len(locations) < 2:
            continue
        first, *rest = locations
        findings.append(
            Finding(
                "DD401",
                "warn",
                first,
                f"{len(locations)} design points are identical up to "
                f"their names ({', '.join(locations)}); each simulates "
                f"separately but measures the same machine",
            )
        )
    return findings
