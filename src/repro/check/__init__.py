"""Static conflict/hazard analysis for scenario specs and programs.

``repro check <spec.json|grid.json>`` runs four passes without a
single simulated cycle:

* **conflict analysis** (``CF1xx``) — closed-form conflict-free /
  conflict-prone verdicts from the paper's stride-family arithmetic,
  with the predicted ``T+L+1`` minimum access time where it applies;
* **program hazards** (``HZ2xx``) — RAW/WAR/WAW chains, dead writes,
  store/load span aliasing, and a static batchability report mirroring
  the decoupled machine's hazard-batching rules;
* **spec lint** (``SL3xx``) — unknown kinds/parameters, invalid
  geometry, degenerate grid axes;
* **grid dedupe** (``DD4xx``) — duplicate design points flagged before
  submission.

Findings speak one grammar — ``RULE_ID · severity · location ·
message`` — and the submit-time subset also guards the lab executor
and the serve API, so a bad submission is rejected with structured
diagnostics instead of burning simulation cycles.
"""

from repro.check.findings import CheckError, CheckReport, Finding
from repro.check.hazards import BatchBreak, BatchReport, predict_batches
from repro.check.runner import (
    check_document,
    check_path,
    require_submittable,
    submit_findings,
)

__all__ = [
    "BatchBreak",
    "BatchReport",
    "CheckError",
    "CheckReport",
    "Finding",
    "check_document",
    "check_path",
    "predict_batches",
    "require_submittable",
    "submit_findings",
]
