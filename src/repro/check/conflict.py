"""Conflict analysis: closed-form verdicts from the paper's math.

For every strided access a spec declares, the planner's arithmetic
(stride family *x*, matched window of Theorem 1, unmatched windows of
Theorem 3) decides conflict-freedom without running the kernel:

* ``CF101`` *info* — conflict-free; the predicted minimum access time
  ``T + L + 1`` is quoted, and for the XOR mappings the window
  membership that guarantees it.
* ``CF102`` *warn* — conflict-prone under a conflict-tolerant mode
  (``auto`` / ``ordered``): the run completes, but slower than the
  ``T + L + 1`` bound.
* ``CF103`` *info* — indexed access: no closed-form verdict exists;
  scheduling happens at run time.
* ``CF104`` *error* — the drive demands a conflict-free order
  (``conflict_free`` / ``subsequence`` modes, the ``figure6`` engine)
  that the mapping cannot provide for this stride; the run would die
  with an :class:`~repro.errors.OrderingError`.
* ``CF105`` *warn* — a program's memory instruction is conflict-prone
  under the machine's plan mode.

The verdict source is :attr:`AccessPlan.conflict_free` — pure static
arithmetic over the planned request order — which the consistency
suite pins against kernel-measured conflict-freedom.
"""

from __future__ import annotations

from typing import cast

from repro.core.planner import AccessPlan, AccessPlanner, PlanMode
from repro.core.vector import VectorAccess
from repro.errors import OrderingError, ReproError, VectorSpecError
from repro.processor.isa import VLoad, VStore
from repro.scenarios.components import (
    DecoupledDrive,
    Figure6Drive,
    PlannerDrive,
    ScenarioProgram,
    Workload,
)
from repro.scenarios.spec import ScenarioSpec

from repro.check.findings import Finding

__all__ = ["analyze_conflicts"]

#: Planner modes that tolerate conflicts (fall back / keep going).
_TOLERANT_MODES = frozenset({"auto", "ordered"})

#: Cap on per-instruction CF105 findings for one program.
_PROGRAM_FINDING_CAP = 8


def analyze_conflicts(
    spec: ScenarioSpec,
    config,
    *,
    workload: Workload | None,
    scenario_program: ScenarioProgram | None,
    drive,
    register_length: int,
    location: str,
) -> list[Finding]:
    """Closed-form conflict findings for one buildable spec."""
    planner = AccessPlanner(config.mapping, config.t)
    if scenario_program is not None:
        plan_mode = cast(
            PlanMode,
            drive.plan_mode if isinstance(drive, DecoupledDrive) else "auto",
        )
        return _program_findings(
            scenario_program, planner, plan_mode, register_length, location
        )
    if workload is None:
        return []
    mode, forced = _drive_mode(drive)
    findings = []
    for index, access in enumerate(workload.accesses()):
        where = f"{location}.workload[{index}]"
        if not isinstance(access, VectorAccess):
            findings.append(
                Finding(
                    "CF103",
                    "info",
                    where,
                    f"indexed access ({access.length} elements): no "
                    "closed-form conflict verdict; the scheduler resolves "
                    "module order at run time",
                )
            )
            continue
        findings.append(
            _vector_finding(access, planner, config, mode, forced, where)
        )
    return findings


def _drive_mode(drive) -> tuple[PlanMode, bool]:
    """The plan mode a drive uses and whether it *requires* CF order.

    The drives validate their mode strings at construction, so the
    casts narrow to values ``AccessPlanner.plan`` accepts.
    """
    if isinstance(drive, PlannerDrive):
        return cast(PlanMode, drive.mode), drive.mode not in _TOLERANT_MODES
    if isinstance(drive, Figure6Drive):
        return "conflict_free", True
    if isinstance(drive, DecoupledDrive):
        return (
            cast(PlanMode, drive.plan_mode),
            drive.plan_mode not in _TOLERANT_MODES,
        )
    return "auto", False


def _vector_finding(
    access: VectorAccess,
    planner: AccessPlanner,
    config,
    mode: PlanMode,
    forced: bool,
    where: str,
) -> Finding:
    """One CF101/CF102/CF104 verdict for a strided access."""
    shape = (
        f"stride {access.stride} (family x={access.family}), "
        f"length {access.length}"
    )
    geometry = (
        f"M={config.module_count} modules, T={config.service_ratio}, "
        f"ports={config.ports}"
    )
    try:
        plan = planner.plan(access, mode=mode)
    except OrderingError as error:
        return Finding(
            "CF104",
            "error",
            where,
            f"{shape} cannot be ordered conflict-free under mode "
            f"{mode!r} ({geometry}): {error}",
        )
    if plan.conflict_free:
        return Finding(
            "CF101",
            "info",
            where,
            f"{shape} is conflict-free via scheme {plan.scheme!r} "
            f"({geometry}); predicted minimum access time "
            f"T+L+1 = {plan.minimum_latency} cycles"
            f"{_window_note(access, config)}",
        )
    severity = "error" if forced else "warn"
    return Finding(
        "CF102",
        severity,
        where,
        f"{shape} is conflict-prone under mode {mode!r} ({geometry}): "
        f"the ordered request stream revisits a busy module within "
        f"T={config.service_ratio} cycles, so latency will exceed the "
        f"T+L+1 = {plan.minimum_latency} minimum",
    )


def _window_note(access: VectorAccess, config) -> str:
    """Theorem-1/3 window membership, where the geometry defines one."""
    from repro.core.windows import matched_window, unmatched_windows
    from repro.mappings.linear import MatchedXorMapping
    from repro.mappings.section import SectionXorMapping

    mapping = config.mapping
    try:
        lam = access.lambda_exponent
        if isinstance(mapping, SectionXorMapping):
            low, high = unmatched_windows(lam, mapping.t, mapping.s, mapping.y)
            if low.contains(access.family) or high.contains(access.family):
                return (
                    f"; family lies in a Theorem-3 window "
                    f"[{low.low}..{low.high}] ∪ [{high.low}..{high.high}]"
                )
        elif isinstance(mapping, MatchedXorMapping):
            window = matched_window(lam, mapping.t, mapping.s)
            if window.contains(access.family):
                return (
                    f"; family lies in the Theorem-1 window "
                    f"[{window.low}..{window.high}]"
                )
    except (ReproError, VectorSpecError, AttributeError):
        pass
    return ""


def _program_findings(
    scenario_program: ScenarioProgram,
    planner: AccessPlanner,
    mode: PlanMode,
    register_length: int,
    location: str,
) -> list[Finding]:
    """CF105 verdicts for a program's strided memory instructions."""
    findings = []
    prone = 0
    for position, instruction in enumerate(scenario_program.program):
        if not isinstance(instruction, (VLoad, VStore)):
            continue
        length = instruction.length or register_length
        access = VectorAccess(instruction.base, instruction.stride, length)
        plan = _plan_or_none(planner, access, mode)
        if plan is None or not plan.conflict_free:
            prone += 1
            if prone <= _PROGRAM_FINDING_CAP:
                findings.append(
                    Finding(
                        "CF105",
                        "warn",
                        f"{location}.program[{position}]",
                        f"{instruction.mnemonic} stride {access.stride} "
                        f"(family x={access.family}), length {length} is "
                        f"conflict-prone under plan mode {mode!r}; the "
                        f"access unit will stall past the T+L+1 minimum",
                    )
                )
    if prone > _PROGRAM_FINDING_CAP:
        findings.append(
            Finding(
                "CF105",
                "warn",
                f"{location}.program",
                f"{prone - _PROGRAM_FINDING_CAP} further memory "
                f"instructions are conflict-prone (capped at "
                f"{_PROGRAM_FINDING_CAP} per program)",
            )
        )
    return findings


def _plan_or_none(
    planner: AccessPlanner, access: VectorAccess, mode: PlanMode
) -> AccessPlan | None:
    try:
        return planner.plan(access, mode=mode)
    except OrderingError:
        return None
