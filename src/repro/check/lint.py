"""Spec lint: registry and shape checks that need no simulation.

* ``SL301`` *error* — unknown component kind (with close-match hints);
* ``SL302`` *error* — unknown, reserved, or missing factory parameter;
* ``SL305`` *warn* — a grid axis lists the same value twice (every
  repeat expands to an identical design point);
* ``SL306`` *error* — a program spec whose drive is not ``decoupled``.

The remaining ``SL3xx`` rules live in the runner, which owns parsing
(``SL304``) and component building (``SL303``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.registry import (
    MAPPING,
    PROGRAM,
    factory_parameters,
    spec_components,
    validate_kind,
)
from repro.scenarios.spec import ScenarioSpec

from repro.check.findings import Finding

__all__ = ["lint_grid_axes", "lint_spec"]

#: Context names :func:`repro.scenarios.registry.build` injects per
#: category; a spec parameter with one of these names is rejected as
#: shadowing before the factory ever runs.
_CONTEXT_NAMES: dict[str, frozenset[str]] = {
    MAPPING: frozenset({"address_bits"}),
    PROGRAM: frozenset({"register_length"}),
}


def lint_spec(spec: ScenarioSpec, *, location: str) -> list[Finding]:
    """Registry-level findings for one spec (no components built)."""
    findings = []
    for category, component in spec_components(spec):
        where = f"{location}.{category}"
        try:
            validate_kind(category, component.kind)
        except ConfigurationError as error:
            findings.append(Finding("SL301", "error", where, str(error)))
            continue
        findings.extend(
            _parameter_findings(category, component, where)
        )
    if spec.program is not None and spec.drive.kind != "decoupled":
        findings.append(
            Finding(
                "SL306",
                "error",
                f"{location}.drive",
                f"scenario programs run on the decoupled machine; set "
                f"drive kind to 'decoupled' (got {spec.drive.kind!r})",
            )
        )
    return findings


def _parameter_findings(
    category: str, component, where: str
) -> list[Finding]:
    signature = factory_parameters(category, component.kind)
    if signature is None:
        return []  # **kwargs factory: any name goes
    accepted, required = signature
    reserved = _CONTEXT_NAMES.get(category, frozenset())
    provided = frozenset(component.param_dict())
    findings = []
    for name in sorted(provided & reserved):
        findings.append(
            Finding(
                "SL302",
                "error",
                where,
                f"parameter {name!r} shadows a reserved context name of "
                f"{category} kind {component.kind!r}; the scenario layer "
                f"supplies it",
            )
        )
    for name in sorted(provided - accepted):
        close = sorted(accepted - reserved - provided)
        hint = f" (accepted: {', '.join(close)})" if close else ""
        findings.append(
            Finding(
                "SL302",
                "error",
                where,
                f"unknown parameter {name!r} for {category} kind "
                f"{component.kind!r}{hint}",
            )
        )
    for name in sorted(required - reserved - provided):
        findings.append(
            Finding(
                "SL302",
                "error",
                where,
                f"missing required parameter {name!r} for {category} "
                f"kind {component.kind!r}",
            )
        )
    return findings


def lint_grid_axes(grid: ScenarioGrid, *, location: str) -> list[Finding]:
    """``SL305``: axis values that repeat within one axis."""
    findings = []
    for path, values in grid.axes:
        seen = []
        for value in values:
            if value in seen:
                findings.append(
                    Finding(
                        "SL305",
                        "warn",
                        f"{location}.axes[{path}]",
                        f"axis {path!r} lists value {value!r} more than "
                        f"once; the repeats expand to identical design "
                        f"points",
                    )
                )
                break
            seen.append(value)
    return findings
