"""The findings grammar every analysis pass speaks.

A finding is one diagnostic line::

    RULE_ID · severity · location · message

``rule_id`` namespaces group by pass: ``CF1xx`` conflict analysis,
``HZ2xx`` program hazards, ``SL3xx`` spec lint, ``DD4xx`` grid dedupe.
Severities are ``error`` (the spec will fail or lie), ``warn`` (it will
run but not the way the author probably hopes), and ``info`` (verdicts
and summaries worth reading).

:class:`CheckReport` aggregates findings for one document and owns the
exit-code contract (``1`` iff any error).  :class:`CheckError` carries
findings across the lab/serve boundary so a rejected submission still
ships the structured diagnostics that explain it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "SEVERITIES",
    "CheckError",
    "CheckReport",
    "Finding",
]

#: Every severity a finding may carry, strongest first.
SEVERITIES: tuple[str, ...] = ("error", "warn", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule, a severity, a place, and a sentence."""

    rule_id: str
    severity: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"finding severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    def render(self) -> str:
        """The canonical single-line form."""
        return (
            f"{self.rule_id} · {self.severity} · {self.location} · "
            f"{self.message}"
        )

    def to_dict(self) -> dict:
        """A JSON-ready mapping (``--json`` output, serve error bodies)."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }


@dataclass(frozen=True)
class CheckReport:
    """All findings for one checked document."""

    findings: tuple[Finding, ...]

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "warn")

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    @property
    def exit_code(self) -> int:
        """``repro check``'s exit status for this document."""
        return 1 if self.has_errors else 0

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def render(self) -> str:
        """Every finding, one per line, in pass order."""
        return "\n".join(f.render() for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "errors": self.count("error"),
            "warnings": self.count("warn"),
            "infos": self.count("info"),
            "exit_code": self.exit_code,
        }


class CheckError(ReproError):
    """A submission rejected by static checks.

    Carries the error-severity findings so front doors (lab executor,
    serve schemas) can surface structured diagnostics, not just the
    ``TypeName: message`` summary line.
    """

    def __init__(self, message: str, findings: tuple[Finding, ...] = ()):
        super().__init__(message)
        self.findings = tuple(findings)
