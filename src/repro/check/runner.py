"""The check pipeline: parse → lint → build → analyze → report.

:func:`check_document` accepts exactly the document shapes
``repro scenario run`` and ``POST /v1/runs`` accept — one spec, one
grid, or a list of either — and never raises on bad input: parse and
build failures become ``SL303``/``SL304`` findings so one malformed
entry cannot hide the diagnostics for the rest.

:func:`require_submittable` is the front-door subset (spec lint plus
grid dedupe, no simulation objects built) that the lab executor and the
serve schemas run at submit time; error findings there become a
:class:`~repro.check.findings.CheckError` carrying the structured
findings across the boundary.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.scenarios.components import DEFAULT_PROGRAM_REGISTER_LENGTH
from repro.scenarios.facade import build_config, build_workload
from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.registry import DRIVE, PROGRAM, build
from repro.scenarios.spec import ScenarioSpec

from repro.check.conflict import analyze_conflicts
from repro.check.dedupe import dedupe_findings
from repro.check.findings import CheckError, CheckReport, Finding
from repro.check.hazards import analyze_program
from repro.check.lint import lint_grid_axes, lint_spec

__all__ = [
    "check_document",
    "check_path",
    "require_submittable",
    "submit_findings",
]


def check_path(path) -> CheckReport:
    """Check one spec/grid file on disk."""
    path = Path(path)
    return check_document(path.read_text(), source=str(path))


def check_document(text: str, *, source: str = "<input>") -> CheckReport:
    """Run every analysis pass over one JSON document."""
    findings: list[Finding] = []
    located: list[tuple[ScenarioSpec, str]] = []
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        findings.append(
            Finding(
                "SL304",
                "error",
                source,
                f"invalid scenario JSON: {error}",
            )
        )
        return CheckReport(tuple(findings))
    documents = data if isinstance(data, list) else [data]
    for document in documents:
        findings.extend(_collect(document, source, located))
    findings.extend(dedupe_findings(located))
    for spec, location in located:
        findings.extend(_check_spec(spec, location))
    return CheckReport(tuple(findings))


def _collect(
    document, source: str, located: list[tuple[ScenarioSpec, str]]
) -> list[Finding]:
    """Parse one document entry into located specs (SL304/SL305)."""
    findings: list[Finding] = []
    if isinstance(document, dict) and "base" in document:
        try:
            grid = ScenarioGrid.from_dict(document)
            expanded = grid.expand()
        except ReproError as error:
            findings.append(
                Finding("SL304", "error", source, str(error))
            )
            return findings
        findings.extend(lint_grid_axes(grid, location=source))
        for spec in expanded:
            located.append((spec, _location(source, spec, len(located))))
        return findings
    try:
        spec = ScenarioSpec.from_dict(document)
    except ReproError as error:
        findings.append(Finding("SL304", "error", source, str(error)))
        return findings
    located.append((spec, _location(source, spec, len(located))))
    return findings


def _location(source: str, spec: ScenarioSpec, index: int) -> str:
    return f"{source}:{spec.name or f'spec[{index}]'}"


def _check_spec(spec: ScenarioSpec, location: str) -> list[Finding]:
    """Lint one spec; when clean, build it and run the deep passes."""
    findings = lint_spec(spec, location=location)
    if any(finding.severity == "error" for finding in findings):
        return findings
    register_length = DEFAULT_PROGRAM_REGISTER_LENGTH
    try:
        drive = build(DRIVE, spec.drive)
        workload = (
            build_workload(spec) if spec.workload is not None else None
        )
        config = build_config(spec, workload)
        scenario_program = None
        if spec.program is not None:
            register_length = (
                getattr(drive, "register_length", None)
                or DEFAULT_PROGRAM_REGISTER_LENGTH
            )
            scenario_program = build(
                PROGRAM, spec.program, register_length=register_length
            )
    except ReproError as error:
        findings.append(Finding("SL303", "error", location, str(error)))
        return findings
    findings.extend(
        analyze_conflicts(
            spec,
            config,
            workload=workload,
            scenario_program=scenario_program,
            drive=drive,
            register_length=register_length,
            location=location,
        )
    )
    if scenario_program is not None:
        memory_streams = (
            getattr(drive, "memory_streams", None) or config.ports
        )
        findings.extend(
            analyze_program(
                scenario_program.program,
                memory_streams=memory_streams,
                register_length=register_length,
                location=location,
            )
        )
    return findings


def submit_findings(
    specs, *, source: str = "submit"
) -> list[Finding]:
    """The front-door passes: spec lint plus dedupe, nothing built."""
    findings: list[Finding] = []
    located: list[tuple[ScenarioSpec, str]] = []
    for index, spec in enumerate(specs):
        location = f"{source}:{spec.name or f'spec[{index}]'}"
        findings.extend(lint_spec(spec, location=location))
        located.append((spec, location))
    findings.extend(dedupe_findings(located))
    return findings


def require_submittable(
    specs, *, source: str = "submit"
) -> list[Finding]:
    """Submit-time gate: raise on error findings, return the warnings."""
    findings = submit_findings(specs, source=source)
    errors = [f for f in findings if f.severity == "error"]
    if errors:
        raise CheckError(
            f"{len(errors)} static check error(s) in submitted "
            f"scenarios; first: {errors[0].render()}",
            findings=tuple(errors),
        )
    return [f for f in findings if f.severity == "warn"]
