"""Program hazard analysis: def-use chains and static batchability.

Two layers:

* :func:`predict_batches` mirrors the decoupled machine's batching
  rules (:mod:`repro.processor.decoupled`) statically — the same
  hazard-drain test and the same three join refusals (stream capacity,
  operand readiness, store-span overlap), applied to register names and
  address arithmetic instead of cycle counts.  The hazard test suite
  pins its boundaries against the machine's actual runtime batches.
* :func:`analyze_program` renders that report, plus classic def-use
  findings, as the ``HZ2xx`` rules:

  - ``HZ201`` *info* — batchability summary (N memory ops → K batches);
  - ``HZ202`` *info* — why each batch broke, per boundary;
  - ``HZ203`` *info* — RAW/WAR/WAW dependency counts;
  - ``HZ204`` *warn* — dead register write (overwritten before read);
  - ``HZ205`` *info* — store/load address spans that overlap;
  - ``HZ206`` *info* — register written but never read.

One static approximation is deliberate: an operand produced by an
*execute* instruction is assumed to arrive after the open batch's start
(the execute pipeline's ``startup + length`` latency lands after the
batch opens in every program shape the machine ships), so the analyzer
closes the batch exactly where the machine's readiness rule does.
Operands produced by loads in earlier batches are always ready — a
load's end cycle precedes the next batch's start by construction.
Gather/scatter address spans are data-dependent, so a pair involving a
store conservatively counts as overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.processor.isa import VGather, VLoad, VScatter, VStore
from repro.processor.program import Program, def_use_events

from repro.check.findings import Finding

__all__ = [
    "BatchBreak",
    "BatchReport",
    "analyze_program",
    "predict_batches",
]

#: Cap on per-rule findings for one program.
_FINDING_CAP = 8


@dataclass(frozen=True)
class BatchBreak:
    """Why the open batch closed before instruction ``position``."""

    position: int
    reason: str


@dataclass(frozen=True)
class BatchReport:
    """The predicted batch structure of one program."""

    batches: tuple[tuple[int, ...], ...]
    breaks: tuple[BatchBreak, ...]
    memory_streams: int

    @property
    def memory_instruction_count(self) -> int:
        return sum(len(batch) for batch in self.batches)

    @property
    def peak_concurrency(self) -> int:
        return max((len(batch) for batch in self.batches), default=0)


@dataclass(frozen=True)
class _StaticAccess:
    """What the join rules need to know about one memory instruction."""

    position: int
    mnemonic: str
    span: tuple[int, int] | None
    is_store_op: bool
    late_operands: tuple[int, ...]


def predict_batches(
    program: Program, *, memory_streams: int, register_length: int
) -> BatchReport:
    """The batch partition the decoupled machine will form.

    Applies the machine's rules in its order: the register-hazard drain
    first (any instruction whose operands touch the open batch's
    registers closes it), then — for memory instructions — stream
    capacity, operand readiness, and store-span disjointness.
    """
    batches: list[tuple[int, ...]] = []
    breaks: list[BatchBreak] = []
    batch: list[_StaticAccess] = []
    pending_reads: set[int] = set()
    pending_writes: set[int] = set()
    #: Register -> what last wrote it ("load" covers gathers too);
    #: registers never written are machine-predefined, ready at cycle 0.
    producer: dict[int, str] = {}

    def close(position: int | None, reason: str | None) -> None:
        if not batch:
            return
        batches.append(tuple(member.position for member in batch))
        if position is not None and reason is not None:
            breaks.append(BatchBreak(position, reason))
        batch.clear()
        pending_reads.clear()
        pending_writes.clear()

    for position, instruction, reads, writes in def_use_events(program):
        if batch and (
            reads & pending_writes
            or writes & (pending_writes | pending_reads)
        ):
            hazard = sorted(
                (reads & pending_writes)
                | (writes & (pending_writes | pending_reads))
            )
            close(
                position,
                f"register hazard on "
                f"{', '.join(f'V{r}' for r in hazard)} drains the batch",
            )
        if instruction.is_memory:
            access = _static_access(
                position, instruction, register_length, producer
            )
            if batch:
                refusal = _join_refusal(access, batch, memory_streams)
                if refusal is not None:
                    close(position, refusal)
            batch.append(access)
            pending_reads.update(reads)
            pending_writes.update(writes)
        for register in writes:
            producer[register] = "load" if instruction.is_memory else "execute"
    close(None, None)
    return BatchReport(tuple(batches), tuple(breaks), memory_streams)


def _static_access(
    position: int, instruction, register_length: int, producer: dict[int, str]
) -> _StaticAccess:
    if isinstance(instruction, (VLoad, VStore)):
        length = instruction.length or register_length
        addresses = [
            instruction.base + i * instruction.stride for i in range(length)
        ]
        span = (min(addresses), max(addresses))
    else:
        span = None  # gather/scatter addresses are data-dependent
    if isinstance(instruction, VStore):
        operands = (instruction.src,)
    elif isinstance(instruction, VGather):
        operands = (instruction.index,)
    elif isinstance(instruction, VScatter):
        operands = (instruction.src, instruction.index)
    else:
        operands = ()
    late = tuple(
        register
        for register in operands
        if producer.get(register) == "execute"
    )
    return _StaticAccess(
        position,
        instruction.mnemonic,
        span,
        isinstance(instruction, (VStore, VScatter)),
        late,
    )


def _join_refusal(
    access: _StaticAccess, batch: list[_StaticAccess], memory_streams: int
) -> str | None:
    """The machine's ``_can_join`` rules, checked in its order."""
    if len(batch) >= memory_streams:
        return (
            f"the batch already occupies all "
            f"memory_streams={memory_streams} stream slots"
        )
    if access.late_operands:
        names = ", ".join(f"V{r}" for r in access.late_operands)
        return (
            f"operand {names} comes from the execute pipeline and is "
            f"not ready when the batch starts"
        )
    for member in batch:
        if not (access.is_store_op or member.is_store_op):
            continue
        if access.span is None or member.span is None:
            return (
                f"{access.mnemonic} at {access.position} has a "
                f"data-dependent address span; with a store in the pair "
                f"it must be assumed to overlap instruction "
                f"{member.position}"
            )
        if not (
            access.span[1] < member.span[0]
            or member.span[1] < access.span[0]
        ):
            return (
                f"address span [{access.span[0]}..{access.span[1]}] "
                f"overlaps instruction {member.position}'s span "
                f"[{member.span[0]}..{member.span[1]}] with a store "
                f"involved"
            )
    return None


def analyze_program(
    program: Program,
    *,
    memory_streams: int,
    register_length: int,
    location: str,
) -> list[Finding]:
    """Every ``HZ2xx`` finding for one program."""
    findings = []
    report = predict_batches(
        program,
        memory_streams=memory_streams,
        register_length=register_length,
    )
    findings.append(
        Finding(
            "HZ201",
            "info",
            f"{location}.program",
            f"{report.memory_instruction_count} memory instruction(s) "
            f"form {len(report.batches)} batch(es) under "
            f"memory_streams={memory_streams}; peak stream concurrency "
            f"{report.peak_concurrency}",
        )
    )
    mnemonics = {
        position: instruction.mnemonic
        for position, instruction in enumerate(program)
    }
    for break_ in report.breaks[:_FINDING_CAP]:
        findings.append(
            Finding(
                "HZ202",
                "info",
                f"{location}.program[{break_.position}]",
                f"batch break before {mnemonics[break_.position]}: "
                f"{break_.reason}",
            )
        )
    if len(report.breaks) > _FINDING_CAP:
        findings.append(
            Finding(
                "HZ202",
                "info",
                f"{location}.program",
                f"{len(report.breaks) - _FINDING_CAP} further batch "
                f"breaks (capped at {_FINDING_CAP} per program)",
            )
        )
    findings.extend(_def_use_findings(program, location))
    findings.extend(_span_findings(program, register_length, location))
    return findings


def _def_use_findings(program: Program, location: str) -> list[Finding]:
    """HZ203 dependency counts, HZ204 dead writes, HZ206 unread."""
    raw = war = waw = 0
    last_def: dict[int, int] = {}
    read_since_def: dict[int, bool] = {}
    dead: list[tuple[int, int, int]] = []  # (register, def, redef)
    for position, _instruction, reads, writes in def_use_events(program):
        for register in sorted(reads):
            if register in last_def:
                raw += 1
                read_since_def[register] = True
        for register in sorted(writes):
            if register in last_def:
                if read_since_def.get(register):
                    war += 1
                else:
                    waw += 1
                    dead.append((register, last_def[register], position))
            last_def[register] = position
            read_since_def[register] = False
    findings = [
        Finding(
            "HZ203",
            "info",
            f"{location}.program",
            f"register dependencies: {raw} RAW, {war} WAR, {waw} WAW",
        )
    ]
    for register, defined, redefined in dead[:_FINDING_CAP]:
        findings.append(
            Finding(
                "HZ204",
                "warn",
                f"{location}.program[{defined}]",
                f"dead write: V{register} written at instruction "
                f"{defined} is overwritten at instruction {redefined} "
                f"before any read",
            )
        )
    never_read = sorted(
        (register, defined)
        for register, defined in last_def.items()
        if not read_since_def.get(register)
    )
    for register, defined in never_read[:_FINDING_CAP]:
        findings.append(
            Finding(
                "HZ206",
                "info",
                f"{location}.program[{defined}]",
                f"V{register} (last written at instruction {defined}) "
                f"is never read afterwards; fine for final stores' "
                f"sources, wasted work otherwise",
            )
        )
    return findings


def _span_findings(
    program: Program, register_length: int, location: str
) -> list[Finding]:
    """HZ205: strided store/load address spans that overlap."""
    spans: list[tuple[int, str, bool, tuple[int, int]]] = []
    for position, instruction in enumerate(program):
        if not isinstance(instruction, (VLoad, VStore)):
            continue
        length = instruction.length or register_length
        low = min(
            instruction.base, instruction.base + (length - 1) * instruction.stride
        )
        high = max(
            instruction.base, instruction.base + (length - 1) * instruction.stride
        )
        spans.append(
            (
                position,
                instruction.mnemonic,
                isinstance(instruction, VStore),
                (low, high),
            )
        )
    findings = []
    overlaps = 0
    for i, (pos_a, mn_a, store_a, span_a) in enumerate(spans):
        for pos_b, mn_b, store_b, span_b in spans[i + 1 :]:
            if not (store_a or store_b):
                continue
            if span_a[1] < span_b[0] or span_b[1] < span_a[0]:
                continue
            overlaps += 1
            if overlaps <= _FINDING_CAP:
                findings.append(
                    Finding(
                        "HZ205",
                        "info",
                        f"{location}.program[{pos_b}]",
                        f"{mn_b} at {pos_b} "
                        f"[{span_b[0]}..{span_b[1]}] overlaps "
                        f"{mn_a} at {pos_a} "
                        f"[{span_a[0]}..{span_a[1]}]; the machine "
                        f"serialises such pairs within a batch",
                    )
                )
    if overlaps > _FINDING_CAP:
        findings.append(
            Finding(
                "HZ205",
                "info",
                f"{location}.program",
                f"{overlaps - _FINDING_CAP} further store/load span "
                f"overlaps (capped at {_FINDING_CAP} per program)",
            )
        )
    return findings
