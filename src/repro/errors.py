"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
violations of the paper's preconditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A memory-system or mapping parameter is inconsistent.

    Raised when geometry parameters violate the paper's model, e.g. a
    module count that is not a power of two, ``s < t`` for the matched
    linear mapping of Eq. (1), or ``y < s + t`` for the section mapping of
    Eq. (2).
    """


class VectorSpecError(ReproError):
    """A vector access request is malformed (zero stride, bad length...)."""


class OrderingError(ReproError):
    """A request ordering cannot be built for the given stride family.

    The out-of-order schemes of Sections 3 and 4 require the vector length
    to be a multiple of the subsequence chunk (``L = k * Px``).  When that
    precondition fails the planner either falls back to ordered access or,
    if the caller explicitly asked for a reordered access, raises this.
    """


class HardwareModelError(ReproError):
    """A register-level hardware model violated one of its structural
    budgets (latch count, one-add-per-cycle, queue capacity)."""


class SimulationError(ReproError):
    """The cycle-accurate memory simulator detected an inconsistency,
    e.g. a request stream entry for an element index outside the vector."""


class RegisterFileError(ReproError):
    """Illegal access to a vector register file, e.g. out-of-order delivery
    into a FIFO-organized register (Section 5-D) or reading an element that
    has not been written."""


class ProgramError(ReproError):
    """A vector program is malformed (undefined register, bad operands).

    When the program came from assembler text, ``line_number`` and
    ``source_line`` locate the offending statement; both are ``None``
    for programs built directly from the instruction dataclasses.
    """

    def __init__(
        self,
        message: str,
        *,
        line_number: int | None = None,
        source_line: str | None = None,
    ):
        super().__init__(message)
        self.line_number = line_number
        self.source_line = source_line
