"""Struct-of-arrays batched single-stream memory simulation.

One *run* is what :meth:`repro.memory.system.MemorySystem.run_plan`
hands the kernel: a single request stream (module per request, in issue
order) against one memory geometry.  A batch holds the state of many
runs in flat preallocated lists laid out point-major — run ``r`` owns
the module slice ``[moff[r], moff[r+1])`` and the request slice
``[roff[r], roff[r+1])`` of every array, so the design-point index is
the trailing axis of each logical (module × point) / (request × point)
array.  Runs never interact; a shared event-skip horizon (a min-heap of
wake cycles) always resumes the run with the earliest pending event, so
one pass finishes the whole batch no matter how unevenly cycle counts
are distributed across points.

The per-cycle phase order replicates the single-stream specialisation
of :meth:`repro.memory.kernel.MemoryKernel._simulate` exactly — issue,
oldest-first delivery, module start-then-finish, event skip — and
``tests/batch/`` drives both against each other field-for-field.  What
makes it faster than the general kernel: no per-request record objects,
no stream normalisation or tracer plumbing, and module queues stored as
index windows over the module's precomputed request sequence (requests
enter and leave each module strictly in stream order, so a queue is a
pair of counters, not a deque).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.batch._accel import module_histogram
from repro.errors import SimulationError

__all__ = ["SoaRunSpec", "SoaRunResult", "simulate_runs"]


@dataclass(frozen=True)
class SoaRunSpec:
    """One single-stream run: the module of each request, in issue order,
    plus the memory geometry it runs against."""

    modules: tuple[int, ...]
    service_time: int
    module_count: int
    input_capacity: int
    output_capacity: int
    ports: int


@dataclass(frozen=True)
class SoaRunResult:
    """One run's aggregate outcome, attribute-compatible with
    :class:`repro.memory.system.AccessResult` for everything the
    scenario aggregation reads (latency, stalls, waits, busy cycles,
    conflict-freedom, element count)."""

    latency: int
    issue_stall_cycles: int
    wait_count: int
    bus_held_result: bool
    element_count: int
    module_busy_cycles: tuple[int, ...]

    @property
    def conflict_free(self) -> bool:
        """The single-stream kernel verdict: no request waited, no issue
        stalled, and no result was held back on the result bus."""
        return (
            self.wait_count == 0
            and self.issue_stall_cycles == 0
            and not self.bus_held_result
        )


def simulate_runs(
    runs: Sequence[SoaRunSpec], *, use_numpy: bool | None = None
) -> list[SoaRunResult]:
    """Simulate every run to completion; results in input order."""
    run_count = len(runs)
    if run_count == 0:
        return []

    # Point-major offsets: run r's modules and requests live in
    # contiguous slices of the flat arrays below.
    moff = [0] * (run_count + 1)
    roff = [0] * (run_count + 1)
    for r, run in enumerate(runs):
        moff[r + 1] = moff[r] + run.module_count
        roff[r + 1] = roff[r] + len(run.modules)
    module_total = moff[run_count]
    request_total = roff[run_count]

    # Per-request state (global request id = roff[r] + stream position).
    mod_g = [0] * request_total  # global module id of each request
    arrival = [0] * request_total
    ready = [0] * request_total

    # Per-module request sequences: each module's requests in stream
    # order, counting-sorted into one flat array.  Queue contents are
    # always contiguous windows of these sequences.
    counts_per_run = [
        module_histogram(run.modules, run.module_count, use_numpy=use_numpy)
        for run in runs
    ]
    seq_base = [0] * (module_total + 1)
    for r, counts in enumerate(counts_per_run):
        for local, count in enumerate(counts):
            seq_base[moff[r] + local + 1] = count
    for m in range(module_total):
        seq_base[m + 1] += seq_base[m]
    seq = [0] * request_total
    fill = list(seq_base[:module_total])
    for r, run in enumerate(runs):
        base_m = moff[r]
        rid = roff[r]
        for local in run.modules:
            m = base_m + local
            mod_g[rid] = m
            seq[fill[m]] = rid
            fill[m] += 1
            rid += 1

    # Per-module state: queue windows as counters over the sequence.
    appended = [0] * module_total  # requests issued towards the module
    started = [0] * module_total  # requests that began service
    pushed = [0] * module_total  # results pushed into the output queue
    done = [0] * module_total  # results delivered
    svc_rid = [-1] * module_total
    svc_fin = [0] * module_total
    blk_rid = [-1] * module_total

    # Per-run state.
    cursor = [0] * run_count
    stalls = [0] * run_count
    waits = [0] * run_count
    delivered = [0] * run_count
    cyc = [0] * run_count
    held = [False] * run_count
    totals = [len(run.modules) for run in runs]
    active: list[set[int]] = [set() for _ in range(run_count)]
    # Same livelock guard the kernel computes (single stream starts at
    # cycle 1, so the start term contributes zero).
    guards = [
        (totals[r] + 2) * (runs[r].service_time + 2) + 64
        for r in range(run_count)
    ]

    def advance(r: int) -> bool:
        """Run ``r`` until completion (True) or an event-skip jump
        (False; the caller re-queues it on the shared horizon)."""
        run = runs[r]
        service_time = run.service_time
        input_capacity = run.input_capacity
        output_capacity = run.output_capacity
        ports = run.ports
        rbase = roff[r]
        total = totals[r]
        guard = guards[r]
        act = active[r]
        cycle = cyc[r]
        while delivered[r] < total:
            cycle += 1
            if cycle > guard:
                raise SimulationError(
                    f"simulation exceeded {guard} cycles for {total} "
                    f"requests — livelock?"
                )
            progressed = False

            # 1. Address port: one request per cycle, stall on full
            # input queue.
            position = cursor[r]
            if position < total:
                rid = rbase + position
                m = mod_g[rid]
                if appended[m] - started[m] < input_capacity:
                    arrival[rid] = cycle + 1
                    appended[m] += 1
                    act.add(m)
                    cursor[r] = position + 1
                    progressed = True
                else:
                    stalls[r] += 1

            # 2. Result ports: up to ``ports`` deliveries, oldest result
            # first (ready cycle, then module index).
            ready_count = 0
            for m in act:
                if done[m] < pushed[m]:
                    if ready[seq[seq_base[m] + done[m]]] <= cycle:
                        ready_count += 1
            grants = 0
            while grants < ports and delivered[r] < total:
                best_m = -1
                best_ready = 0
                for m in act:
                    if done[m] < pushed[m]:
                        head_ready = ready[seq[seq_base[m] + done[m]]]
                        if head_ready <= cycle and (
                            best_m < 0
                            or head_ready < best_ready
                            or (head_ready == best_ready and m < best_m)
                        ):
                            best_m = m
                            best_ready = head_ready
                if best_m < 0:
                    break
                done[best_m] += 1
                delivered[r] += 1
                grants += 1
                progressed = True
            if ready_count > grants:
                held[r] = True

            # 3. Module service: start new work, then retire finishing
            # work (start-before-finish, modules independent).
            for m in list(act):
                if svc_rid[m] < 0 and blk_rid[m] < 0:
                    if started[m] < appended[m]:
                        rid = seq[seq_base[m] + started[m]]
                        if arrival[rid] <= cycle:
                            started[m] += 1
                            if arrival[rid] != cycle:
                                waits[r] += 1
                            svc_rid[m] = rid
                            svc_fin[m] = cycle + service_time - 1
                            progressed = True
                if blk_rid[m] >= 0:
                    if pushed[m] - done[m] < output_capacity:
                        ready[blk_rid[m]] = cycle + 1
                        pushed[m] += 1
                        blk_rid[m] = -1
                        progressed = True
                elif svc_rid[m] >= 0 and svc_fin[m] == cycle:
                    rid = svc_rid[m]
                    svc_rid[m] = -1
                    if pushed[m] - done[m] < output_capacity:
                        ready[rid] = cycle + 1
                        pushed[m] += 1
                    else:
                        blk_rid[m] = rid
                    progressed = True
                if (
                    svc_rid[m] < 0
                    and blk_rid[m] < 0
                    and started[m] == appended[m]
                    and done[m] == pushed[m]
                ):
                    act.discard(m)

            # 4. Event skip: jump to the next scheduled event, counting
            # the skipped cycles as issue stalls when the stream is
            # blocked — then yield the slot back to the shared horizon.
            if not progressed and delivered[r] < total:
                next_event = guard + 1
                for m in act:
                    if svc_rid[m] >= 0:
                        if svc_fin[m] < next_event:
                            next_event = svc_fin[m]
                    elif blk_rid[m] < 0 and started[m] < appended[m]:
                        head_arrival = arrival[seq[seq_base[m] + started[m]]]
                        if cycle < head_arrival < next_event:
                            next_event = head_arrival
                    if done[m] < pushed[m]:
                        head_ready = ready[seq[seq_base[m] + done[m]]]
                        if cycle < head_ready < next_event:
                            next_event = head_ready
                jump = next_event - cycle - 1
                if jump > 0:
                    if cursor[r] < total:
                        stalls[r] += jump
                    cyc[r] = cycle + jump
                    return False
        cyc[r] = cycle
        return True

    # Shared event-skip horizon: always resume the run whose next event
    # is earliest, so the batch drains front-to-back in event time.
    horizon = [(1, r) for r in range(run_count)]
    heapq.heapify(horizon)
    while horizon:
        _wake, r = heapq.heappop(horizon)
        if not advance(r):
            heapq.heappush(horizon, (cyc[r] + 1, r))

    results = []
    for r, run in enumerate(runs):
        busy = tuple(
            run.service_time * count for count in counts_per_run[r]
        )
        results.append(
            SoaRunResult(
                latency=cyc[r],
                issue_stall_cycles=stalls[r],
                wait_count=waits[r],
                bus_held_result=held[r],
                element_count=totals[r],
                module_busy_cycles=busy,
            )
        )
    return results
