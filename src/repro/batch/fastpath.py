"""Closed-form planner shortcuts for the batch engine.

The per-point planner spends nearly all its time materialising request
orders (``conflict_free_order``'s slot loop) and module sequences
(``module_of`` per element).  For the paper's own mappings neither is
necessary to *decide* a design point:

* **Feasibility is arithmetic.**  ``AccessPlanner._conflict_free``
  succeeds for the Eq. (1)/(2) XOR mappings exactly when the stride
  family lies at or below the decomposition exponent and the length is
  a positive multiple of the chunk ``2**(w+t-x)`` (Lemma 1's
  ``L = k * Px`` precondition).  Within each Lemma-2/4 subsequence the
  alignment key steps by the odd ``sigma`` through its full ``2**t``
  value range, so the key sets always match the first subsequence and
  ``conflict_free_order`` cannot raise once ``build_subsequences``
  accepts the decomposition — and each subsequence emits exactly ``T``
  requests, so same-key (hence same-module) requests sit exactly ``T``
  slots apart and the produced plan is always conflict-free.
  :func:`cf_order_feasible` encodes that equivalence and returns
  ``None`` whenever the geometry falls outside the proven cases (the
  caller then runs the real planner).

* **Histograms are order-free.**  Any plan's module histogram equals
  the histogram over the vector's address set (a request order is a
  permutation), so busy-cycle accounting never needs the order.  For a
  truly matched memory a conflict-free access is exactly uniform —
  ``L / T`` requests per module — with no per-element work at all.

* **Canonical sequences vectorise.**  The four closed-form mappings
  (low-order, field-interleaved, matched XOR, section XOR, plus the
  skew rotation) are a handful of shifts and masks, so the canonical
  temporal distribution of a whole access is one numpy expression;
  :func:`canonical_modules` falls back to the stdlib
  ``module_sequence`` loop when numpy is absent or the addresses do
  not fit the int64 fast path.

``tests/batch/test_fastpath.py`` pins every shortcut against the real
planner across a broad geometry sweep.
"""

from __future__ import annotations

from typing import Sequence

from repro.batch._accel import _np, numpy_enabled
from repro.core.distributions import is_conflict_free
from repro.core.vector import VectorAccess
from repro.mappings.base import AddressMapping
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping

__all__ = [
    "canonical_modules",
    "cf_order_feasible",
    "modules_conflict_free",
]

#: Largest magnitude an int64 address computation may reach; anything
#: bigger drops to the arbitrary-precision stdlib path.
_INT64_SAFE = 1 << 62


def cf_order_feasible(
    mapping: AddressMapping, t: int, access: VectorAccess
) -> bool | None:
    """Whether the Section 3.2/4.2 reordering exists for ``access``.

    ``True``/``False`` mirror ``AccessPlanner._conflict_free`` exactly
    (success always yields a conflict-free plan, failure raises
    :class:`~repro.errors.OrderingError` so mode ``auto`` falls back to
    the canonical order).  ``None`` means the geometry is outside the
    proven closed-form cases — a subclassed mapping, an unmatched
    Eq. (1) layout (``m != t``), a skew or field scheme below its
    exponent — and the caller must consult the real planner.
    """
    if not isinstance(mapping, AddressMapping):
        return None
    x = access.family
    if type(mapping) is MatchedXorMapping:
        if x > mapping.s:
            return False
        if mapping.module_bits != t:
            return None
        w = mapping.s
    elif type(mapping) is SectionXorMapping:
        w = mapping.s if x <= mapping.s else mapping.y
        if x > w:
            return False
        if mapping.t != t:
            return None
    elif isinstance(mapping, SectionXorMapping):
        return None
    elif getattr(mapping, "s", None) is None:
        # _reorder_parameters refuses mappings without window structure.
        return False
    elif x > mapping.s:
        # The Lemma-2 decomposition is refused above the exponent for
        # every matched-style mapping, structured or not.
        return False
    else:
        return None
    chunk = 1 << (w + t - x)
    return access.length % chunk == 0


def canonical_modules(
    mapping: AddressMapping, access: VectorAccess, *, use_numpy: bool | None = None
) -> Sequence[int]:
    """Canonical temporal distribution of ``access`` under ``mapping``.

    Identical values to ``mapping.module_sequence(base, stride, length)``;
    returns an int64 ndarray when the numpy fast path applies.
    """
    if numpy_enabled(use_numpy):
        modules = _vectorized_modules(mapping, access)
        if modules is not None:
            return modules
    return mapping.module_sequence(access.base, access.stride, access.length)


def _vectorized_modules(mapping: AddressMapping, access: VectorAccess):
    """The numpy expression for one mapping kind, or ``None``."""
    if mapping.address_bits > 62:
        return None
    if abs(access.base) + abs(access.stride) * access.length >= _INT64_SAFE:
        return None
    kind = type(mapping)
    if kind not in (
        LowOrderInterleaved,
        FieldInterleaved,
        MatchedXorMapping,
        SectionXorMapping,
        SkewedMapping,
    ):
        return None
    index = _np.arange(access.length, dtype=_np.int64)
    address = (access.base + access.stride * index) & (mapping.address_space - 1)
    module_mask = mapping.module_count - 1
    if kind is LowOrderInterleaved:
        return address & module_mask
    if kind is FieldInterleaved:
        return (address >> mapping.s) & module_mask
    if kind is MatchedXorMapping:
        return (address & module_mask) ^ ((address >> mapping.s) & module_mask)
    if kind is SkewedMapping:
        return (address + mapping.distance * (address >> mapping.s)) & module_mask
    field_mask = (1 << mapping.t) - 1
    low = (address & field_mask) ^ ((address >> mapping.s) & field_mask)
    return (((address >> mapping.y) & field_mask) << mapping.t) | low


def modules_conflict_free(
    modules: Sequence[int], service_ratio: int, *, use_numpy: bool | None = None
) -> bool:
    """Section 2 conflict-freedom of a module sequence, vectorised.

    Same verdict as :func:`repro.core.distributions.is_conflict_free`:
    every ``T`` consecutive requests hit ``T`` distinct modules.
    """
    if service_ratio <= 1:
        return True
    if numpy_enabled(use_numpy) and isinstance(modules, _np.ndarray):
        if len(modules) < 2:
            return True
        # Stable sort groups each module's request positions in issue
        # order; adjacent same-module positions are the only gaps the
        # definition constrains.
        order = _np.argsort(modules, kind="stable")
        same = modules[order][1:] == modules[order][:-1]
        if not bool(same.any()):
            return True
        return bool((_np.diff(order)[same] >= service_ratio).all())
    return is_conflict_free(list(modules), service_ratio)
