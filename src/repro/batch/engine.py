"""The batch evaluator: partition, evaluate, validate, and the lab backend.

:func:`evaluate_batch` runs many scenario design points in one pass
through a three-way partition:

* **analytic** — planner-drive points whose every access plans
  conflict-free take the closed-form ``T + L + 1`` fast path
  (:mod:`repro.batch.analytic`): no simulation at all;
* **soa** — remaining planner-drive points (conflict-prone strides,
  indexed accesses) are simulated together by the struct-of-arrays
  batched kernel (:mod:`repro.batch.soa`) under one shared event-skip
  horizon;
* **fallback** — figure6/decoupled/program drives carry engine-specific
  extras and run through the ordinary per-point
  :func:`repro.scenarios.simulate`; ``workers=`` shards them over a
  process pool (:mod:`repro.batch.fallback`) with results reassembled
  in input order, byte-identical to the serial tier.

Every path produces the same :class:`~repro.scenarios.ScenarioResult`
fields the per-point simulator produces, so artifacts, cache keys and
reports are interchangeable between engines.  ``validate`` re-runs a
deterministic sample of points through the real kernel and raises
:class:`BatchValidationError` on any field-for-field mismatch.

:class:`BatchBackend` plugs the evaluator into the lab executor
(``repro lab run|sweep --engine batch``): scenario jobs are evaluated
as one batch, everything else delegates to the ordinary per-job path,
and failures keep the canonical ``TypeName: message`` rendering — the
same exceptions raised by the same code paths the serial backend runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.batch.fallback import resolve_fallback_workers, run_fallback_tier
from repro.batch.prepare import prepare_point
from repro.batch.soa import SoaRunSpec, simulate_runs
from repro.core.planner import plan_cache_stats
from repro.errors import SimulationError
from repro.scenarios.facade import ScenarioResult, _aggregate, simulate
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "BatchBackend",
    "BatchReport",
    "BatchValidationError",
    "evaluate_batch",
]


class BatchValidationError(SimulationError):
    """A sampled batch result disagreed with the reference kernel."""


@dataclass(frozen=True)
class BatchReport:
    """Results in input order, plus how each point was evaluated.

    ``workers`` is the resolved fallback-tier pool width (1 = serial);
    ``plan_cache_hits``/``plan_cache_misses`` are the shared plan
    cache's deltas over this evaluation, counted in this process (a
    sharded fallback tier plans inside its workers, whose counters are
    per-process).
    """

    results: tuple[ScenarioResult, ...]
    analytic_count: int
    soa_count: int
    fallback_count: int
    validated_count: int
    workers: int = 1
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


def _validation_sample(count: int, size: int) -> list[int]:
    """``count`` indices spread evenly over ``range(size)``."""
    count = min(count, size)
    if count <= 0:
        return []
    step = max(1, size // count)
    return list(range(0, size, step))[:count]


def _describe_mismatch(spec: ScenarioSpec, got: dict, want: dict) -> str:
    fields = sorted(
        key
        for key in set(got) | set(want)
        if got.get(key) != want.get(key)
    )
    detail = "; ".join(
        f"{key}: batch={got.get(key)!r} kernel={want.get(key)!r}"
        for key in fields[:4]
    )
    return (
        f"batch result for {spec.describe()!r} diverges from the kernel "
        f"on {len(fields)} field(s): {detail}"
    )


def evaluate_batch(
    specs: Sequence[ScenarioSpec],
    *,
    validate: int = 0,
    use_numpy: bool | None = None,
    on_error: str = "raise",
    workers: int | None = None,
) -> BatchReport:
    """Evaluate every spec; results come back in input order.

    ``validate`` re-simulates that many evenly-sampled points through
    the per-point kernel and raises :class:`BatchValidationError` on
    any field mismatch.  ``on_error="capture"`` records a point's
    exception in place of its result (for callers that isolate
    failures per job, like :class:`BatchBackend`) instead of raising.
    ``workers`` shards the fallback tier over that many worker
    processes (``None``/1 = serial, 0 = one per CPU); the analytic and
    SoA tiers, validation, and result ordering are unaffected, so the
    report is identical for any worker count.
    """
    if on_error not in ("raise", "capture"):
        raise SimulationError(f"unknown on_error mode {on_error!r}")
    worker_count = resolve_fallback_workers(workers)
    cache_before = plan_cache_stats()
    specs = list(specs)
    prepared: list[tuple[str, object]] = []
    soa_runs: list[SoaRunSpec] = []
    for spec in specs:
        try:
            point = prepare_point(spec, use_numpy=use_numpy)
        except Exception as error:
            if on_error == "raise":
                raise
            prepared.append(("error", error))
            continue
        if point.kind == "analytic":
            prepared.append(("analytic", point.result))
        elif point.kind == "soa":
            start = len(soa_runs)
            soa_runs.extend(run for _scheme, run in point.planned)
            schemes = [scheme for scheme, _run in point.planned]
            prepared.append(("soa", (point.config, schemes, start)))
        else:
            prepared.append(("fallback", None))

    soa_results = simulate_runs(soa_runs, use_numpy=use_numpy)

    fallback_indices = [
        index
        for index, (kind, _info) in enumerate(prepared)
        if kind == "fallback"
    ]
    fallback_results = iter(
        run_fallback_tier(
            [specs[index] for index in fallback_indices],
            workers=worker_count,
            on_error=on_error,
        )
    )

    results: list[object] = []
    counts = {"analytic": 0, "soa": 0, "fallback": 0}
    for spec, (kind, info) in zip(specs, prepared):
        if kind == "error":
            results.append(info)
            continue
        counts[kind] += 1
        if kind == "analytic":
            results.append(info)
        elif kind == "soa":
            config, schemes, start = info
            parts = list(
                zip(schemes, soa_results[start : start + len(schemes)])
            )
            results.append(_aggregate(spec, config, parts))
        else:
            results.append(next(fallback_results))

    validated = 0
    for index in _validation_sample(validate, len(specs)):
        got = results[index]
        if not isinstance(got, ScenarioResult):
            continue
        reference = simulate(specs[index])
        if got.to_dict() != reference.to_dict():
            raise BatchValidationError(
                _describe_mismatch(
                    specs[index], got.to_dict(), reference.to_dict()
                )
            )
        validated += 1

    cache_after = plan_cache_stats()
    return BatchReport(
        results=tuple(results),  # type: ignore[arg-type]
        analytic_count=counts["analytic"],
        soa_count=counts["soa"],
        fallback_count=counts["fallback"],
        validated_count=validated,
        workers=worker_count,
        plan_cache_hits=(
            cache_after["plan_cache_hits"] - cache_before["plan_cache_hits"]
        ),
        plan_cache_misses=(
            cache_after["plan_cache_misses"]
            - cache_before["plan_cache_misses"]
        ),
    )


class BatchBackend:
    """Lab executor backend that batches scenario jobs.

    Scenario jobs in the pending set are evaluated together through
    :func:`evaluate_batch`; non-scenario jobs (experiments, sweeps,
    ablations) and scenario jobs whose spec payload does not parse
    delegate to the ordinary per-job execution path.  Payloads are
    built by the same :func:`repro.lab.jobs.scenario_result_payload`
    the serial path uses, so artifacts — and therefore cache entries —
    are interchangeable between engines.
    """

    name = "batch"

    def __init__(
        self,
        *,
        validate: int = 0,
        use_numpy: bool | None = None,
        workers: int | None = None,
    ):
        self.validate = validate
        self.use_numpy = use_numpy
        self.workers = workers
        self._metrics: dict[str, int] = {}

    def backend_metrics(self) -> dict:
        """Partition counters for the run manifest's metrics block."""
        return dict(self._metrics)

    def run(
        self, pending, *, run_id: str
    ) -> Iterator[tuple[object, dict | object]]:
        from repro.lab.backends import describe_error
        from repro.lab.jobs import (
            execute_job,
            scenario_result_payload,
            scenario_spec_of,
        )

        batched = []
        delegated = []
        for job in pending:
            spec = scenario_spec_of(job)
            if spec is None:
                delegated.append(job)
            else:
                batched.append((job, spec))

        started = time.perf_counter()
        report = evaluate_batch(
            [spec for _job, spec in batched],
            validate=self.validate,
            use_numpy=self.use_numpy,
            on_error="capture",
            workers=self.workers,
        )
        elapsed = time.perf_counter() - started
        share = elapsed / len(batched) if batched else 0.0
        self._metrics = {
            "batch_jobs": len(batched),
            "batch_analytic": report.analytic_count,
            "batch_soa": report.soa_count,
            "batch_fallback": report.fallback_count,
            "batch_validated": report.validated_count,
            "batch_delegated": len(delegated),
            "batch_workers": report.workers,
            "plan_cache_hits": report.plan_cache_hits,
            "plan_cache_misses": report.plan_cache_misses,
        }

        for (job, spec), result in zip(batched, report.results):
            if isinstance(result, BaseException):
                yield job, describe_error(result)
                continue
            payload = scenario_result_payload(job, spec, result)
            payload["job_id"] = job.job_id
            payload["kind"] = job.kind
            payload["elapsed_seconds"] = share
            yield job, payload

        for job in delegated:
            try:
                payload = execute_job(job)
            except Exception as error:
                yield job, describe_error(error)
            else:
                yield job, payload
