"""Batch design-point evaluation: many scenarios in one pass.

Two tiers above the per-point simulator: an analytic fast path that
answers conflict-free planner-drive points with the paper's closed-form
``T + L + 1`` arithmetic (no simulation), and a struct-of-arrays
batched kernel that simulates the remaining planner-drive points
together under a shared event-skip horizon.  Points neither tier can
claim fall back to :func:`repro.scenarios.simulate`, so every spec the
per-point engine accepts evaluates identically here — same fields,
same artifacts, same cache keys.  The fallback tier shards over a
process pool when asked (``workers=`` / ``--batch-workers``); see
:mod:`repro.batch.fallback`.

Entry points: :func:`repro.scenarios.simulate_grid` (and ``repro
scenario run --engine batch``) for direct evaluation, and
:class:`BatchBackend` (``repro lab run|sweep --engine batch``) for
cached lab batches.  Optional numpy acceleration is feature-detected
and never required (:mod:`repro.batch._accel`).
"""

from repro.batch.analytic import analytic_result
from repro.batch.engine import (
    BatchBackend,
    BatchReport,
    BatchValidationError,
    evaluate_batch,
)
from repro.batch.fallback import resolve_fallback_workers, run_fallback_tier
from repro.batch.prepare import PreparedPoint, prepare_point

__all__ = [
    "BatchBackend",
    "BatchReport",
    "BatchValidationError",
    "PreparedPoint",
    "analytic_result",
    "evaluate_batch",
    "prepare_point",
    "resolve_fallback_workers",
    "run_fallback_tier",
]
