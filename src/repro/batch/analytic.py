"""Analytic fast path: exact metrics for conflict-free design points.

The paper's closed form — a conflict-free access of length ``L``
completes in exactly ``T + L + 1`` cycles with zero issue stalls and
zero module waits — is the same arithmetic :mod:`repro.check.conflict`
quotes in its CF101 findings, and the 360-point consistency suite pins
the static verdict against kernel measurement (``tests/check/
test_conflict_consistency.py``).  So for a planner-drive spec whose
every access plans conflict-free, the full :class:`ScenarioResult` is
pure arithmetic: no cycle loop, no request records, nothing to
simulate.

Claim condition (anything else returns ``None`` and falls through to
simulation):

* no ``program`` section and a workload present;
* the drive is the planner drive (``figure6`` and ``decoupled`` carry
  engine-specific extras an analytic result cannot reproduce);
* every access is strided (indexed accesses have no closed-form
  verdict — the CF103 rule);
* every access plans successfully under the drive's mode *and* the
  plan is conflict-free (the CF101 condition exactly).

Errors are transparent: a spec that cannot build, or whose forced
plan mode raises :class:`~repro.errors.OrderingError`, raises here
exactly as :func:`repro.scenarios.simulate` would — so batch and
per-point evaluation fail the same way on the same spec.

The heavy lifting lives in :mod:`repro.batch.prepare`, which decides
conflict-freedom with the Lemma-1 chunk arithmetic for the paper's
XOR mappings (no request order is ever materialised) and with the
real planner everywhere else.
"""

from __future__ import annotations

from repro.scenarios.facade import ScenarioResult
from repro.scenarios.spec import ScenarioSpec

__all__ = ["analytic_result"]


def analytic_result(
    spec: ScenarioSpec, *, use_numpy: bool | None = None
) -> ScenarioResult | None:
    """The spec's exact metrics without simulation, or ``None``.

    A returned result is field-for-field identical to what
    :func:`repro.scenarios.simulate` measures — latency equals the
    ``T + L + 1`` minimum per access, stalls and waits are zero, busy
    cycles are ``T`` times each module's request count — which the
    batch equivalence suite asserts point by point.
    """
    from repro.batch.prepare import prepare_point

    point = prepare_point(spec, use_numpy=use_numpy)
    return point.result if point.kind == "analytic" else None
