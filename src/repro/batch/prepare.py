"""Single-pass design-point classification for the batch evaluator.

:func:`prepare_point` decides once, per spec, which tier evaluates it:

* ``"analytic"`` — every access is conflict-free, so the full
  :class:`~repro.scenarios.ScenarioResult` is closed-form arithmetic
  (the prepared result rides along);
* ``"soa"`` — planner-drive points with at least one conflict-prone or
  indexed access carry their per-access module sequences into the
  struct-of-arrays kernel;
* ``"fallback"`` — programs and the figure6/decoupled drives, which
  need the per-point engines.

The classification leans on :mod:`repro.batch.fastpath`: for the
paper's XOR mappings, conflict-free feasibility is decided by the
Lemma-1 chunk arithmetic and conflict-prone points take the canonical
order — so the expensive ``conflict_free_order`` slot loop never runs
for them.  Geometries outside the proven closed forms consult the real
:class:`~repro.core.planner.AccessPlanner`, whose plans are authoritative
by construction.  Build and validation errors surface exactly as
:func:`repro.scenarios.simulate` raises them: the same factories and
constructors run in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch._accel import module_histogram
from repro.batch.fastpath import (
    canonical_modules,
    cf_order_feasible,
    modules_conflict_free,
)
from repro.batch.soa import SoaRunSpec
from repro.core.gather import IndexedAccess, plan_indexed
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.mappings.linear import MatchedXorMapping
from repro.scenarios.components import PlannerDrive
from repro.scenarios.facade import (
    ScenarioResult,
    build_config,
    build_workload,
)
from repro.scenarios.registry import DRIVE, build
from repro.scenarios.spec import ScenarioSpec

__all__ = ["PreparedPoint", "prepare_point"]


@dataclass(frozen=True)
class PreparedPoint:
    """One classified design point.

    ``kind`` is ``"analytic"`` (``result`` holds the finished
    :class:`ScenarioResult`), ``"soa"`` (``config`` and ``planned`` —
    ``(scheme, SoaRunSpec)`` per access — feed the batched kernel) or
    ``"fallback"`` (everything ``None``; run :func:`simulate`).
    """

    kind: str
    result: ScenarioResult | None = None
    config: object = None
    planned: tuple[tuple[str, SoaRunSpec], ...] = ()


@dataclass(frozen=True)
class _AccessVerdict:
    """Scheme, conflict-freedom and module data for one access.

    ``modules`` is the issue-order module sequence when known without
    building the full plan; a conflict-free fast-path verdict leaves it
    ``None`` (its histogram is order-invariant) and ``histogram``
    carries the per-module request counts instead.
    """

    scheme: str
    conflict_free: bool
    indexed: bool = False
    modules: object = None
    histogram: list[int] | None = None


def prepare_point(
    spec: ScenarioSpec, *, use_numpy: bool | None = None
) -> PreparedPoint:
    """Classify ``spec`` and prepare whatever its tier needs.

    Raises exactly what :func:`repro.scenarios.simulate` would raise
    for the same spec — unknown kinds, bad geometry, an
    :class:`~repro.errors.OrderingError` under a forced plan mode.
    """
    if spec.program is not None or spec.workload is None:
        return PreparedPoint("fallback")
    drive = build(DRIVE, spec.drive)
    if not isinstance(drive, PlannerDrive):
        return PreparedPoint("fallback")
    workload = build_workload(spec)
    config = build_config(spec, workload)
    planner = AccessPlanner(config.mapping, config.t)
    accesses = workload.accesses()
    verdicts = [
        _classify_access(planner, config, drive, access, use_numpy)
        for access in accesses
    ]
    if all(v.conflict_free for v in verdicts) and not any(
        v.indexed for v in verdicts
    ):
        return PreparedPoint(
            "analytic",
            result=_analytic_result(spec, config, verdicts, use_numpy),
        )
    planned = tuple(
        (v.scheme, _run_spec(planner, config, drive, access, v))
        for access, v in zip(accesses, verdicts)
    )
    return PreparedPoint("soa", config=config, planned=planned)


def _classify_access(
    planner: AccessPlanner,
    config,
    drive: PlannerDrive,
    access,
    use_numpy: bool | None,
) -> _AccessVerdict:
    """One access's scheme/verdict, via the cheapest sound route."""
    mapping = config.mapping
    service = config.service_ratio
    if isinstance(access, IndexedAccess):
        plan = plan_indexed(
            mapping, config.t, access, mode=drive.indexed_mode
        )
        return _AccessVerdict(
            plan.scheme, plan.conflict_free, indexed=True, modules=plan.modules
        )
    mode = drive.mode
    if mode in ("auto", "conflict_free"):
        feasible = cf_order_feasible(mapping, config.t, access)
        if feasible is True:
            return _AccessVerdict(
                "conflict_free",
                True,
                histogram=_cf_histogram(mapping, access, service, use_numpy),
            )
        if feasible is False:
            if mode == "conflict_free":
                # The forced mode raises; let the planner produce the
                # exact OrderingError simulate() would.
                planner.plan(access, mode=mode)
            return _canonical_verdict(mapping, access, service, use_numpy)
    elif mode == "ordered":
        return _canonical_verdict(mapping, access, service, use_numpy)
    plan = planner.plan(access, mode=mode)
    return _AccessVerdict(plan.scheme, plan.conflict_free, modules=plan.modules)


def _canonical_verdict(
    mapping, access: VectorAccess, service: int, use_numpy: bool | None
) -> _AccessVerdict:
    modules = canonical_modules(mapping, access, use_numpy=use_numpy)
    return _AccessVerdict(
        "canonical",
        modules_conflict_free(modules, service, use_numpy=use_numpy),
        modules=modules,
    )


def _cf_histogram(
    mapping, access: VectorAccess, service: int, use_numpy: bool | None
) -> list[int]:
    """Per-module request counts of a conflict-free access.

    Order-invariant, so the canonical address set serves.  A truly
    matched memory (``M = T``) is exactly uniform: each block of ``T``
    consecutive conflict-free requests hits every module once.
    """
    if type(mapping) is MatchedXorMapping and mapping.module_count == service:
        return [access.length // service] * service
    modules = canonical_modules(mapping, access, use_numpy=use_numpy)
    return module_histogram(modules, mapping.module_count, use_numpy=use_numpy)


def _analytic_result(
    spec: ScenarioSpec,
    config,
    verdicts: list[_AccessVerdict],
    use_numpy: bool | None,
) -> ScenarioResult:
    service = config.service_ratio
    module_count = config.module_count
    schemes: list[str] = []
    busy = [0] * module_count
    latency = 0
    elements = 0
    for verdict in verdicts:
        if verdict.scheme not in schemes:
            schemes.append(verdict.scheme)
        counts = verdict.histogram
        if counts is None:
            counts = module_histogram(
                verdict.modules, module_count, use_numpy=use_numpy
            )
        length = sum(counts)
        latency += service + length + 1
        elements += length
        for module, count in enumerate(counts):
            busy[module] += count * service
    return ScenarioResult(
        name=spec.name,
        drive=spec.drive.kind,
        schemes=tuple(schemes),
        access_count=len(verdicts),
        element_count=elements,
        latency=latency,
        minimum_latency=latency,
        conflict_free=True,
        issue_stalls=0,
        wait_count=0,
        service_ratio=service,
        module_count=module_count,
        module_busy_cycles=tuple(busy),
    )


def _run_spec(
    planner: AccessPlanner,
    config,
    drive: PlannerDrive,
    access,
    verdict: _AccessVerdict,
) -> SoaRunSpec:
    """The SoA run description for one access of a conflict-prone point."""
    modules = verdict.modules
    if modules is None:
        # A conflict-free access inside a mixed workload: the kernel
        # needs its true issue-order module sequence, so build the plan.
        modules = planner.plan(access, mode=drive.mode).modules
    return SoaRunSpec(
        modules=tuple(int(module) for module in modules),
        service_time=config.service_ratio,
        module_count=config.module_count,
        input_capacity=config.input_capacity,
        output_capacity=config.output_capacity,
        ports=config.ports,
    )
