"""Feature-detected numpy acceleration for the batch evaluator.

The repo's zero-runtime-deps rule stands: numpy is *never* required.
When it happens to be importable, the batch layers use it for the
aggregate bookkeeping that vectorises cleanly (per-module request
histograms over thousands of planned accesses); when it is absent —
or explicitly disabled — the pure-stdlib code paths produce identical
results, which ``tests/batch/test_engine.py`` asserts.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - exercised via both branches in the suite
    import numpy as _np
except ImportError:  # pragma: no cover - container always has one state
    _np = None  # type: ignore[assignment]

#: Whether numpy imported; the acceleration default.
HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "module_histogram", "numpy_enabled"]


def numpy_enabled(use_numpy: bool | None) -> bool:
    """Resolve a three-state flag: ``None`` auto-detects, ``True`` asks
    for numpy (quietly falling back when it is not installed — the flag
    is a hint, never a dependency), ``False`` forces pure stdlib."""
    if use_numpy is None:
        return HAVE_NUMPY
    return bool(use_numpy) and HAVE_NUMPY


def module_histogram(
    modules: Sequence[int],
    module_count: int,
    *,
    use_numpy: bool | None = None,
) -> list[int]:
    """Requests per module for one planned access, as plain ints."""
    if numpy_enabled(use_numpy):
        if isinstance(modules, _np.ndarray):
            flat = modules
        else:
            flat = _np.fromiter(modules, dtype=_np.int64, count=len(modules))
        return [
            int(count)
            for count in _np.bincount(flat, minlength=module_count)
        ]
    counts = [0] * module_count
    for module in modules:
        counts[module] += 1
    return counts
