"""Sharded execution of the batch engine's fallback tier.

The analytic and SoA tiers answer planner-drive points wholesale, but
figure6/decoupled/program points still run the ordinary per-point
:func:`repro.scenarios.simulate` — serially, until this module.
:func:`run_fallback_tier` chunks those points across a process pool,
following the same conventions as
:class:`repro.lab.backends.ProcessPoolBackend` (one worker per CPU by
default via :func:`repro.lab.backends.default_worker_count`, an
in-process short-circuit when a pool could not pay for itself) while
keeping results indistinguishable from the serial tier:

* specs cross the boundary as their canonical JSON (the same rule the
  lab's spool protocol follows: only specs and JSON-safe payloads
  travel between processes);
* results come back as ordinary frozen ``ScenarioResult`` objects and
  are reassembled in input order, whatever order chunks finish in;
* a captured exception crosses back as the exception object itself
  when it pickles, and otherwise as its ``(type name, message)`` pair
  rebuilt into a stand-in whose :func:`repro.lab.backends.describe_error`
  rendering — ``TypeName: message`` — is byte-identical to the
  in-process path.

On POSIX the pool forks, so workers inherit the parent's warmed plan
and machine-template caches for free; each worker then grows its own.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.errors import SimulationError
from repro.scenarios.facade import ScenarioResult, simulate
from repro.scenarios.spec import ScenarioSpec

__all__ = ["resolve_fallback_workers", "run_fallback_tier"]

#: Chunks submitted per worker: small enough to amortise pickling,
#: large enough that a slow point cannot idle the rest of the pool.
_CHUNKS_PER_WORKER = 4


def resolve_fallback_workers(workers: int | None) -> int:
    """Normalise the ``workers=`` knob.

    ``None`` means serial (the historical behaviour); ``0`` means one
    worker per CPU, the same default ``repro lab run --jobs`` uses.
    """
    if workers is None:
        return 1
    if (
        isinstance(workers, bool)
        or not isinstance(workers, int)
        or workers < 0
    ):
        raise SimulationError(
            f"batch workers must be an int >= 0 (0 = one per CPU), "
            f"got {workers!r}"
        )
    if workers == 0:
        from repro.lab.backends import default_worker_count

        return default_worker_count()
    return workers


def _portable_result(spec: ScenarioSpec) -> tuple:
    """Simulate one spec in a worker; always return something picklable."""
    try:
        return ("ok", simulate(spec))
    except Exception as error:  # parity: the serial tier captures all
        try:
            pickle.dumps(error)
        except Exception:
            return ("opaque-error", type(error).__name__, str(error))
        return ("error", error)


def _simulate_chunk(payload: tuple[int, list[str]]) -> tuple[int, list]:
    """Pool worker: one chunk of spec JSON in, tagged results out."""
    start, texts = payload
    return start, [
        _portable_result(ScenarioSpec.from_json(text)) for text in texts
    ]


def _rebuild_error(name: str, message: str) -> BaseException:
    """A stand-in for an exception that could not cross the boundary.

    The dynamic class carries the original type name, so the canonical
    ``TypeName: message`` rendering (and therefore lab failure records)
    matches the serial tier exactly.
    """
    cls = type(name, (SimulationError,), {"__module__": __name__})
    return cls(message)


def _untag(tagged: tuple) -> ScenarioResult | BaseException:
    if tagged[0] == "ok":
        return tagged[1]
    if tagged[0] == "error":
        return tagged[1]
    return _rebuild_error(tagged[1], tagged[2])


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_fallback_tier(
    specs: list[ScenarioSpec], *, workers: int = 1, on_error: str = "raise"
) -> list[ScenarioResult | BaseException]:
    """Evaluate the fallback points; results in input order.

    ``on_error="capture"`` records a point's exception in place of its
    result; ``"raise"`` re-raises the failure of the lowest-index
    failing point (the same point the serial tier would have raised
    at — simulation is side-effect free, so the extra points a pool
    may have evaluated first are unobservable).
    """
    if workers <= 1 or len(specs) <= 1:
        results: list[ScenarioResult | BaseException] = []
        for spec in specs:
            try:
                results.append(simulate(spec))
            except Exception as error:
                if on_error == "raise":
                    raise
                results.append(error)
        return results

    worker_count = min(workers, len(specs))
    chunk_count = min(len(specs), worker_count * _CHUNKS_PER_WORKER)
    size = -(-len(specs) // chunk_count)  # ceil division
    payloads = [
        (start, [spec.to_json() for spec in specs[start : start + size]])
        for start in range(0, len(specs), size)
    ]
    slots: list = [None] * len(specs)
    with ProcessPoolExecutor(
        max_workers=worker_count, mp_context=_pool_context()
    ) as pool:
        for start, tagged_chunk in pool.map(_simulate_chunk, payloads):
            for offset, tagged in enumerate(tagged_chunk):
                slots[start + offset] = _untag(tagged)
    if on_error == "raise":
        for result in slots:
            if isinstance(result, BaseException):
                raise result
    return slots
