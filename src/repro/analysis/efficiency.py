"""Memory efficiency under a uniform stride distribution — Section 5-B.

Families inside the conflict-free window cost one cycle per element.  A
family ``x = w + i`` beyond the window maps its elements into only
``ceil(2**(t-i))`` modules, so an element is obtained every
``2**t / ceil(2**(t-i)) = 2**min(i, t)`` cycles on average.  Weighting by
the family fractions ``2**-(x+1)`` gives the paper's closed form

    ``eta = 1 / (1 + t / 2**(w+1))``

(the in-window families contribute ``1 - 2**-(w+1)`` cycles, the first
``t`` out-of-window families contribute ``t / 2**(w+1)``, and the
geometric tail beyond ``i = t`` contributes the missing ``2**-(w+1)``).

Paper numbers reproduced by experiment E09:

* proposed matched (``w=4, t=3``):    eta = 0.914
* proposed unmatched (``w=9, t=3``):  eta = 0.997
* ordered matched (``w=0``):          eta = 0.4
* ordered unmatched (``w=m-t=3``):    eta = 0.84
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import VectorSpecError


def family_cycles_per_element(family: int, window_high: int, t: int) -> int:
    """Average cycles per element for one family.

    1 inside the window; ``2**min(i, t)`` for the family ``w + i``.
    """
    if family < 0:
        raise VectorSpecError(f"family must be >= 0, got {family}")
    if family <= window_high:
        return 1
    excess = family - window_high
    return 1 << min(excess, t)


def average_cycles_per_element(window_high: int, t: int) -> Fraction:
    """Exact closed form ``1 + t / 2**(w+1)``."""
    if window_high < 0 or t < 0:
        raise VectorSpecError("window and t must be >= 0")
    return Fraction(1) + Fraction(t, 1 << (window_high + 1))


def average_cycles_truncated(
    window_high: int, t: int, max_family: int
) -> Fraction:
    """The same average computed term by term up to ``max_family``.

    Used by the tests to confirm the closed form: the truncated sum plus
    a bounded tail brackets :func:`average_cycles_per_element`.  The
    residual weight beyond ``max_family`` is assigned cost ``2**t`` (its
    exact asymptotic cost), making the sum converge to the closed form.
    """
    total = Fraction(0)
    weight_used = Fraction(0)
    for family in range(max_family + 1):
        weight = Fraction(1, 1 << (family + 1))
        total += weight * family_cycles_per_element(family, window_high, t)
        weight_used += weight
    tail_weight = Fraction(1) - weight_used
    total += tail_weight * (1 << t)
    return total


def efficiency(window_high: int, t: int) -> Fraction:
    """``eta = 1 / (1 + t / 2**(w+1))`` (Section 5-B)."""
    return 1 / average_cycles_per_element(window_high, t)


def matched_proposed_efficiency(lambda_exponent: int, t: int) -> Fraction:
    """Proposed scheme, matched memory: ``w = lambda - t``."""
    return efficiency(lambda_exponent - t, t)


def unmatched_proposed_efficiency(lambda_exponent: int, t: int) -> Fraction:
    """Proposed scheme, unmatched (``M = T**2``): ``w = 2(lambda-t)+1``."""
    return efficiency(2 * (lambda_exponent - t) + 1, t)


def matched_ordered_efficiency(t: int) -> Fraction:
    """Ordered access, matched: best choice ``s = 0`` gives ``w = 0``."""
    return efficiency(0, t)


def unmatched_ordered_efficiency(m: int, t: int) -> Fraction:
    """Ordered access, unmatched Eq. (1): ``s = 0`` gives ``w = m - t``."""
    if m < t:
        raise VectorSpecError(f"unmatched memory needs m >= t (m={m}, t={t})")
    return efficiency(m - t, t)
