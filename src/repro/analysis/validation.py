"""Model-vs-simulation validation (experiments E09/E16).

The Section 5-B efficiency model predicts that a family ``i`` beyond the
window costs ``2**min(i, t)`` cycles per element in steady state.  These
helpers run the cycle-accurate simulator on representative strides of
each family and compare the measured steady-state cost to the model,
giving the per-family rows of experiment E09 and the aggregate
efficiency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.efficiency import family_cycles_per_element
from repro.core.planner import AccessPlanner, PlanMode
from repro.core.vector import VectorAccess
from repro.memory.metrics import cycles_per_element
from repro.memory.system import MemorySystem


@dataclass(frozen=True)
class FamilyValidation:
    """One family's model-vs-measured steady-state cost."""

    family: int
    model_cycles_per_element: float
    measured_cycles_per_element: float
    conflict_free: bool

    @property
    def relative_error(self) -> float:
        model = self.model_cycles_per_element
        return abs(self.measured_cycles_per_element - model) / model


def validate_family(
    planner: AccessPlanner,
    system: MemorySystem,
    family: int,
    window_high: int,
    length: int,
    sigma: int = 1,
    base: int = 0,
    mode: PlanMode = "auto",
) -> FamilyValidation:
    """Simulate one representative stride of ``family`` and compare.

    The measured cost is the issue-span per element (start-up excluded),
    which converges to the model value for ``length >> T``.
    """
    vector = VectorAccess(base, sigma * (1 << family), length)
    plan = planner.plan(vector, mode=mode)
    result = system.run_plan(plan)
    measured = cycles_per_element(result, planner.service_ratio)
    model = float(
        family_cycles_per_element(family, window_high, planner.t)
    )
    return FamilyValidation(
        family=family,
        model_cycles_per_element=model,
        measured_cycles_per_element=measured,
        conflict_free=result.conflict_free,
    )


def validate_families(
    planner: AccessPlanner,
    system: MemorySystem,
    window_high: int,
    length: int,
    max_family: int,
    mode: PlanMode = "auto",
) -> list[FamilyValidation]:
    """Validate every family ``0..max_family``."""
    return [
        validate_family(
            planner, system, family, window_high, length, mode=mode
        )
        for family in range(max_family + 1)
    ]


def weighted_measured_efficiency(
    validations: list[FamilyValidation], tail_t: int, window_high: int
) -> float:
    """Aggregate measured per-family costs into an overall efficiency.

    Families beyond the measured range contribute their asymptotic model
    cost (weight ``2**-(max+1)``, cost ``2**t``), mirroring
    :func:`repro.analysis.efficiency.average_cycles_truncated`.
    """
    total = 0.0
    weight_used = 0.0
    for validation in validations:
        weight = 2.0 ** -(validation.family + 1)
        total += weight * validation.measured_cycles_per_element
        weight_used += weight
    total += (1.0 - weight_used) * (1 << tail_t)
    return 1.0 / total
