"""Closed-form models and validation for the paper's evaluation section."""

from repro.analysis.efficiency import (
    average_cycles_per_element,
    average_cycles_truncated,
    efficiency,
    family_cycles_per_element,
    matched_ordered_efficiency,
    matched_proposed_efficiency,
    unmatched_ordered_efficiency,
    unmatched_proposed_efficiency,
)
from repro.analysis.fractions import (
    conflict_free_fraction,
    family_histogram,
    matched_design_fraction,
    monte_carlo_fraction,
    unmatched_design_fraction,
)
from repro.analysis.sweeps import (
    DesignRow,
    design_row,
    efficiency_crossover_t,
    sweep_lambda,
    sweep_t,
)
from repro.analysis.tradeoffs import (
    DesignPoint,
    LengthSensitivity,
    families_vs_length,
    matched_design_point,
    maximum_extra_families,
    ordered_design_point,
    unmatched_design_point,
    window_doubling_cost,
)
from repro.analysis.validation import (
    FamilyValidation,
    validate_families,
    validate_family,
    weighted_measured_efficiency,
)

__all__ = [
    "DesignPoint",
    "DesignRow",
    "FamilyValidation",
    "LengthSensitivity",
    "average_cycles_per_element",
    "average_cycles_truncated",
    "conflict_free_fraction",
    "design_row",
    "efficiency_crossover_t",
    "efficiency",
    "families_vs_length",
    "family_cycles_per_element",
    "family_histogram",
    "matched_design_fraction",
    "matched_design_point",
    "matched_ordered_efficiency",
    "matched_proposed_efficiency",
    "maximum_extra_families",
    "monte_carlo_fraction",
    "sweep_lambda",
    "sweep_t",
    "ordered_design_point",
    "unmatched_design_fraction",
    "unmatched_design_point",
    "unmatched_ordered_efficiency",
    "unmatched_proposed_efficiency",
    "validate_families",
    "validate_family",
    "weighted_measured_efficiency",
    "window_doubling_cost",
]
