"""Design-space trade-offs — Sections 5-E, 5-G and 5-H.

Three comparisons the paper draws:

* **module cost of the window (5-E):** the matched scheme (``M = T``)
  gives ``lambda - t + 1`` conflict-free families; doubling the window to
  ``2(lambda - t) + 2`` requires *squaring* the module count
  (``M = T**2``), and the added families carry exponentially fewer
  strides.
* **maximum families (5-G):** the unmatched scheme could reach ``t - 1``
  more families with differently structured subsequences, at the price
  of more complex address generation (reported, not implemented — the
  paper itself leaves it out of its hardware design).
* **families vs vector length (5-H):** ordered access on an unmatched
  memory gives ``t + 1`` families for *any* vector length; the proposed
  scheme gives only 2 families for arbitrary lengths but ``2(lambda-t+1)``
  for the register length ``L = 2**lambda`` — the central bet of the
  paper, quantified by experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.efficiency import efficiency
from repro.core.families import window_fraction
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DesignPoint:
    """One (module count, window) point of the Section 5-E trade-off."""

    name: str
    modules: int
    window_families: int
    stride_fraction: Fraction
    efficiency: Fraction


def matched_design_point(lambda_exponent: int, t: int) -> DesignPoint:
    """``M = T``: window ``0..lambda-t`` via out-of-order access."""
    _check(lambda_exponent, t)
    w = lambda_exponent - t
    return DesignPoint(
        name="matched (M=T, out-of-order)",
        modules=1 << t,
        window_families=w + 1,
        stride_fraction=window_fraction(w),
        efficiency=efficiency(w, t),
    )


def unmatched_design_point(lambda_exponent: int, t: int) -> DesignPoint:
    """``M = T**2``: window ``0..2(lambda-t)+1`` via out-of-order access."""
    _check(lambda_exponent, t)
    w = 2 * (lambda_exponent - t) + 1
    return DesignPoint(
        name="unmatched (M=T^2, out-of-order)",
        modules=1 << (2 * t),
        window_families=w + 1,
        stride_fraction=window_fraction(w),
        efficiency=efficiency(w, t),
    )


def ordered_design_point(m: int, t: int) -> DesignPoint:
    """Ordered access on ``2**m`` modules: window ``0..m-t`` (s=0)."""
    if m < t:
        raise ConfigurationError(f"need m >= t (m={m}, t={t})")
    w = m - t
    return DesignPoint(
        name=f"ordered (M=2^{m})",
        modules=1 << m,
        window_families=w + 1,
        stride_fraction=window_fraction(w),
        efficiency=efficiency(w, t),
    )


def window_doubling_cost(lambda_exponent: int, t: int) -> float:
    """Module multiplier paid to double the window (5-E): ``M`` goes from
    ``T`` to ``T**2``, i.e. a factor ``T = 2**t``."""
    matched = matched_design_point(lambda_exponent, t)
    unmatched = unmatched_design_point(lambda_exponent, t)
    return unmatched.modules / matched.modules


def maximum_extra_families(t: int) -> int:
    """Section 5-G: the unmatched window could grow by ``t - 1`` more
    families with restructured subsequences (not implemented, by design —
    the paper rejects the hardware cost)."""
    if t < 1:
        raise ConfigurationError(f"t must be >= 1, got {t}")
    return t - 1


@dataclass(frozen=True)
class LengthSensitivity:
    """Section 5-H: conflict-free family counts by scheme and length."""

    lambda_exponent: int
    t: int
    ordered_any_length: int
    proposed_any_length: int
    proposed_fixed_length: int


def families_vs_length(lambda_exponent: int, t: int) -> LengthSensitivity:
    """The 5-H comparison for an unmatched memory with ``m = 2t``.

    * ordered access: at most ``t + 1`` families, any length;
    * proposed scheme, arbitrary length: only the 2 families ``x = s``
      and ``x = y`` (whose canonical access is already conflict-free);
    * proposed scheme, ``L = 2**lambda``: ``2(lambda - t + 1)`` families.
    """
    _check(lambda_exponent, t)
    return LengthSensitivity(
        lambda_exponent=lambda_exponent,
        t=t,
        ordered_any_length=t + 1,
        proposed_any_length=2,
        proposed_fixed_length=2 * (lambda_exponent - t + 1),
    )


def _check(lambda_exponent: int, t: int) -> None:
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    if lambda_exponent < t:
        raise ConfigurationError(
            f"lambda must be >= t (lambda={lambda_exponent}, t={t})"
        )
