"""Design-space sweeps: windows, fractions and efficiencies over (lambda, t).

The paper evaluates two design points (L=128 with T=8, matched and
unmatched).  These helpers sweep the surrounding space so the bench
`bench_design_space.py` can show how the window, the covered stride
fraction and the efficiency scale with register length and memory speed
ratio — and where the proposed scheme's advantage over ordered access
grows or shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.efficiency import efficiency
from repro.core.families import window_fraction
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DesignRow:
    """One (lambda, t) point of the design-space sweep."""

    lambda_exponent: int
    t: int
    matched_window: int  # families, matched out-of-order
    unmatched_window: int  # families, unmatched out-of-order
    ordered_matched_window: int  # families, ordered s=0 matched
    matched_fraction: Fraction
    unmatched_fraction: Fraction
    matched_efficiency: Fraction
    unmatched_efficiency: Fraction
    ordered_matched_efficiency: Fraction

    @property
    def vector_length(self) -> int:
        return 1 << self.lambda_exponent

    @property
    def advantage(self) -> float:
        """Proposed-matched over ordered-matched efficiency ratio."""
        return float(self.matched_efficiency / self.ordered_matched_efficiency)


def design_row(lambda_exponent: int, t: int) -> DesignRow:
    """Closed-form design summary for one (lambda, t)."""
    if t < 0 or lambda_exponent < t:
        raise ConfigurationError(
            f"need lambda >= t >= 0 (lambda={lambda_exponent}, t={t})"
        )
    w_matched = lambda_exponent - t
    w_unmatched = 2 * (lambda_exponent - t) + 1
    return DesignRow(
        lambda_exponent=lambda_exponent,
        t=t,
        matched_window=w_matched + 1,
        unmatched_window=w_unmatched + 1,
        ordered_matched_window=1,
        matched_fraction=window_fraction(w_matched),
        unmatched_fraction=window_fraction(w_unmatched),
        matched_efficiency=efficiency(w_matched, t),
        unmatched_efficiency=efficiency(w_unmatched, t),
        ordered_matched_efficiency=efficiency(0, t),
    )


def sweep_lambda(t: int, lambda_range: range) -> list[DesignRow]:
    """Fix the memory speed ratio, sweep the register length."""
    return [design_row(lam, t) for lam in lambda_range if lam >= t]


def sweep_t(lambda_exponent: int, t_range: range) -> list[DesignRow]:
    """Fix the register length, sweep the memory speed ratio."""
    return [
        design_row(lambda_exponent, t)
        for t in t_range
        if 0 <= t <= lambda_exponent
    ]


@dataclass(frozen=True)
class SweepSpec:
    """A batchable, hashable design-space sweep.

    ``axis`` selects which exponent varies (``"lambda"`` or ``"t"``)
    while ``fixed`` pins the other one; ``start``/``stop`` bound the
    varying exponent like ``range`` (stop exclusive).  Being a frozen
    dataclass of ints and strings, a spec can be hashed into a
    content-addressed cache key and shipped to a worker process, which
    is how ``repro.lab`` schedules sweeps as jobs.
    """

    axis: str
    fixed: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.axis not in ("lambda", "t"):
            raise ConfigurationError(
                f"sweep axis must be 'lambda' or 't', got {self.axis!r}"
            )
        if self.start >= self.stop:
            raise ConfigurationError(
                f"empty sweep range [{self.start}, {self.stop})"
            )
        # The varying exponent is further filtered against the fixed one
        # (lambda >= t >= 0 always); reject specs whose feasible
        # sub-range is empty, which would otherwise cache a silently
        # empty table.
        if self.fixed < 0:
            raise ConfigurationError(
                f"fixed exponent must be non-negative, got {self.fixed}"
            )
        if self.axis == "lambda" and self.stop - 1 < max(self.start, self.fixed):
            raise ConfigurationError(
                f"no lambda in [{self.start}, {self.stop}) is >= t={self.fixed}"
            )
        if self.axis == "t" and max(self.start, 0) > min(
            self.stop - 1, self.fixed
        ):
            raise ConfigurationError(
                f"no t in [{self.start}, {self.stop}) lies in "
                f"[0, lambda={self.fixed}]"
            )

    def design_rows(self) -> list[DesignRow]:
        if self.axis == "lambda":
            return sweep_lambda(self.fixed, range(self.start, self.stop))
        return sweep_t(self.fixed, range(self.start, self.stop))

    def table(self) -> tuple[list[str], list[list]]:
        """Headers plus primitive-celled rows, ready for rendering."""
        headers = [
            "lambda",
            "L",
            "t",
            "matched window",
            "unmatched window",
            "matched f",
            "unmatched f",
            "matched eta",
            "unmatched eta",
            "ordered eta",
            "advantage",
        ]
        rows = [
            [
                row.lambda_exponent,
                row.vector_length,
                row.t,
                row.matched_window,
                row.unmatched_window,
                float(row.matched_fraction),
                float(row.unmatched_fraction),
                float(row.matched_efficiency),
                float(row.unmatched_efficiency),
                float(row.ordered_matched_efficiency),
                row.advantage,
            ]
            for row in self.design_rows()
        ]
        return headers, rows

    def describe(self) -> str:
        other = "t" if self.axis == "lambda" else "lambda"
        return (
            f"sweep {self.axis} in [{self.start}, {self.stop}) "
            f"with {other}={self.fixed}"
        )

    def scenario_specs(self, stride: int = 3):
        """The sweep's design points as simulate-able scenario specs.

        Materialises each analytic :class:`DesignRow` as one
        :class:`repro.scenarios.ScenarioSpec` — the recommended matched
        machine (``s = lambda - t``, floored at ``t`` where Eq. (1)
        requires it) driving a stride-``stride * 2**s`` vector of
        length ``2**lambda``.  This is the bridge between the
        closed-form sweep tables and the simulator: the same grid of
        ``(lambda, t)`` points, now runnable (and lab-cacheable) as
        data.
        """
        from repro.core.windows import recommended_s
        from repro.scenarios import ComponentSpec, MemorySpec, ScenarioSpec

        specs = []
        for row in self.design_rows():
            s = max(recommended_s(row.lambda_exponent, row.t), row.t)
            specs.append(
                ScenarioSpec(
                    mapping=ComponentSpec.of("matched-xor", t=row.t, s=s),
                    memory=MemorySpec(t=row.t),
                    workload=ComponentSpec.of(
                        "strided",
                        stride=stride * (1 << s),
                        length=row.vector_length,
                    ),
                    name=f"{self.axis}-sweep-lam{row.lambda_exponent}-t{row.t}",
                )
            )
        return specs


#: The sweeps `bench_design_space.py` reports, as declarative specs.
STANDARD_SWEEPS: tuple[SweepSpec, ...] = (
    SweepSpec(axis="lambda", fixed=3, start=3, stop=11),
    SweepSpec(axis="t", fixed=7, start=0, stop=8),
)


def efficiency_crossover_t(lambda_exponent: int) -> int | None:
    """Smallest ``t`` at which the proposed matched scheme's efficiency
    drops below 0.9 — i.e. where the register stops being long enough to
    hide the memory's slowness.  None if it never drops within range."""
    for t in range(0, lambda_exponent + 1):
        row = design_row(lambda_exponent, t)
        if float(row.matched_efficiency) < 0.9:
            return t
    return None
