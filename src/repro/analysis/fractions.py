"""Fraction of conflict-free strides — Section 5-A.

The fraction of strides in family ``x`` is ``2**-(x+1)``, so a window of
families ``0..w`` covers ``f = 1 - 2**-(w+1)`` of all strides.  The
paper's two design points:

* matched, ``L=128, T=8`` (``w = lambda - t = 4``): ``f = 31/32``;
* unmatched, ``M=64`` (``w = 2(lambda-t)+1 = 9``): ``f = 1023/1024``.

Both closed forms and a seeded Monte-Carlo estimator (over uniformly
drawn integer strides, checked against the planner's actual verdicts)
are provided; experiment E08 prints both.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.families import family_of, window_fraction
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import VectorSpecError


def conflict_free_fraction(window_high: int) -> Fraction:
    """``f = 1 - 2**-(w+1)`` for a window ``0..w`` (Section 5-A)."""
    return window_fraction(window_high)


def matched_design_fraction(lambda_exponent: int, t: int) -> Fraction:
    """Fraction for the recommended matched design (``w = lambda - t``)."""
    if lambda_exponent < t:
        raise VectorSpecError(
            f"lambda must be >= t (lambda={lambda_exponent}, t={t})"
        )
    return conflict_free_fraction(lambda_exponent - t)


def unmatched_design_fraction(lambda_exponent: int, t: int) -> Fraction:
    """Fraction for the recommended unmatched design
    (``w = 2(lambda - t) + 1``)."""
    if lambda_exponent < t:
        raise VectorSpecError(
            f"lambda must be >= t (lambda={lambda_exponent}, t={t})"
        )
    return conflict_free_fraction(2 * (lambda_exponent - t) + 1)


def monte_carlo_fraction(
    planner: AccessPlanner,
    length: int,
    samples: int = 2000,
    max_stride_bits: int = 16,
    seed: int = 0,
) -> float:
    """Empirical conflict-free fraction over uniform random strides.

    Draws strides uniformly from ``[1, 2**max_stride_bits]`` (under which
    family ``x`` naturally occurs with probability ``~2**-(x+1)``),
    random bases, plans each access in ``auto`` mode and counts the
    conflict-free outcomes.
    """
    rng = random.Random(seed)
    hits = 0
    space = planner.mapping.address_space
    for _ in range(samples):
        stride = rng.randrange(1, (1 << max_stride_bits) + 1)
        base = rng.randrange(space)
        plan = planner.plan(VectorAccess(base, stride, length), mode="auto")
        if plan.conflict_free:
            hits += 1
    return hits / samples


def family_histogram(
    samples: int = 10000, max_stride_bits: int = 16, seed: int = 0
) -> dict[int, float]:
    """Observed family frequencies of uniform strides (sanity check that
    the ``2**-(x+1)`` weighting matches uniform integer draws)."""
    rng = random.Random(seed)
    counts: dict[int, int] = {}
    for _ in range(samples):
        stride = rng.randrange(1, (1 << max_stride_bits) + 1)
        family = family_of(stride)
        counts[family] = counts.get(family, 0) + 1
    return {family: count / samples for family, count in sorted(counts.items())}
