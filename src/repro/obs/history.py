"""Cross-run history: a SQLite index of manifests and bench artifacts.

``repro lab diff`` compares exactly two runs and the CI perf artifacts
(``BENCH_*.json``) were write-only; this module is the missing memory.
A :class:`HistoryDB` ingests

* **run manifests** (``runs/<run-id>/manifest.json``) — every job's
  elapsed time plus, for scenario jobs, every ``metric_rows()`` scalar
  (``total_cycles``, ``efficiency``, ``overlap_fraction``, ...) decoded
  from the job's artifact record, and the run-level metrics block
  (cache-hit rate, batch engine tier counts, plan-cache hits) under
  the reserved job id ``__run__``;
* **pytest-benchmark JSON** (``BENCH_simulator_perf.json``) — per-bench
  mean/min wall seconds, ordered by the ``repro_meta`` stamp
  (git commit + package version + timestamp) that
  ``benchmarks/conftest.py`` injects.

Everything lands in two tables.  ``runs`` records each ingested run's
identity (commit, package version, source fingerprint, backend);
``metrics`` holds one row per (run, job, metric) keyed alongside the
job's config hash and source fingerprint, so a metric series can be
split by code identity.  Ingestion is idempotent — rows are upserted
under their natural key — so re-scanning a lab root is always safe.

``repro lab history`` is the CLI face: ``--metric`` renders a trend,
``--flag-regressions`` compares each series' latest point against its
best-ever value with a direction-aware tolerance (reusing the metric
direction vocabulary of :mod:`repro.scenarios.diff`) and drives a
non-zero exit status for CI gating.

Imports from :mod:`repro.lab` are deliberately lazy: the kernel imports
:mod:`repro.obs` at interpreter start, and the lab layer sits above the
simulators, not below them.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import subprocess
from contextlib import closing
from pathlib import Path

__all__ = [
    "HistoryDB",
    "HISTORY_FILENAME",
    "current_git_commit",
    "metric_direction",
]

#: Default history DB filename inside a lab root.
HISTORY_FILENAME = "history.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    created_at TEXT NOT NULL DEFAULT '',
    kind TEXT NOT NULL DEFAULT 'lab',
    git_commit TEXT NOT NULL DEFAULT '',
    package_version TEXT NOT NULL DEFAULT '',
    source_fingerprint TEXT NOT NULL DEFAULT '',
    backend TEXT NOT NULL DEFAULT '',
    job_count INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    job_id TEXT NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL,
    scenario TEXT NOT NULL DEFAULT '',
    config_hash TEXT NOT NULL DEFAULT '',
    source_fingerprint TEXT NOT NULL DEFAULT '',
    created_at TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (run_id, job_id, metric)
);
CREATE INDEX IF NOT EXISTS idx_metrics_metric
    ON metrics (metric, created_at);
"""

#: Bench/lab metric names (beyond the scenario vocabulary) where
#: smaller is better.  Everything wall-clock shaped regresses upward.
_LOWER_IS_BETTER_EXTRA = frozenset(
    {
        "total_cycles",
        "elapsed_seconds",
        "mean_seconds",
        "min_seconds",
        "max_seconds",
        "median_seconds",
    }
)

_HIGHER_IS_BETTER_EXTRA = frozenset(
    {"all_passed", "cache_hit_rate", "ops", "numerically_correct"}
)


def metric_direction(metric: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (direction-free).

    Defers to the scenario diff vocabulary (stripped of its ``extra:``
    prefixes) and extends it with the wall-clock metrics history
    ingests from manifests and bench JSON; unknown metrics get a suffix
    heuristic (``*_seconds``/``*_cycles``/``*_stalls`` regress upward)
    and otherwise stay unflaggable rather than guessing a direction.
    """
    from repro.scenarios.diff import (
        HIGHER_IS_WORSE,
        LOWER_IS_WORSE,
        MUST_STAY_TRUE,
    )

    def _strip(names) -> set[str]:
        return {name.split(":", 1)[-1] for name in names}

    if metric in _strip(HIGHER_IS_WORSE) | _LOWER_IS_BETTER_EXTRA:
        return "lower"
    if (
        metric
        in _strip(LOWER_IS_WORSE)
        | _strip(MUST_STAY_TRUE)
        | _HIGHER_IS_BETTER_EXTRA
    ):
        return "higher"
    if metric.endswith(("_seconds", "_cycles", "_stalls", "_latency")):
        return "lower"
    return None


_COMMIT_CACHE: dict[str, str] = {}


def current_git_commit(cwd: str | Path | None = None) -> str:
    """The source checkout's commit hash, or ``""`` outside a repo.

    Prefers ``$GITHUB_SHA`` (set in CI even for shallow checkouts),
    then asks ``git rev-parse`` in ``cwd`` — defaulting to the
    installed ``repro`` package's own directory, so lab runs launched
    from a scratch directory still stamp the commit of the *code* that
    produced them; cached per directory since a process never changes
    commit mid-run.
    """
    env_sha = os.environ.get("GITHUB_SHA", "")
    if env_sha:
        return env_sha
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    key = str(Path(cwd).resolve())
    if key in _COMMIT_CACHE:
        return _COMMIT_CACHE[key]
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=False,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        commit = ""
    _COMMIT_CACHE[key] = commit
    return commit


def _numeric(value) -> float | None:
    """Booleans become 0/1; other non-numbers are not metrics."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


class HistoryDB:
    """The ``runs`` + ``metrics`` cross-run index, one SQLite file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path)
        connection.executescript(_SCHEMA)
        return connection

    # -- ingestion -------------------------------------------------------

    def ingest_manifest(self, manifest_path: str | Path, store=None) -> int:
        """Upsert one run manifest (and its jobs' artifact metrics).

        ``store`` is the :class:`~repro.lab.store.ArtifactStore` the
        manifest belongs to; when omitted it is derived from the
        manifest's ``<root>/runs/<run-id>/manifest.json`` location.
        Returns the number of metric rows upserted (0 for an unreadable
        or id-less manifest).
        """
        from repro.lab.hashing import decode_rows
        from repro.lab.store import ArtifactStore

        path = Path(manifest_path)
        try:
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return 0
        if not isinstance(manifest, dict) or "run_id" not in manifest:
            return 0
        if store is None and len(path.parents) >= 3:
            store = ArtifactStore(path.parents[2])
        run_id = manifest["run_id"]
        created = manifest.get("created_at", "")
        run_metrics = manifest.get("metrics", {})
        backend = ""
        if isinstance(run_metrics, dict):
            backend = str(run_metrics.get("backend", ""))
        fingerprint = ""
        rows: list[tuple] = []
        for job in manifest.get("jobs", []):
            job_id = job.get("job_id", "")
            address = job.get("config_hash", "")
            scenario = ""
            job_fingerprint = ""
            record = store.load(address) if store is not None else None
            if record is not None:
                config = record.get("config", {})
                if isinstance(config, dict):
                    job_fingerprint = config.get("source_fingerprint", "")
                    fingerprint = fingerprint or job_fingerprint
                    scenario = _scenario_name(config)
                if record.get("headers") == ["metric", "value"]:
                    try:
                        decoded = decode_rows(record.get("rows", []))
                    except Exception:
                        decoded = []
                    for row in decoded:
                        if len(row) != 2:
                            continue
                        value = _numeric(row[1])
                        if value is None:
                            continue
                        metric = str(row[0])
                        if metric.startswith("extra:"):
                            metric = metric[len("extra:"):]
                        rows.append(
                            (
                                run_id,
                                job_id,
                                metric,
                                value,
                                scenario,
                                address,
                                job_fingerprint,
                                created,
                            )
                        )
            elapsed = _numeric(job.get("elapsed_seconds"))
            if elapsed is not None:
                rows.append(
                    (
                        run_id,
                        job_id,
                        "elapsed_seconds",
                        elapsed,
                        scenario,
                        address,
                        job_fingerprint,
                        created,
                    )
                )
        # Run-level manifest metrics (cache-hit rate, queue latencies,
        # batch tier counts like batch_fallback / plan_cache_hits) were
        # previously written to manifest.json and then dropped at
        # ingest, so `lab history` could never trend a run's tier mix.
        # They land under the reserved job id "__run__" — no real job
        # id collides (job ids come from sanitised scenario names) and
        # the trend/regression queries need no special casing.
        if isinstance(run_metrics, dict):
            for metric, raw in sorted(run_metrics.items()):
                value = _numeric(raw)
                if value is None:
                    continue
                rows.append(
                    (
                        run_id,
                        "__run__",
                        metric,
                        value,
                        "",
                        "",
                        fingerprint,
                        created,
                    )
                )
        # Manifests written outside a git checkout (tarball installs,
        # detached workers) carry a null/missing git_commit; the runs
        # table column is NOT NULL, so stamp "unknown" and keep the row
        # rather than crashing the whole ingest.
        commit = manifest.get("git_commit")
        if not isinstance(commit, str) or not commit:
            commit = "unknown"
        with closing(self._connect()) as connection, connection:
            connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, created_at, kind, "
                "git_commit, package_version, source_fingerprint, backend, "
                "job_count) VALUES (?, ?, 'lab', ?, ?, ?, ?, ?)",
                (
                    run_id,
                    created,
                    commit,
                    manifest.get("package_version", ""),
                    fingerprint,
                    backend,
                    len(manifest.get("jobs", [])),
                ),
            )
            connection.executemany(
                "INSERT OR REPLACE INTO metrics (run_id, job_id, metric, "
                "value, scenario, config_hash, source_fingerprint, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def ingest_store(self, store) -> dict:
        """Scan a lab root's ``runs/`` directory; returns counts."""
        manifests = 0
        metrics = 0
        runs_dir = getattr(store, "runs_dir", None)
        if runs_dir is not None and Path(runs_dir).is_dir():
            for path in sorted(Path(runs_dir).glob("*/manifest.json")):
                count = self.ingest_manifest(path, store=store)
                manifests += 1
                metrics += count
        return {"manifests": manifests, "metrics": metrics}

    def ingest_bench(self, bench_path: str | Path) -> int:
        """Upsert one pytest-benchmark JSON artifact.

        Run identity comes from the ``repro_meta`` stamp when present
        (git commit + timestamp), falling back to pytest-benchmark's
        own ``commit_info``/``datetime``; the run id also folds in a
        content digest, so re-ingesting the same file is idempotent
        while distinct bench runs never collide.
        """
        path = Path(bench_path)
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return 0
        benches = data.get("benchmarks") if isinstance(data, dict) else None
        if not isinstance(benches, list):
            return 0
        meta = data.get("repro_meta", {})
        if not isinstance(meta, dict):
            meta = {}
        commit_info = data.get("commit_info", {})
        if not isinstance(commit_info, dict):
            commit_info = {}
        commit = meta.get("git_commit") or commit_info.get("id") or ""
        created = (
            meta.get("created_at")
            or commit_info.get("time")
            or data.get("datetime")
            or ""
        )
        digest = hashlib.sha256(
            json.dumps(data, sort_keys=True, default=str).encode()
        ).hexdigest()
        run_id = f"bench-{created or 'unstamped'}-{digest[:10]}"
        fingerprint = meta.get("source_fingerprint", "")
        rows: list[tuple] = []
        for bench in benches:
            if not isinstance(bench, dict):
                continue
            name = bench.get("name", "")
            stats = bench.get("stats", {})
            if not name or not isinstance(stats, dict):
                continue
            for metric in ("mean", "min", "max", "median"):
                value = _numeric(stats.get(metric))
                if value is not None:
                    rows.append(
                        (
                            run_id,
                            name,
                            f"{metric}_seconds",
                            value,
                            "",
                            "",
                            fingerprint,
                            created,
                        )
                    )
        with closing(self._connect()) as connection, connection:
            connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, created_at, kind, "
                "git_commit, package_version, source_fingerprint, backend, "
                "job_count) VALUES (?, ?, 'bench', ?, ?, ?, '', ?)",
                (
                    run_id,
                    created,
                    commit,
                    meta.get("package_version", ""),
                    fingerprint,
                    len(benches),
                ),
            )
            connection.executemany(
                "INSERT OR REPLACE INTO metrics (run_id, job_id, metric, "
                "value, scenario, config_hash, source_fingerprint, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def ingest_path(self, target: str | Path, store=None) -> int:
        """Dispatch by shape: run dir, manifest, lab root, or bench JSON.

        Returns metric rows upserted.  Unrecognised paths ingest 0 rows
        rather than raising — the CLI reports the count, which makes a
        misspelt path visible without killing a batch ingest.
        """
        path = Path(target)
        if path.is_dir():
            if (path / "manifest.json").is_file():
                return self.ingest_manifest(path / "manifest.json", store)
            if (path / "runs").is_dir():
                from repro.lab.store import ArtifactStore

                return self.ingest_store(ArtifactStore(path))["metrics"]
            return 0
        if not path.is_file():
            return 0
        if path.name == "manifest.json":
            return self.ingest_manifest(path, store)
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return 0
        if isinstance(data, dict) and "benchmarks" in data:
            return self.ingest_bench(path)
        if isinstance(data, dict) and "run_id" in data:
            return self.ingest_manifest(path, store)
        return 0

    # -- queries ---------------------------------------------------------

    def runs(self) -> list[dict]:
        """Every ingested run, oldest first."""
        if not self.path.is_file():
            return []
        with closing(self._connect()) as connection:
            connection.row_factory = sqlite3.Row
            rows = connection.execute(
                "SELECT * FROM runs ORDER BY created_at, run_id"
            ).fetchall()
        return [dict(row) for row in rows]

    def metric_names(self) -> list[tuple[str, int]]:
        """``(metric, point count)`` pairs, alphabetical."""
        if not self.path.is_file():
            return []
        with closing(self._connect()) as connection:
            rows = connection.execute(
                "SELECT metric, COUNT(*) FROM metrics GROUP BY metric "
                "ORDER BY metric"
            ).fetchall()
        return [(metric, count) for metric, count in rows]

    def trend(
        self,
        metric: str,
        *,
        scenario: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """The metric's points in time order, joined with run identity.

        ``scenario`` is a substring filter over both the scenario name
        and the job id (bench series have no scenario, only a name).
        ``limit`` keeps only the newest N points.
        """
        if not self.path.is_file():
            return []
        query = (
            "SELECT m.run_id, m.job_id, m.metric, m.value, m.scenario, "
            "m.config_hash, m.created_at, r.git_commit, r.package_version, "
            "r.kind FROM metrics m LEFT JOIN runs r USING (run_id) "
            "WHERE m.metric = ?"
        )
        params: list = [metric]
        if scenario:
            query += " AND (m.scenario LIKE ? OR m.job_id LIKE ?)"
            params += [f"%{scenario}%", f"%{scenario}%"]
        query += " ORDER BY m.created_at, m.run_id, m.job_id"
        with closing(self._connect()) as connection:
            connection.row_factory = sqlite3.Row
            rows = [dict(row) for row in connection.execute(query, params)]
        if limit is not None and limit >= 0:
            rows = rows[-limit:]
        return rows

    def flag_regressions(
        self,
        *,
        metric: str | None = None,
        scenario: str | None = None,
        tolerance: float = 0.05,
        absolute_floor: float = 0.0,
    ) -> list[dict]:
        """Series whose latest point is worse than best-ever + tolerance.

        A series is one ``(job_id, metric)`` pair across runs; it needs
        at least two points (one run cannot regress against itself) and
        a known metric direction (see :func:`metric_direction`).  The
        tolerance is relative to the best value; a zero best has no
        scale for a relative band, so it gets the ``absolute_floor``
        slack instead — ``0.0`` by default, meaning any strictly worse
        move off a perfect zero (stalls, waits, diff counts) is
        flagged.  (Earlier versions silently reused ``tolerance`` as
        that absolute band, so a stall count creeping from 0 to 0.05
        was never reported.)
        """
        if not self.path.is_file():
            return []
        query = (
            "SELECT m.job_id, m.metric, m.value, m.run_id, m.scenario, "
            "m.created_at FROM metrics m WHERE 1=1"
        )
        params: list = []
        if metric:
            query += " AND m.metric = ?"
            params.append(metric)
        if scenario:
            query += " AND (m.scenario LIKE ? OR m.job_id LIKE ?)"
            params += [f"%{scenario}%", f"%{scenario}%"]
        query += " ORDER BY m.created_at, m.run_id"
        with closing(self._connect()) as connection:
            connection.row_factory = sqlite3.Row
            rows = [dict(row) for row in connection.execute(query, params)]
        series: dict[tuple[str, str], list[dict]] = {}
        for row in rows:
            series.setdefault((row["job_id"], row["metric"]), []).append(row)
        flagged: list[dict] = []
        for (job_id, name), points in sorted(series.items()):
            if len(points) < 2:
                continue
            direction = metric_direction(name)
            if direction is None:
                continue
            values = [point["value"] for point in points]
            latest = points[-1]
            best = min(values) if direction == "lower" else max(values)
            slack = abs(best) * tolerance if best != 0 else absolute_floor
            if direction == "lower":
                regressed = latest["value"] > best + slack
            else:
                regressed = latest["value"] < best - slack
            if regressed:
                flagged.append(
                    {
                        "job_id": job_id,
                        "metric": name,
                        "scenario": latest["scenario"],
                        "direction": direction,
                        "best": best,
                        "latest": latest["value"],
                        "run_id": latest["run_id"],
                        "created_at": latest["created_at"],
                        "points": len(points),
                    }
                )
        return flagged


def _scenario_name(config: dict) -> str:
    """The scenario name embedded in a scenario job's config params."""
    params = config.get("params")
    if not isinstance(params, dict):
        return ""
    spec_text = params.get("spec")
    if not isinstance(spec_text, str):
        return ""
    try:
        spec = json.loads(spec_text)
    except json.JSONDecodeError:
        return ""
    if isinstance(spec, dict):
        return str(spec.get("name", "") or "")
    return ""
