"""Zero-cost-when-disabled cycle-level event tracing.

The simulators are cycle-accurate but, until now, only their *totals*
escaped: a :class:`~repro.memory.kernel.KernelRun` says how many cycles
the run took, not which module was busy when.  This module defines the
event vocabulary the kernel, the decoupled machine and the program
engine speak, and the export path into Chrome/Perfetto ``trace_event``
JSON so any run can be opened in a timeline viewer.

Design constraints, in order of importance:

1. **Disabled tracing must cost nothing.**  Every instrumented call
   site is guarded by ``tracer.enabled`` (a plain class attribute, no
   property) or holds the :data:`NULL_TRACER` singleton whose methods
   are empty.  The kernel goes further: it derives its events *after*
   the hot cycle loop from the per-request timing records it already
   materialises, so the loop itself is byte-identical with tracing on
   or off.
2. **Cycles are the clock.**  Events carry simulated cycle numbers,
   never wall time.  The Chrome exporter maps one cycle to one
   microsecond (``ts``/``dur`` are microseconds in the trace_event
   spec), which renders nicely in Perfetto at any zoom.
3. **Tracks are strings.**  A track is ``"group/name"`` —
   ``"memory/module 3"``, ``"ports/port 0"``, ``"streams/a"``,
   ``"machine/memory"`` — and the exporter turns groups into trace
   processes and names into threads, so related lanes nest in the
   viewer without the emitters coordinating pids.

Three event kinds cover everything the simulators want to say:

* ``span`` — an activity with a start and end cycle (a request
  occupying a module, an instruction occupying a unit);
* ``instant`` — a point event (an address issued on a port, a result
  delivered);
* ``counter`` — a sampled value (requests in flight).

Offsets: composite simulations (a program whose memory batches each run
the kernel from relative cycle 1) shift sub-tracers with
:meth:`Tracer.shifted` instead of rebasing every call site.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "chrome_trace_events",
    "resolve_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Event-tuple layout: ``(kind, track, name, start, end, args)``.
KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_COUNTER = "counter"


class NullTracer:
    """The do-nothing tracer: every emit is a no-op, ``enabled`` is False.

    Instrumented code holds one of these (via :func:`resolve_tracer`)
    instead of branching on ``None`` everywhere; hot paths that want to
    skip even the call overhead check ``tracer.enabled`` once.
    """

    __slots__ = ()

    enabled = False

    def span(self, track, name, begin, end, **args) -> None:
        pass

    def instant(self, track, name, at, **args) -> None:
        pass

    def counter(self, track, name, at, value) -> None:
        pass

    def shifted(self, offset: int) -> "NullTracer":
        return self


#: Shared do-nothing instance; identity-comparable (`tracer is NULL_TRACER`).
NULL_TRACER = NullTracer()


def resolve_tracer(tracer) -> "Tracer | NullTracer":
    """``None`` -> the null tracer; anything else passes through."""
    return NULL_TRACER if tracer is None else tracer


class Tracer:
    """Collects cycle-stamped events as plain tuples.

    Events accumulate in :attr:`events` as
    ``(kind, track, name, start_cycle, end_cycle, args)`` tuples —
    cheap to append, trivial to assert on in tests, and converted to
    Chrome ``trace_event`` dicts only at export time.
    """

    __slots__ = ("events",)

    enabled = True

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def span(
        self, track: str, name: str, begin: int, end: int, **args
    ) -> None:
        """An activity occupying ``track`` from cycle ``begin`` through
        ``end`` inclusive (closed interval).  The positional names are
        deliberately terse so emitters can pass domain kwargs like
        ``start_cycle`` through ``args`` without collisions."""
        self.events.append((KIND_SPAN, track, name, begin, end, args))

    def instant(self, track: str, name: str, at: int, **args) -> None:
        """A point event at cycle ``at`` on ``track``."""
        self.events.append((KIND_INSTANT, track, name, at, at, args))

    def counter(self, track: str, name: str, at: int, value) -> None:
        """A sampled counter value at cycle ``at``."""
        self.events.append(
            (KIND_COUNTER, track, name, at, at, {name: value})
        )

    def shifted(self, offset: int) -> "Tracer | _ShiftedTracer":
        """A view of this tracer with ``offset`` added to every cycle.

        Sub-simulations that count from their own cycle 1 (each kernel
        invocation inside a program run) emit through a shifted view so
        their events land at absolute program cycles.
        """
        if offset == 0:
            return self
        return _ShiftedTracer(self, offset)

    # -- inspection helpers (tests and exporters) ----------------------

    def spans(self, track_prefix: str = "") -> list[tuple]:
        """All span events, optionally filtered by track prefix."""
        return [
            event
            for event in self.events
            if event[0] == KIND_SPAN and event[1].startswith(track_prefix)
        ]

    def instants(self, track_prefix: str = "") -> list[tuple]:
        """All instant events, optionally filtered by track prefix."""
        return [
            event
            for event in self.events
            if event[0] == KIND_INSTANT and event[1].startswith(track_prefix)
        ]


class _ShiftedTracer:
    """Proxy adding a constant cycle offset to every emitted event."""

    __slots__ = ("_base", "_offset")

    enabled = True

    def __init__(self, base, offset: int) -> None:
        self._base = base
        self._offset = offset

    def span(self, track, name, begin, end, **args) -> None:
        self._base.span(
            track, name, begin + self._offset, end + self._offset, **args
        )

    def instant(self, track, name, at, **args) -> None:
        self._base.instant(track, name, at + self._offset, **args)

    def counter(self, track, name, at, value) -> None:
        self._base.counter(track, name, at + self._offset, value)

    def shifted(self, offset: int):
        if offset == 0:
            return self
        return _ShiftedTracer(self._base, self._offset + offset)


def _split_track(track: str) -> tuple[str, str]:
    """``"group/name"`` -> (process, thread); bare tracks are their own
    process with a same-named thread."""
    if "/" in track:
        group, _, lane = track.partition("/")
        return group, lane
    return track, track


def chrome_trace_events(tracer) -> list[dict]:
    """Convert collected events to Chrome ``trace_event`` dicts.

    Track groups become trace processes and lanes become threads, both
    announced with ``ph:"M"`` metadata events so viewers show readable
    names.  One simulated cycle maps to one microsecond; spans are
    ``ph:"X"`` complete events whose ``dur`` covers the closed cycle
    interval (a one-cycle span has ``dur`` 1).
    """
    tracks = sorted({event[1] for event in tracer.events})
    pids: dict[str, int] = {}
    tids: dict[str, tuple[int, int]] = {}
    out: list[dict] = []
    for track in tracks:
        process, lane = _split_track(track)
        if process not in pids:
            pids[process] = len(pids) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        pid = pids[process]
        tid = 1 + sum(1 for key in tids if tids[key][0] == pid)
        tids[track] = (pid, tid)
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for kind, track, name, start, end, args in tracer.events:
        pid, tid = tids[track]
        if kind == KIND_SPAN:
            out.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": _split_track(track)[0],
                    "pid": pid,
                    "tid": tid,
                    "ts": start,
                    "dur": end - start + 1,
                    "args": dict(args),
                }
            )
        elif kind == KIND_INSTANT:
            out.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": name,
                    "cat": _split_track(track)[0],
                    "pid": pid,
                    "tid": tid,
                    "ts": start,
                    "args": dict(args),
                }
            )
        else:  # counter
            out.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": pid,
                    "tid": tid,
                    "ts": start,
                    "args": dict(args),
                }
            )
    return out


def to_chrome_trace(tracer) -> dict:
    """The full JSON-object form of the Chrome trace format."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated cycles (1 cycle = 1us)"},
    }


def write_chrome_trace(tracer, path) -> Path:
    """Serialise the trace to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(to_chrome_trace(tracer), indent=1, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return target
