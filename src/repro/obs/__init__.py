"""repro.obs — observability: cycle-level tracing and cross-run history.

The simulators answer "how many cycles"; this package answers "what
happened during them" and "how does that compare with every run before".

* :mod:`repro.obs.tracer` — a zero-cost-when-disabled event API.  Hot
  loops accept an optional :class:`Tracer`; when none is supplied the
  :data:`NULL_TRACER` singleton short-circuits every call, so the
  instrumented code paths cost nothing in the common case.  Collected
  events export as Chrome/Perfetto ``trace_event`` JSON
  (``repro scenario run --trace out.json``) for timeline viewers.
* :mod:`repro.obs.history` — a SQLite index of run manifests and
  ``BENCH_*.json`` artifacts (``runs`` / ``metrics`` tables keyed by
  config hash + source fingerprint), powering ``repro lab history``
  trends and regression flagging.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    resolve_tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.history import HistoryDB, current_git_commit

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "HistoryDB",
    "chrome_trace_events",
    "current_git_commit",
    "resolve_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
]
