"""repro.obs — observability: cycle-level tracing and cross-run history.

The simulators answer "how many cycles"; this package answers "what
happened during them" and "how does that compare with every run before".

* :mod:`repro.obs.tracer` — a zero-cost-when-disabled event API.  Hot
  loops accept an optional :class:`Tracer`; when none is supplied the
  :data:`NULL_TRACER` singleton short-circuits every call, so the
  instrumented code paths cost nothing in the common case.  Collected
  events export as Chrome/Perfetto ``trace_event`` JSON
  (``repro scenario run --trace out.json``) for timeline viewers.
* :mod:`repro.obs.history` — a SQLite index of run manifests and
  ``BENCH_*.json`` artifacts (``runs`` / ``metrics`` tables keyed by
  config hash + source fingerprint), powering ``repro lab history``
  trends and regression flagging.
* :func:`cache_stats` — one snapshot of the process-wide memoization
  counters (the planner's plan cache and the scenario facade's machine
  templates), the numbers behind ``plan_cache_hits`` in batch reports.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    resolve_tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.history import HistoryDB, current_git_commit

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "HistoryDB",
    "cache_stats",
    "chrome_trace_events",
    "current_git_commit",
    "resolve_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
]


def cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for every process-wide memoization cache.

    One flat dict merging the planner's plan cache and the scenario
    facade's machine-template cache — the same counters batch reports
    surface as deltas.  Imported lazily: the facade imports this
    package for tracing, so a module-level import would be circular.
    """
    from repro.core.planner import plan_cache_stats
    from repro.scenarios.facade import machine_cache_stats

    return {**plan_cache_stats(), **machine_cache_stats()}
