"""Workload generators: stride populations and kernel access patterns."""

from repro.workloads.indexed import (
    bit_reversal_indices,
    block_shuffle_indices,
    csr_row_indices,
    histogram_indices,
)
from repro.workloads.kernels import (
    fft_butterfly_accesses,
    matrix_antidiagonal_access,
    matrix_column_accesses,
    matrix_diagonal_access,
    matrix_row_accesses,
    stencil_accesses,
    transpose_block_accesses,
)
from repro.workloads.strides import (
    WeightedStride,
    family_mix,
    realistic_stride_population,
    realistic_strides,
    uniform_strides,
)

__all__ = [
    "WeightedStride",
    "bit_reversal_indices",
    "block_shuffle_indices",
    "csr_row_indices",
    "family_mix",
    "fft_butterfly_accesses",
    "histogram_indices",
    "matrix_antidiagonal_access",
    "matrix_column_accesses",
    "matrix_diagonal_access",
    "matrix_row_accesses",
    "realistic_stride_population",
    "realistic_strides",
    "stencil_accesses",
    "transpose_block_accesses",
    "uniform_strides",
]
