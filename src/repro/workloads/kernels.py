"""Kernel access-pattern generators.

Each generator returns the list of :class:`~repro.core.vector.VectorAccess`
requests a vectorising compiler would emit for a classic kernel, so the
examples and benches exercise the memory system with the address streams
the paper's introduction motivates (matrix columns and diagonals, FFT
butterflies, strided updates).
"""

from __future__ import annotations

from repro.core.vector import VectorAccess
from repro.errors import VectorSpecError


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value < 1:
            raise VectorSpecError(f"{name} must be >= 1, got {value}")


def matrix_row_accesses(rows: int, cols: int, base: int = 0) -> list[VectorAccess]:
    """Row-major matrix, one access per row: stride 1, length ``cols``."""
    _check_positive(rows=rows, cols=cols)
    return [VectorAccess(base + r * cols, 1, cols) for r in range(rows)]


def matrix_column_accesses(
    rows: int, cols: int, base: int = 0
) -> list[VectorAccess]:
    """Row-major matrix, one access per column: stride ``cols``.

    The canonical troublesome pattern when ``cols`` is a power of two —
    the family is ``x = log2(cols)`` and conventional interleaving
    serialises the whole column into one module.
    """
    _check_positive(rows=rows, cols=cols)
    return [VectorAccess(base + c, cols, rows) for c in range(cols)]


def matrix_diagonal_access(n: int, base: int = 0) -> VectorAccess:
    """Main diagonal of a row-major ``n x n`` matrix: stride ``n + 1``."""
    _check_positive(n=n)
    return VectorAccess(base, n + 1, n)


def matrix_antidiagonal_access(n: int, base: int = 0) -> VectorAccess:
    """Anti-diagonal: stride ``n - 1`` starting at the first row's end."""
    if n < 2:
        raise VectorSpecError(f"anti-diagonal needs n >= 2, got {n}")
    return VectorAccess(base + n - 1, n - 1, n)


def fft_butterfly_accesses(
    n: int, stage: int, base: int = 0
) -> list[VectorAccess]:
    """Element accesses of one radix-2 FFT stage.

    Stage ``k`` (0-based) pairs elements ``2**k`` apart: groups of
    ``2**(k+1)`` contain ``2**k`` butterflies.  Vectorised over groups,
    the loads are stride ``2**(k+1)`` vectors of length
    ``n / 2**(k+1)`` — exactly the power-of-two families the XOR window
    must cover.
    """
    _check_positive(n=n)
    if not 0 <= stage < n.bit_length() - 1:
        raise VectorSpecError(
            f"stage {stage} out of range for FFT of size {n}"
        )
    half = 1 << stage
    group = half * 2
    count = n // group
    accesses = []
    for offset in range(half):
        # top and bottom operands of the butterflies at this offset
        accesses.append(VectorAccess(base + offset, group, count))
        accesses.append(VectorAccess(base + offset + half, group, count))
    return accesses


def transpose_block_accesses(
    rows: int, cols: int, block: int, base: int = 0
) -> list[VectorAccess]:
    """Blocked transpose: column reads of each ``block x block`` tile."""
    _check_positive(rows=rows, cols=cols, block=block)
    accesses = []
    for tile_row in range(0, rows, block):
        for tile_col in range(0, cols, block):
            tile_base = base + tile_row * cols + tile_col
            height = min(block, rows - tile_row)
            width = min(block, cols - tile_col)
            for c in range(width):
                accesses.append(VectorAccess(tile_base + c, cols, height))
    return accesses


def stencil_accesses(
    rows: int, cols: int, base: int = 0
) -> list[VectorAccess]:
    """5-point stencil over a row-major grid, vectorised along rows.

    Per interior row: centre, north, south (stride 1) plus west/east
    shifted rows — all unit-stride but differently based, exercising the
    "any initial address" part of the theorems.
    """
    if rows < 3 or cols < 3:
        raise VectorSpecError("stencil needs a grid of at least 3 x 3")
    accesses = []
    width = cols - 2
    for r in range(1, rows - 1):
        row_base = base + r * cols
        accesses.extend(
            [
                VectorAccess(row_base + 1, 1, width),  # centre
                VectorAccess(row_base + 1 - cols, 1, width),  # north
                VectorAccess(row_base + 1 + cols, 1, width),  # south
                VectorAccess(row_base, 1, width),  # west
                VectorAccess(row_base + 2, 1, width),  # east
            ]
        )
    return accesses
