"""Stride populations for benchmarks and Monte-Carlo experiments.

Two populations:

* :func:`uniform_strides` — uniform integers, under which family ``x``
  occurs with probability ``2**-(x+1)`` (the Section 5 assumption);
* :func:`realistic_strides` — a hand-weighted mix of the strides dense
  linear algebra actually generates (unit, matrix leading dimensions,
  diagonals, FFT powers of two), used by the example applications to
  show where the paper's window pays off in practice.

All draws are seeded and reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.families import family_of
from repro.errors import VectorSpecError


def uniform_strides(
    count: int, max_stride_bits: int = 16, seed: int = 0
) -> list[int]:
    """``count`` strides drawn uniformly from ``[1, 2**max_stride_bits]``."""
    if count < 1:
        raise VectorSpecError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    return [rng.randrange(1, (1 << max_stride_bits) + 1) for _ in range(count)]


@dataclass(frozen=True)
class WeightedStride:
    """A stride with its relative frequency and provenance label."""

    stride: int
    weight: float
    source: str

    @property
    def family(self) -> int:
        return family_of(self.stride)


def realistic_stride_population(matrix_dimension: int = 500) -> list[WeightedStride]:
    """Strides of common dense-kernel access patterns.

    For a row-major ``N x N`` matrix: rows are stride 1, columns stride
    ``N``, diagonals stride ``N + 1``; FFT butterflies use powers of two;
    red-black and complex-interleaved data use stride 2.  Weights are a
    plausible kernel mix, not a measurement — the point of the bench is
    how the window covers the *kinds* of strides programs generate.
    """
    n = matrix_dimension
    return [
        WeightedStride(1, 0.40, "unit (rows, saxpy)"),
        WeightedStride(2, 0.10, "complex interleaved / red-black"),
        WeightedStride(n, 0.20, f"matrix column (ld={n})"),
        WeightedStride(n + 1, 0.08, "main diagonal"),
        WeightedStride(n - 1, 0.05, "anti-diagonal"),
        WeightedStride(4, 0.05, "unrolled-by-4 gather"),
        WeightedStride(8, 0.04, "FFT stage 3"),
        WeightedStride(64, 0.03, "FFT stage 6"),
        WeightedStride(512, 0.03, "FFT stage 9"),
        WeightedStride(3 * n, 0.02, "strided column block"),
    ]


def realistic_strides(
    count: int, matrix_dimension: int = 500, seed: int = 0
) -> list[int]:
    """Sample ``count`` strides from the realistic population."""
    if count < 1:
        raise VectorSpecError(f"count must be >= 1, got {count}")
    population = realistic_stride_population(matrix_dimension)
    rng = random.Random(seed)
    strides = [item.stride for item in population]
    weights = [item.weight for item in population]
    return rng.choices(strides, weights=weights, k=count)


def family_mix(strides: list[int]) -> dict[int, float]:
    """Family histogram of a stride sample."""
    counts: dict[int, int] = {}
    for stride in strides:
        family = family_of(stride)
        counts[family] = counts.get(family, 0) + 1
    total = len(strides)
    return {family: count / total for family, count in sorted(counts.items())}
