"""Index-vector generators for gather/scatter workloads.

Companions to :mod:`repro.core.gather`: the index populations that real
kernels produce.

* :func:`bit_reversal_indices` — the FFT's final permutation.  A neat
  theoretical fact reproduced in the tests: bit reversal of a full
  power-of-two range is *balanced* across XOR-mapped modules, so the
  cooldown scheduler serves it conflict-free — an access that no
  constant stride can express.
* :func:`csr_row_indices` — column indices of one compressed-sparse-row
  matrix row (sorted, duplicate-free, random gaps).
* :func:`histogram_indices` — skewed (Zipf-like) bucket indices, the
  classic scatter hazard.
* :func:`block_shuffle_indices` — cache-blocked permutation (dense
  blocks in shuffled order).
"""

from __future__ import annotations

import random

from repro.errors import VectorSpecError


def bit_reversal_indices(bits: int) -> list[int]:
    """The bit-reversal permutation of ``range(2**bits)``."""
    if bits < 0:
        raise VectorSpecError(f"bits must be >= 0, got {bits}")
    size = 1 << bits
    out = []
    for value in range(size):
        reversed_value = 0
        for bit in range(bits):
            if value >> bit & 1:
                reversed_value |= 1 << (bits - 1 - bit)
        out.append(reversed_value)
    return out


def csr_row_indices(
    row_length: int, column_count: int, seed: int = 0
) -> list[int]:
    """Sorted distinct column indices of one CSR matrix row."""
    if row_length < 1:
        raise VectorSpecError(f"row_length must be >= 1, got {row_length}")
    if column_count < row_length:
        raise VectorSpecError(
            f"cannot pick {row_length} distinct columns out of {column_count}"
        )
    rng = random.Random(seed)
    return sorted(rng.sample(range(column_count), row_length))


def histogram_indices(
    count: int, buckets: int, skew: float = 1.2, seed: int = 0
) -> list[int]:
    """Zipf-skewed bucket indices: few hot buckets, long cold tail."""
    if count < 1 or buckets < 1:
        raise VectorSpecError("count and buckets must be >= 1")
    if skew <= 0:
        raise VectorSpecError(f"skew must be > 0, got {skew}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(buckets)]
    return rng.choices(range(buckets), weights=weights, k=count)


def block_shuffle_indices(
    block: int, blocks: int, seed: int = 0
) -> list[int]:
    """Dense blocks of consecutive indices, in shuffled block order."""
    if block < 1 or blocks < 1:
        raise VectorSpecError("block and blocks must be >= 1")
    rng = random.Random(seed)
    order = list(range(blocks))
    rng.shuffle(order)
    out: list[int] = []
    for which in order:
        out.extend(range(which * block, which * block + block))
    return out
