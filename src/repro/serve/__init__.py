"""repro.serve — the persistent HTTP experiment service.

``repro lab serve`` puts a long-running front door on the lab: submit
a scenario spec, grid, or list over HTTP and get a run id back
immediately; poll the run; fetch any result by its config hash.
Content addressing does the heavy lifting — a design point simulates
at most once, ever, and every repeat query is a single file read (or,
with ``If-None-Match``, a ``304`` and zero body bytes).  With
``--backend spool`` the service is a thin coordinator: any number of
``repro lab worker`` processes on any host sharing the spool directory
execute the simulations.

API (all JSON)::

    POST /v1/runs                   spec | grid | list  ->  202 + run id
    GET  /v1/runs/<run-id>          state + ExecutionReport.metrics
    GET  /v1/results/<config-hash>  cached artifact; strong ETag = hash
    GET  /v1/history/<metric>       cross-run trend (?scenario=&limit=)
    GET  /v1/healthz                liveness
    GET  /v1/metrics                request/error/run/cache counters

Module map
----------

* :mod:`repro.serve.app` — :class:`ServeApp` wiring + the
  signal-driven main loop (graceful SIGTERM/SIGINT drain);
* :mod:`repro.serve.routes` — the URL table and the
  ``ThreadingHTTPServer`` request handler (transport only);
* :mod:`repro.serve.service` — :class:`LabService`, the logic layer
  every route calls into;
* :mod:`repro.serve.queue` — background batch execution on a thread
  pool, with duplicate-submission collapsing by batch signature;
* :mod:`repro.serve.schemas` — request parsing + every response shape;
* :mod:`repro.serve.errors` — the centralized exception -> HTTP status
  mapping and the canonical ``TypeName: message`` error body.
"""

from repro.serve.app import ServeApp, run_until_signalled
from repro.serve.errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    ServeError,
    ServiceUnavailableError,
    error_message,
    error_payload,
    error_status,
)
from repro.serve.queue import Submission, SubmissionQueue
from repro.serve.routes import LabHTTPServer, RequestHandler
from repro.serve.service import LabService, ServiceCounters

__all__ = [
    "BadRequestError",
    "LabHTTPServer",
    "LabService",
    "MethodNotAllowedError",
    "NotFoundError",
    "PayloadTooLargeError",
    "RequestHandler",
    "ServeApp",
    "ServeError",
    "ServiceCounters",
    "ServiceUnavailableError",
    "Submission",
    "SubmissionQueue",
    "error_message",
    "error_payload",
    "error_status",
    "run_until_signalled",
]
