"""HTTP routing: the URL table and transport glue, no business logic.

One regex-routed handler on the stdlib ``ThreadingHTTPServer`` (the
project has zero runtime dependencies and the service keeps it that
way).  Each route body is a few lines: parse path/query, call one
:class:`~repro.serve.service.LabService` method, serialize.  Every
exception — route-level or service-level — funnels through one error
handler that renders the canonical ``{"error": "TypeName: message"}``
body with the status :mod:`repro.serve.errors` maps it to.

The result endpoint implements conditional GET: the response carries a
strong ``ETag`` (the config hash — content addressing makes it exact
by construction) and an ``If-None-Match`` revalidation answers ``304``
with no body, so a hot design point costs the client zero body bytes
and the server one file stat.
"""

from __future__ import annotations

import json
import re
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.serve import schemas
from repro.serve.errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    error_payload,
    error_status,
)

__all__ = ["LabHTTPServer", "RequestHandler", "ROUTES"]


class LabHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying the service and a log hook."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service,
        *,
        access_log: Callable[[str], None] | None = None,
    ):
        super().__init__(address, RequestHandler)
        self.service = service
        self.access_log = access_log

    def handle_error(self, request, client_address):
        # Clients hanging up mid-response are routine, not tracebacks.
        error = sys.exc_info()[1]
        if isinstance(error, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)


#: (method, path pattern, handler method name).  Named groups become
#: keyword arguments of the handler.
ROUTES: tuple[tuple[str, re.Pattern, str], ...] = (
    ("GET", re.compile(r"^/v1/healthz$"), "get_healthz"),
    ("GET", re.compile(r"^/v1/metrics$"), "get_metrics"),
    ("POST", re.compile(r"^/v1/runs$"), "post_runs"),
    ("GET", re.compile(r"^/v1/runs/(?P<run_id>[^/]+)$"), "get_run"),
    (
        "GET",
        re.compile(r"^/v1/results/(?P<config_hash>[^/]+)$"),
        "get_result",
    ),
    ("GET", re.compile(r"^/v1/history/(?P<metric>[^/]+)$"), "get_history"),
)


class RequestHandler(BaseHTTPRequestHandler):
    """Dispatch requests against :data:`ROUTES`; errors go to one place."""

    protocol_version = "HTTP/1.1"

    @property
    def service(self):
        return self.server.service

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.service.counters.bump("requests_total")
        split = urlsplit(self.path)
        self._query = parse_qs(split.query)
        other_method = False
        try:
            for route_method, pattern, name in ROUTES:
                match = pattern.match(split.path)
                if match is None:
                    continue
                if route_method != method:
                    other_method = True
                    continue
                getattr(self, name)(**match.groupdict())
                return
            if other_method:
                raise MethodNotAllowedError(
                    f"{method} is not supported on {split.path}"
                )
            raise NotFoundError(f"no route matches {split.path}")
        except Exception as error:  # the centralized error handler
            self._send_failure(error)

    # -- routes ----------------------------------------------------------

    def get_healthz(self) -> None:
        self._send_json(200, self.service.health())

    def get_metrics(self) -> None:
        self._send_json(200, self.service.metrics())

    def post_runs(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequestError("unreadable Content-Length header") from None
        if length > schemas.MAX_BODY_BYTES:
            # Refuse before reading: no point swallowing the body.
            self.close_connection = True
            raise PayloadTooLargeError(
                f"request body is {length} bytes; the limit is "
                f"{schemas.MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length) if length > 0 else b""
        payload = self.service.submit(
            raw,
            engine=self._query_value("engine"),
            validate=self._query_value("validate"),
            batch_workers=self._query_value("batch_workers"),
        )
        self._send_json(
            202,
            payload,
            headers=(("Location", payload["url"]),),
        )

    def get_run(self, run_id: str) -> None:
        self._send_json(200, self.service.run_status(run_id))

    def get_result(self, config_hash: str) -> None:
        body, etag = self.service.result(config_hash)
        if self._etag_matches(etag):
            self.service.counters.bump("results_not_modified")
            self.send_response(304)
            self.send_header("ETag", etag)
            self.end_headers()
            return
        self.service.counters.bump("results_served")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("ETag", etag)
        # Content-addressed: the bytes behind this hash never change.
        self.send_header("Cache-Control", "max-age=31536000, immutable")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def get_history(self, metric: str) -> None:
        scenario = self._query_value("scenario")
        limit_text = self._query_value("limit")
        limit = None
        if limit_text is not None:
            try:
                limit = int(limit_text)
            except ValueError:
                limit = 0
            if limit < 1:
                raise BadRequestError(
                    f"limit must be a positive integer, got {limit_text!r}"
                )
        self._send_json(
            200,
            self.service.history_trend(metric, scenario=scenario, limit=limit),
        )

    # -- plumbing --------------------------------------------------------

    def _query_value(self, key: str) -> str | None:
        values = self._query.get(key)
        return values[-1] if values else None

    def _etag_matches(self, etag: str) -> bool:
        """``If-None-Match`` vs our strong ETag, leniently.

        Accepts the exact quoted tag, a weak ``W/`` prefix (content
        addressing makes weak and strong identical here), a bare
        unquoted hash (what shell one-liners tend to send), or ``*``.
        """
        header = self.headers.get("If-None-Match")
        if not header:
            return False
        if header.strip() == "*":
            return True
        bare = etag.strip('"')
        for candidate in header.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:].strip()
            if candidate == etag or candidate.strip('"') == bare:
                return True
        return False

    def _send_failure(self, error: BaseException) -> None:
        status = error_status(error)
        self.service.counters.bump("errors_total")
        if status >= 500:
            self.service.counters.bump("errors_internal")
        # An error mid-write (broken pipe) cannot be answered.
        try:
            self._send_json(status, error_payload(error))
        except OSError:
            self.close_connection = True

    def _send_json(
        self,
        status: int,
        payload: dict,
        *,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        body = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        for key, value in headers:
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Per-request access logging through the server's hook.

        ``send_response`` calls this for every request, so the access
        log is automatic; a ``None`` hook silences it (tests).
        """
        log = getattr(self.server, "access_log", None)
        if log is not None:
            log(f"{self.address_string()} {format % args}")
