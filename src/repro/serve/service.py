"""The service layer: everything the HTTP routes can ask for.

:class:`LabService` owns the artifact store, the cross-run
:class:`~repro.obs.history.HistoryDB`, the background
:class:`~repro.serve.queue.SubmissionQueue` and the request counters.
Routes call exactly one service method per request and serialize
whatever comes back; the service never sees a socket.

Execution rides the existing lab machinery end to end: specs become
``scenario_job`` specs, batches run through
:func:`repro.lab.executor.run_jobs` (serial, process pool, or the
filesystem spool — with ``--backend spool`` this service is a thin
coordinator over any number of ``repro lab worker`` hosts), results
land in the content-addressed store, and every finished batch writes
the same ``runs/<run-id>/manifest.json`` a CLI run would — then
ingests it into the history DB, so ``/v1/history/<metric>`` trends
update live as runs complete.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.lab.executor import new_run_id, run_jobs
from repro.lab.jobs import scenario_job
from repro.lab.manifest import write_run_artifacts
from repro.lab.store import ArtifactStore
from repro.obs.history import HISTORY_FILENAME, HistoryDB, metric_direction
from repro.serve import schemas
from repro.serve.errors import NotFoundError
from repro.serve.queue import Submission, SubmissionQueue

__all__ = ["LabService", "ServiceCounters"]


class ServiceCounters:
    """Thread-safe monotonic counters behind ``/v1/metrics``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))


class LabService:
    """Submissions, run state, cached results, history, metrics."""

    def __init__(
        self,
        store: ArtifactStore,
        *,
        history: HistoryDB | None = None,
        backend_factory: Callable[[], object] | None = None,
        run_workers: int | None = None,
        queue_workers: int | None = None,
    ):
        self.store = store
        self.history = history or HistoryDB(store.root / HISTORY_FILENAME)
        # A fresh backend per batch: spool backends carry per-run
        # counter state, so concurrent batches must never share one.
        self._backend_factory = backend_factory
        self._run_workers = run_workers
        self.counters = ServiceCounters()
        self.started_at = time.monotonic()
        self._runs: dict[str, Submission] = {}
        self._runs_lock = threading.Lock()
        self.queue = SubmissionQueue(self._execute, workers=queue_workers)

    # -- submission ------------------------------------------------------

    def submit(
        self,
        raw: bytes,
        *,
        engine: str | None = None,
        validate: str | None = None,
        batch_workers: str | None = None,
    ) -> dict:
        """``POST /v1/runs``: parse, enqueue, return the run's first state.

        The run id comes from the same generator CLI runs use, but is
        allocated *here* — before execution — so the response can name
        the run the background batch will record.  Parsing and static
        lint run first: a rejected submission counts in
        ``runs_rejected`` and never allocates (so never leaks) a run id.
        ``engine``/``validate``/``batch_workers`` arrive as raw query
        strings and select the evaluation engine per submission
        (``?engine=batch`` runs the batch evaluator,
        ``?batch_workers=N`` shards its fallback tier; artifacts are
        identical either way).
        """
        try:
            engine_name, validate_count, worker_count = (
                schemas.parse_engine_request(engine, validate, batch_workers)
            )
            specs = schemas.parse_run_request(raw)
        except Exception:
            self.counters.bump("runs_rejected")
            raise
        jobs = sorted(
            (scenario_job(spec) for spec in specs),
            key=lambda job: job.job_id,
        )
        # One request may name the same design point twice (e.g. a grid
        # axis that revisits the base value); one job each is enough.
        jobs = list({job.job_id: job for job in jobs}.values())
        hashes = {job.job_id: job.config_hash() for job in jobs}
        submission = Submission(
            run_id=new_run_id(),
            jobs=jobs,
            hashes=hashes,
            signature=tuple(sorted(hashes.values())),
            created_at=schemas.utc_now(),
            engine=engine_name,
            validate=validate_count,
            batch_workers=worker_count,
        )
        with self._runs_lock:
            self._runs[submission.run_id] = submission
        try:
            self.queue.submit(submission)
        except Exception:
            with self._runs_lock:
                self._runs.pop(submission.run_id, None)
            raise
        self.counters.bump("runs_submitted")
        if submission.follows:
            self.counters.bump("runs_deduplicated")
        return schemas.run_payload(submission)

    def _execute(self, submission: Submission) -> None:
        """The queue's runner: one batch through the lab, plus bookkeeping."""
        if submission.engine == "batch":
            from repro.batch import BatchBackend

            backend: object | None = BatchBackend(
                validate=submission.validate,
                workers=submission.batch_workers,
            )
        else:
            backend = (
                self._backend_factory()
                if self._backend_factory is not None
                else None
            )
        try:
            report = run_jobs(
                submission.jobs,
                store=self.store,
                workers=self._run_workers,
                backend=backend,
                run_id=submission.run_id,
            )
        except Exception:
            self.counters.bump("runs_failed")
            raise
        submission.report = report
        run_dir = write_run_artifacts(self.store, report)
        self.history.ingest_manifest(run_dir / "manifest.json", store=self.store)
        self.counters.bump("runs_completed")
        self.counters.bump("jobs_total", len(report.outcomes))
        self.counters.bump("jobs_executed", report.executed)
        self.counters.bump("job_cache_hits", report.cache_hits)
        # Batch-engine tier and cache counters aggregate service-wide
        # under the same lock every other counter takes, so a
        # concurrent /v1/metrics read never sees a torn update.
        for key, value in getattr(report, "metrics", {}).items():
            if (key.startswith("batch_") or key.startswith("plan_cache_")) and (
                isinstance(value, int) and not isinstance(value, bool)
            ):
                self.counters.bump(key, value)
        if report.failures:
            self.counters.bump("runs_with_failed_checks")

    # -- reads -----------------------------------------------------------

    def run_status(self, run_id: str) -> dict:
        """``GET /v1/runs/<id>``: state plus the report metrics when done."""
        with self._runs_lock:
            submission = self._runs.get(run_id)
        if submission is None:
            raise NotFoundError(
                f"no such run {run_id!r} (runs are tracked for the life of "
                "this service process)"
            )
        return schemas.run_payload(submission)

    def result(self, config_hash: str) -> tuple[bytes, str]:
        """``GET /v1/results/<hash>``: raw artifact bytes + strong ETag.

        The artifact is content-addressed, so the config hash itself is
        the strong validator: same hash, same bytes, forever.
        """
        body = self.store.artifact_bytes(config_hash)
        if body is None:
            raise NotFoundError(
                f"no cached artifact for config hash {config_hash!r}"
            )
        return body, f'"{config_hash}"'

    def history_trend(
        self,
        metric: str,
        *,
        scenario: str | None = None,
        limit: int | None = None,
    ) -> dict:
        """``GET /v1/history/<metric>``: the cross-run trend, read-only."""
        points = self.history.trend(metric, scenario=scenario, limit=limit)
        return schemas.history_payload(
            metric, points, direction=metric_direction(metric)
        )

    def health(self) -> dict:
        return schemas.health_payload(self)

    def metrics(self) -> dict:
        return schemas.metrics_payload(self)

    def run_count(self) -> int:
        with self._runs_lock:
            return len(self._runs)

    # -- lifecycle -------------------------------------------------------

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting submissions; with ``drain``, wait them out."""
        self.queue.close(drain=drain)
