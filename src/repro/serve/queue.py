"""Background batch execution: a bounded thread pool that collapses
duplicate submissions.

``POST /v1/runs`` must return a run id immediately, so batches execute
on a :class:`~concurrent.futures.ThreadPoolExecutor` owned by this
queue and polling handlers never block behind a simulation.  The queue
knows nothing about HTTP or the lab — it runs an opaque
``runner(submission)`` callable and tracks lifecycle state on the
:class:`Submission`.

Duplicate collapsing: a submission's *signature* is the sorted tuple
of its jobs' config hashes — the full content address of the batch.
Two in-flight submissions with the same signature never simulate
concurrently: the later one ("follower") waits until the earlier one
("leader") finishes, then runs — by which time every job is a pure
cache hit, so the expensive simulation happened exactly once.  The
follower still gets its own run id, manifest and metrics (with
``cache_hit_rate`` 1.0), which is what makes the collapse observable
rather than magical.

No deadlock is possible: the pool is FIFO and a follower is always
enqueued *after* its leader, so a leader is never starved of a worker
slot by its own followers.

Shutdown: ``close(drain=True)`` stops accepting new submissions and
waits for every in-flight batch — the graceful SIGTERM path.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.serve.errors import ServiceUnavailableError, error_message

__all__ = [
    "DEFAULT_QUEUE_WORKERS",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Submission",
    "SubmissionQueue",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Concurrent batches by default.  Submissions queue beyond this, which
#: is the point — the HTTP threads never execute simulations themselves.
DEFAULT_QUEUE_WORKERS = 2


@dataclass
class Submission:
    """One accepted batch and its lifecycle state.

    ``jobs`` is the deduplicated, job-id-ordered list of
    :class:`~repro.lab.jobs.JobSpec`; ``hashes`` maps job id to config
    hash (computed once, at submit time); ``signature`` is the sorted
    hash tuple the duplicate collapse keys on.  ``engine``, ``validate`` and
    ``batch_workers`` carry the submission's
    ``?engine=``/``?validate=``/``?batch_workers=`` choice (engines
    and worker counts produce identical artifacts, so the collapse
    still keys on content alone).  ``report`` lands when the runner
    finishes; ``error`` when it raises.
    """

    run_id: str
    jobs: list
    hashes: dict[str, str]
    signature: tuple[str, ...]
    created_at: str
    engine: str = "kernel"
    validate: int = 0
    batch_workers: int | None = None
    state: str = QUEUED
    report: object | None = None
    error: str | None = None
    follows: str | None = None
    finished: threading.Event = field(default_factory=threading.Event)


class SubmissionQueue:
    """Run submissions through ``runner`` on a fixed thread pool."""

    def __init__(
        self,
        runner: Callable[[Submission], None],
        *,
        workers: int | None = None,
    ):
        self._runner = runner
        self._lock = threading.Lock()
        self._leaders: dict[tuple[str, ...], Submission] = {}
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers or DEFAULT_QUEUE_WORKERS,
            thread_name_prefix="repro-serve-run",
        )

    def submit(self, submission: Submission) -> None:
        """Enqueue one submission; returns immediately.

        Raises :class:`ServiceUnavailableError` once the queue is
        closing — a drain must not accept work it would then wait on.
        """
        with self._lock:
            if self._closed:
                raise ServiceUnavailableError(
                    "service is draining for shutdown; not accepting new runs"
                )
            leader = self._leaders.get(submission.signature)
            if leader is not None and not leader.finished.is_set():
                submission.follows = leader.run_id
            else:
                self._leaders[submission.signature] = submission
                leader = None
        self._pool.submit(self._run, submission, leader)

    def _run(self, submission: Submission, leader: Submission | None) -> None:
        if leader is not None:
            # Collapse: let the identical in-flight batch finish first,
            # then run against a warm cache (zero simulations).
            leader.finished.wait()
        submission.state = RUNNING
        try:
            self._runner(submission)
        except Exception as error:
            submission.error = error_message(error)
            submission.state = FAILED
        else:
            submission.state = DONE
        finally:
            submission.finished.set()
            with self._lock:
                if self._leaders.get(submission.signature) is submission:
                    del self._leaders[submission.signature]

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting submissions; optionally wait for in-flight ones."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=drain, cancel_futures=not drain)
