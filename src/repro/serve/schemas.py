"""Request parsing and response shapes for the serve API.

Every JSON body the service reads or writes is built here, so the
routes stay transport-only, the service stays logic-only, and the wire
format is greppable in one file.

``POST /v1/runs`` accepts exactly the document shapes
``repro scenario run`` accepts — a single :class:`ScenarioSpec`
object, a grid (``{"base": ..., "axes": ...}``), or a JSON array
mixing either — parsed by the same :func:`repro.scenarios.load_scenarios`,
so a file that works on the CLI works over HTTP verbatim.
"""

from __future__ import annotations

import time

from repro.scenarios import ScenarioSpec, load_scenarios
from repro.scenarios.registry import validate_spec_kinds
from repro.serve.errors import BadRequestError, PayloadTooLargeError

__all__ = [
    "MAX_BODY_BYTES",
    "health_payload",
    "history_payload",
    "metrics_payload",
    "parse_engine_request",
    "parse_run_request",
    "run_payload",
    "utc_now",
    "validate_kinds",
]

#: Hard ceiling on request bodies.  A grid of a few thousand design
#: points is well under 1 MB of JSON; anything bigger is a mistake,
#: not a workload.
MAX_BODY_BYTES = 8 * 1024 * 1024


def utc_now() -> str:
    """The ISO-8601 UTC timestamp format the lab store uses."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def parse_run_request(raw: bytes) -> list[ScenarioSpec]:
    """A ``POST /v1/runs`` body to scenario specs.

    Raises :class:`BadRequestError` (empty / non-UTF-8 body) or lets
    the scenario layer's :class:`~repro.errors.ConfigurationError`
    propagate — both render as ``400`` with the canonical
    ``TypeName: message`` error body.
    """
    if len(raw) > MAX_BODY_BYTES:
        raise PayloadTooLargeError(
            f"request body is {len(raw)} bytes; the limit is "
            f"{MAX_BODY_BYTES}"
        )
    if not raw:
        raise BadRequestError(
            "empty request body; POST a scenario spec, a grid "
            "({'base': ..., 'axes': ...}), or a list of either"
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise BadRequestError(f"request body is not UTF-8: {error}") from None
    specs = load_scenarios(text)
    if not specs:
        raise BadRequestError("request body holds no scenarios")
    validate_kinds(specs)
    from repro.check import require_submittable

    require_submittable(specs, source="POST /v1/runs")
    return specs


def parse_engine_request(
    engine: str | None,
    validate: str | None,
    batch_workers: str | None = None,
) -> tuple[str, int, int | None]:
    """The ``?engine=`` / ``?validate=`` / ``?batch_workers=`` queries.

    Mirrors the CLI's ``--engine {kernel,batch} --validate N
    --batch-workers N`` exactly: the default is the per-point kernel,
    ``batch`` routes the batch through
    :class:`repro.batch.BatchBackend`, ``validate`` re-runs that many
    sampled points through the kernel, and ``batch_workers`` shards the
    batch engine's fallback tier over that many worker processes
    (``0`` = one per CPU).  Both knobs apply to the batch engine only —
    they have no meaning for, and are rejected with, the kernel engine.
    """
    name = engine or "kernel"
    if name not in ("kernel", "batch"):
        raise BadRequestError(
            f"unknown engine {name!r}; pick kernel or batch"
        )
    count = 0
    if validate is not None:
        try:
            count = int(validate)
        except ValueError:
            count = -1
        if count < 0:
            raise BadRequestError(
                f"validate must be a non-negative integer, got {validate!r}"
            )
        if name != "batch":
            raise BadRequestError(
                "validate only applies to engine=batch (the kernel "
                "engine is its own reference)"
            )
    workers: int | None = None
    if batch_workers is not None:
        try:
            workers = int(batch_workers)
        except ValueError:
            workers = -1
        if workers < 0:
            raise BadRequestError(
                f"batch_workers must be a non-negative integer "
                f"(0 = one per CPU), got {batch_workers!r}"
            )
        if name != "batch":
            raise BadRequestError(
                "batch_workers only applies to engine=batch (the "
                "kernel engine is always per-point)"
            )
    return name, count, workers


def validate_kinds(specs: list[ScenarioSpec]) -> None:
    """Reject unregistered component kinds at the door.

    The scenario layer resolves kinds lazily (at simulation time), but
    a submission with a typo'd kind should be a ``400`` now, not a
    failed run discovered by polling.  Delegates to the registry's
    shared validator (also used by the scenario CLI and the spec-lint
    pass); the deeper parameter lint runs next in
    :func:`repro.check.require_submittable`.
    """
    for spec in specs:
        validate_spec_kinds(spec)


def run_payload(submission) -> dict:
    """One submission's full state — the ``/v1/runs/<id>`` body.

    ``POST /v1/runs`` returns the same shape (state ``queued``), so a
    client can treat the POST response as its first poll.  Jobs always
    list their config hash and ``result_url`` — the artifact address is
    known at submit time, and for already-cached design points the
    result is fetchable before (even without) the run executing.
    """
    payload: dict = {
        "run_id": submission.run_id,
        "state": submission.state,
        "created_at": submission.created_at,
        "job_count": len(submission.jobs),
        "engine": getattr(submission, "engine", "kernel"),
        "url": f"/v1/runs/{submission.run_id}",
    }
    if submission.follows:
        payload["deduplicated_with"] = submission.follows
    if submission.error:
        payload["error"] = submission.error
    report = submission.report
    outcomes = (
        {outcome.spec.job_id: outcome for outcome in report.outcomes}
        if report is not None
        else {}
    )
    jobs = []
    for job in submission.jobs:
        address = submission.hashes[job.job_id]
        entry = {
            "job_id": job.job_id,
            "title": job.title,
            "config_hash": address,
            "result_url": f"/v1/results/{address}",
        }
        outcome = outcomes.get(job.job_id)
        if outcome is not None:
            entry["cached"] = outcome.cached
            entry["all_passed"] = outcome.all_passed
        jobs.append(entry)
    payload["jobs"] = jobs
    if report is not None:
        payload["metrics"] = report.metrics
        payload["all_passed"] = report.all_passed
        payload["cache_hits"] = report.cache_hits
        payload["executed"] = report.executed
        payload["elapsed_seconds"] = report.elapsed_seconds
    return payload


def health_payload(service) -> dict:
    """The ``/v1/healthz`` liveness body."""
    import repro

    return {
        "status": "ok",
        "version": repro.__version__,
        "store": str(service.store.root),
        "uptime_seconds": round(time.monotonic() - service.started_at, 3),
    }


def metrics_payload(service) -> dict:
    """The ``/v1/metrics`` body: request/error/run/job counters.

    ``cache_hit_rate`` aggregates over every job this process ran —
    the service-lifetime analogue of the per-run rate in each run's
    ``metrics`` block.
    """
    counters = service.counters.snapshot()
    executed = counters.get("jobs_executed", 0)
    hits = counters.get("job_cache_hits", 0)
    total = executed + hits
    return {
        "counters": counters,
        "cache_hit_rate": (hits / total) if total else 0.0,
        "runs_tracked": service.run_count(),
        "uptime_seconds": round(time.monotonic() - service.started_at, 3),
    }


def history_payload(
    metric: str, points: list[dict], *, direction: str | None
) -> dict:
    """The ``/v1/history/<metric>`` trend body."""
    return {
        "metric": metric,
        "direction": direction,
        "point_count": len(points),
        "points": points,
    }
