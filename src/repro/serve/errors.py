"""Centralized error vocabulary for the HTTP experiment service.

One place maps every exception to an HTTP status and one canonical
body shape, so routes and service code just ``raise`` and the handler
in :mod:`repro.serve.routes` renders the result.  The body's ``error``
field is the same ``TypeName: message`` string the lab's execution
backends use for job failures (:func:`repro.lab.backends.describe_error`),
so a client sees one failure grammar whether a job crashed in a worker
or a request never made it past validation.

Status mapping:

* :class:`ServeError` subclasses carry their own ``status``;
* any other :class:`~repro.errors.ReproError` is a validation problem
  with the request's content (bad spec JSON, unknown scenario kind,
  inconsistent geometry) — ``400``;
* anything else is a bug — ``500``.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "BadRequestError",
    "MethodNotAllowedError",
    "NotFoundError",
    "PayloadTooLargeError",
    "ServeError",
    "ServiceUnavailableError",
    "error_message",
    "error_payload",
    "error_status",
]


class ServeError(ReproError):
    """Base class for errors the service maps to a specific HTTP status."""

    status = 500


class BadRequestError(ServeError):
    """The request itself is malformed (empty body, bad encoding...)."""

    status = 400


class NotFoundError(ServeError):
    """No such run, artifact, or route."""

    status = 404


class MethodNotAllowedError(ServeError):
    """The path exists but not for this HTTP method."""

    status = 405


class PayloadTooLargeError(ServeError):
    """The request body exceeds the service's hard ceiling."""

    status = 413


class ServiceUnavailableError(ServeError):
    """The service is draining for shutdown and accepts no new runs."""

    status = 503


def error_message(error: BaseException) -> str:
    """The canonical ``TypeName: message`` rendering (same as JobFailure)."""
    return f"{type(error).__name__}: {error}"


def error_status(error: BaseException) -> int:
    """The HTTP status an exception maps to (see module docstring)."""
    if isinstance(error, ServeError):
        return error.status
    if isinstance(error, ReproError):
        return 400
    return 500


def error_payload(error: BaseException) -> dict:
    """The JSON body every error response carries.

    Errors that carry static-check findings (a submission rejected by
    :func:`repro.check.require_submittable`) ship them structurally, so
    a 400 tells the client *which* rule fired where, not just the
    summary line.
    """
    payload = {"error": error_message(error), "status": error_status(error)}
    findings = getattr(error, "findings", None)
    if findings:
        payload["findings"] = [finding.to_dict() for finding in findings]
    return payload
