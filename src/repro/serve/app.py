"""Process wiring: build the service, serve until signalled, drain.

:class:`ServeApp` assembles one running instance — store, history DB,
:class:`~repro.serve.service.LabService`, submission queue, HTTP
server — and owns its lifecycle.  Tests start one on an ephemeral port
inside the process (``ServeApp(..., port=0).start()``); the CLI calls
:func:`run_until_signalled`, which installs SIGTERM/SIGINT handlers
and performs the graceful shutdown sequence:

1. stop accepting new HTTP connections (``server.shutdown``);
2. stop accepting new submissions and **drain** every in-flight batch
   (``service.close(drain=True)``) — a run accepted with ``202`` is a
   promise, so its artifacts land even when the signal arrives while
   it is still queued;
3. close the listening socket and exit 0.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable

from repro.lab.store import ArtifactStore
from repro.serve.routes import LabHTTPServer
from repro.serve.service import LabService

__all__ = ["ServeApp", "run_until_signalled"]


def _print_flushed(message: str) -> None:
    """Default log sink: stdout, flushed so pipes/files see lines live."""
    print(message, flush=True)


class ServeApp:
    """One assembled service instance plus its HTTP server."""

    def __init__(
        self,
        store: ArtifactStore,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        backend_factory: Callable[[], object] | None = None,
        run_workers: int | None = None,
        queue_workers: int | None = None,
        access_log: Callable[[str], None] | None = None,
        history=None,
    ):
        self.service = LabService(
            store,
            history=history,
            backend_factory=backend_factory,
            run_workers=run_workers,
            queue_workers=queue_workers,
        )
        self.server = LabHTTPServer(
            (host, port), self.service, access_log=access_log
        )
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port — the real one, even when constructed with 0."""
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeApp":
        """Serve in a background thread; returns immediately."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """The graceful shutdown sequence (see module docstring)."""
        self.server.shutdown()
        self.service.close(drain=drain)
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ServeApp":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_until_signalled(
    app: ServeApp, *, log: Callable[[str], None] = _print_flushed
) -> int:
    """The ``repro lab serve`` main loop: serve, wait, drain, exit 0.

    The signal handler only sets an event — the serve loop runs on a
    background thread, so the main thread is free to wait and then
    perform the blocking drain outside handler context.
    """
    stop = threading.Event()
    received: dict[str, str] = {}

    def _handle(signum, frame) -> None:
        received["signal"] = signal.Signals(signum).name
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _handle)

    app.start()
    log(
        f"repro lab serve: listening on {app.url} "
        f"(store {app.service.store.root})"
    )
    log(
        "endpoints: POST /v1/runs, GET /v1/runs/<id>, "
        "GET /v1/results/<config-hash>, GET /v1/history/<metric>, "
        "GET /v1/healthz, GET /v1/metrics"
    )
    stop.wait()
    log(
        f"repro lab serve: {received.get('signal', 'stop')} received; "
        "draining in-flight runs"
    )
    app.stop(drain=True)
    log("repro lab serve: drained cleanly")
    return 0
