"""Command-line interface: plan accesses, inspect windows, run experiments.

Usage (also via ``python -m repro``)::

    repro plan --t 3 --s 4 --base 16 --stride 12 --length 128 --timeline
    repro plan --t 3 --s 4 --y 9 --stride 96 --length 128
    repro window --lam 7 --t 3 --unmatched
    repro experiments --ids E01,E03 --output EXPERIMENTS.md
    repro survey --t 3 --s 4 --max-stride 32
    repro scenario run examples/scenario_matched_stride12.json
    repro scenario run examples/scenario_daxpy_program.json
    repro scenario run examples/scenario_daxpy_program.json --trace out.json
    repro scenario diff baseline.json candidate.json
    repro scenario list
    repro lab sweep examples/scenario_program_grid.json
    repro lab run --all --jobs 8
    repro lab run --ids E03 --param E03:lambda_exponent=8
    repro lab run --all --backend spool       # + `repro lab worker` shards
    repro lab worker .repro-lab/spool --max-idle 60
    repro lab worker .repro-lab/spool --max-jobs 6   # bounded, for CI
    repro lab serve --port 8642 --backend spool      # HTTP front door
    repro lab merge /mnt/worker-host/.repro-lab
    repro lab diff 20260729T120000Z-aaaa 20260729T130000Z-bbbb
    repro lab status --json
    repro lab status --metrics
    repro lab history --metric total_cycles --flag-regressions
    repro lab index --verify --prune-stale
    repro lab summarize --output SUMMARY.md

Every subcommand prints plain text; exit status is non-zero when an
experiment check fails, so the CLI slots into shell-based CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.efficiency import efficiency
from repro.analysis.fractions import conflict_free_fraction
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.core.windows import (
    MatchedDesign,
    UnmatchedDesign,
)
from repro.errors import ReproError
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.memory.trace import describe_result, render_timeline
from repro.report.experiments import ALL_EXPERIMENTS
from repro.report.tables import render_table


def package_version() -> str:
    """The running package's version.

    ``repro.__version__`` is the single source: pyproject.toml derives
    the distribution metadata from it (``[tool.setuptools.dynamic]``),
    and the lab's cache keys embed it — so the version reported here is
    always the one addressing the cache and the code actually running,
    even when a source tree shadows an older installed distribution.
    """
    import repro

    return repro.__version__


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """The execution-backend flags `lab run` and `lab sweep` share."""
    parser.add_argument(
        "--backend",
        choices=["serial", "pool", "spool"],
        default=None,
        help="execution backend: serial (in-process), pool (process "
        "pool, the default), or spool (filesystem spool served by "
        "`repro lab worker` processes)",
    )
    parser.add_argument(
        "--stale-after",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="spool backend: requeue claims whose worker heartbeat is "
        "older than this (default 60)",
    )
    parser.add_argument(
        "--spool-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="spool backend: fail if the batch has not completed after "
        "this long (default: wait forever)",
    )
    parser.add_argument(
        "--participate",
        action="store_true",
        help="spool backend: the coordinator also claims and executes "
        "jobs while polling (works with zero external workers)",
    )
    _add_engine_options(parser)


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The evaluation-engine flags shared by lab and scenario commands."""
    parser.add_argument(
        "--engine",
        choices=["kernel", "batch"],
        default="kernel",
        help="evaluation engine: kernel (per-point simulator, the "
        "default) or batch (analytic fast path + vectorized batched "
        "kernel; artifacts and cache keys are identical)",
    )
    parser.add_argument(
        "--validate",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="batch engine: re-run N evenly-sampled points through the "
        "per-point kernel and fail on any field mismatch (default 0)",
    )
    parser.add_argument(
        "--batch-workers",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="batch engine: shard the fallback tier (figure6/decoupled/"
        "program points) over N worker processes (0 = one per CPU; "
        "default: serial). Results are identical for any worker count.",
    )


def _batch_workers_of(args: argparse.Namespace):
    """The ``--batch-workers`` value, rejecting it for the kernel engine."""
    workers = getattr(args, "batch_workers", None)
    if workers is not None and getattr(args, "engine", "kernel") != "batch":
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "--batch-workers applies to the batch engine only; add "
            "--engine batch (the kernel engine is always per-point)"
        )
    return workers


def _build_backend(args: argparse.Namespace, store):
    """The backend instance (or name) `run_jobs` should execute through."""
    workers = _batch_workers_of(args)
    if getattr(args, "engine", "kernel") == "batch":
        if getattr(args, "backend", None) is not None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--engine batch provides its own execution backend; "
                "drop --backend (the spool/pool flags apply only to "
                "the kernel engine)"
            )
        from repro.batch import BatchBackend

        return BatchBackend(
            validate=getattr(args, "validate", 0), workers=workers
        )
    if getattr(args, "backend", None) != "spool":
        return getattr(args, "backend", None)
    from repro.lab import SpoolBackend

    return SpoolBackend(
        store.root / "spool",
        stale_after=args.stale_after,
        participate=args.participate,
        timeout=args.spool_timeout,
        announce=print,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Conflict-free vector access (Valero et al., ISCA 1992) — "
            "plan, simulate and reproduce"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="plan and simulate one vector access"
    )
    plan.add_argument("--t", type=int, default=3, help="T = 2**t (default 3)")
    plan.add_argument("--s", type=int, default=4, help="Eq. (1)/(2) s")
    plan.add_argument(
        "--y", type=int, default=None,
        help="Eq. (2) y; presence selects the unmatched M=T**2 memory",
    )
    plan.add_argument("--base", type=int, default=0, help="A1")
    plan.add_argument("--stride", type=int, required=True)
    plan.add_argument("--length", type=int, default=128)
    plan.add_argument(
        "--mode",
        choices=["auto", "ordered", "subsequence", "conflict_free"],
        default="auto",
    )
    plan.add_argument("--q", type=int, default=1, help="input buffers")
    plan.add_argument("--qp", type=int, default=1, help="output buffers")
    plan.add_argument(
        "--timeline", action="store_true", help="print the module Gantt chart"
    )

    window = commands.add_parser(
        "window", help="show the conflict-free window of a design"
    )
    window.add_argument("--lam", type=int, required=True, help="L = 2**lam")
    window.add_argument("--t", type=int, default=3)
    window.add_argument(
        "--unmatched", action="store_true", help="use the M = T**2 design"
    )

    experiments = commands.add_parser(
        "experiments", help="run paper-reproduction experiments"
    )
    experiments.add_argument(
        "--ids", default="",
        help="comma-separated experiment ids (default: all)",
    )

    survey = commands.add_parser(
        "survey", help="latency per stride for one design"
    )
    survey.add_argument("--t", type=int, default=3)
    survey.add_argument("--s", type=int, default=4)
    survey.add_argument("--y", type=int, default=None)
    survey.add_argument("--length", type=int, default=128)
    survey.add_argument("--max-stride", type=int, default=32)

    lab = commands.add_parser(
        "lab",
        help="parallel experiment lab with content-addressed result caching",
    )
    lab_commands = lab.add_subparsers(dest="lab_command", required=True)
    root_help = (
        "lab root directory (default: $REPRO_LAB_ROOT or .repro-lab)"
    )

    lab_run = lab_commands.add_parser(
        "run", help="execute registered jobs in parallel, caching results"
    )
    selection = lab_run.add_mutually_exclusive_group()
    selection.add_argument(
        "--all",
        action="store_true",
        help="run every registered job (the default when --ids is absent)",
    )
    selection.add_argument(
        "--ids",
        default="",
        help="comma-separated job ids (e.g. E01,E09,A3,S-lambda)",
    )
    lab_run.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes (default: one per CPU, os.cpu_count())",
    )
    lab_run.add_argument(
        "--force",
        action="store_true",
        help="re-execute even when a cached artifact exists",
    )
    lab_run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="JOB:KEY=VALUE",
        help=(
            "override one experiment runner kwarg (repeatable), e.g. "
            "E03:lambda_exponent=8; overridden jobs cache separately "
            "per design point"
        ),
    )
    lab_run.add_argument("--root", default=None, help=root_help)
    _add_backend_options(lab_run)

    lab_worker = lab_commands.add_parser(
        "worker",
        help="serve spooled jobs: claim, execute, write results "
        "(run any number, on any host sharing the spool directory)",
    )
    lab_worker.add_argument(
        "spool_dir",
        help="a spool directory (one run's, or the parent holding many)",
    )
    lab_worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between scans for claimable jobs (default 0.2)",
    )
    lab_worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: serve batch "
        "after batch until `touch <spool-dir>/STOP` or Ctrl-C)",
    )
    lab_worker.add_argument(
        "--once",
        action="store_true",
        help="drain what is claimable right now, then exit",
    )
    lab_worker.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        dest="max_jobs",
        help="exit after executing this many jobs (a deterministic "
        "bound for tests and CI)",
    )

    lab_serve = lab_commands.add_parser(
        "serve",
        help="persistent HTTP experiment service: POST scenario specs, "
        "poll runs, fetch cached results by config hash",
    )
    lab_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    lab_serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default 8642; 0 picks a free one)",
    )
    lab_serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=2,
        help="submission batches executed concurrently (default 2)",
    )
    lab_serve.add_argument("--root", default=None, help=root_help)
    _add_backend_options(lab_serve)

    lab_merge = lab_commands.add_parser(
        "merge",
        help="fold another lab root's artifacts and runs into this one "
        "(content-addressed, conflict-free, idempotent)",
    )
    lab_merge.add_argument(
        "other_root", help="the detached lab root to import from"
    )
    lab_merge.add_argument("--root", default=None, help=root_help)

    lab_status = lab_commands.add_parser(
        "status", help="show cache coverage and recent runs"
    )
    lab_status.add_argument("--root", default=None, help=root_help)
    lab_status.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the status as one JSON object instead of tables",
    )
    lab_status.add_argument(
        "--metrics",
        action="store_true",
        help="show recent runs' batch metrics (cache-hit rate, queue "
        "latency, backend counters) from their manifests",
    )

    lab_summarize = lab_commands.add_parser(
        "summarize", help="render a Markdown summary of all cached results"
    )
    lab_summarize.add_argument("--root", default=None, help=root_help)
    lab_summarize.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )

    lab_index = lab_commands.add_parser(
        "index", help="rebuild the SQLite index from the artifact files"
    )
    lab_index.add_argument("--root", default=None, help=root_help)
    lab_index.add_argument(
        "--verify",
        action="store_true",
        help="recompute stored config hashes instead and report drift "
        "(exit 1 on corrupt or mismatched artifacts)",
    )
    lab_index.add_argument(
        "--prune-stale",
        action="store_true",
        dest="prune_stale",
        help="drop index rows whose artifact files were deleted "
        "(combine with --verify to audit first)",
    )

    lab_history = lab_commands.add_parser(
        "history",
        help="cross-run metric trends from ingested manifests and "
        "BENCH_*.json artifacts",
    )
    lab_history.add_argument(
        "--metric",
        default=None,
        help="render this metric's trend (e.g. total_cycles, "
        "elapsed_seconds, mean_seconds); omit to list known metrics",
    )
    lab_history.add_argument(
        "--scenario",
        default=None,
        help="substring filter over scenario names and job ids",
    )
    lab_history.add_argument(
        "--ingest",
        action="append",
        default=[],
        metavar="PATH",
        help="also ingest this manifest.json, run directory, lab root "
        "or pytest-benchmark JSON (repeatable)",
    )
    lab_history.add_argument(
        "--flag-regressions",
        action="store_true",
        dest="flag_regressions",
        help="exit 1 when any series' latest point is worse than its "
        "best-ever value beyond the tolerance",
    )
    lab_history.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative regression tolerance (default 0.05)",
    )
    lab_history.add_argument(
        "--absolute-floor",
        type=float,
        default=0.0,
        dest="absolute_floor",
        metavar="SLACK",
        help="absolute slack when a series' best-ever value is 0 and "
        "relative tolerance is meaningless (default 0.0: any move off "
        "a zero best is flagged)",
    )
    lab_history.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="show only the newest N trend points",
    )
    lab_history.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit trend/regression data as one JSON object",
    )
    lab_history.add_argument(
        "--db",
        default=None,
        help="history database path (default: <lab-root>/history.sqlite)",
    )
    lab_history.add_argument("--root", default=None, help=root_help)

    lab_diff = lab_commands.add_parser(
        "diff",
        help="compare two recorded runs' cached artifacts (exit 1 on "
        "regression)",
    )
    lab_diff.add_argument("run_a", help="baseline run id (see `lab status`)")
    lab_diff.add_argument("run_b", help="candidate run id")
    lab_diff.add_argument("--root", default=None, help=root_help)

    lab_sweep = lab_commands.add_parser(
        "sweep",
        help="run a scenario grid through the lab and render one "
        "comparison table (axes as columns)",
    )
    lab_sweep.add_argument("file", help="JSON grid file ({'base':..., 'axes':...})")
    lab_sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes (default: one per CPU)",
    )
    lab_sweep.add_argument(
        "--force", action="store_true", help="ignore cached artifacts"
    )
    lab_sweep.add_argument(
        "--markdown",
        action="store_true",
        help="render the table as Markdown instead of ASCII",
    )
    lab_sweep.add_argument(
        "--output", default=None, help="write the table to this file"
    )
    lab_sweep.add_argument("--root", default=None, help=root_help)
    _add_backend_options(lab_sweep)

    scenario = commands.add_parser(
        "scenario",
        help="declarative machine + workload specs (JSON in, metrics out)",
    )
    scenario_commands = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_run = scenario_commands.add_parser(
        "run", help="simulate scenario specs (or grids) from JSON files"
    )
    scenario_run.add_argument(
        "files", nargs="+", help="JSON files: one spec, a grid, or a list"
    )
    scenario_run.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print results as a JSON array instead of tables",
    )
    scenario_run.add_argument(
        "--lab",
        action="store_true",
        help="execute through the lab (parallel, content-addressed cache)",
    )
    scenario_run.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for --lab (default: one per CPU)",
    )
    scenario_run.add_argument(
        "--force", action="store_true", help="with --lab: ignore the cache"
    )
    scenario_run.add_argument("--root", default=None, help=root_help)
    _add_engine_options(scenario_run)
    scenario_run.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write a Chrome/Perfetto trace of each simulation "
        "(multiple specs get -1, -2, ... suffixes); open in ui.perfetto.dev",
    )

    scenario_commands.add_parser(
        "list",
        help="show every registered mapping/workload/drive/program kind",
    )

    scenario_diff = scenario_commands.add_parser(
        "diff",
        help="simulate two design points and compare them metric by "
        "metric (exit 1 on regression)",
    )
    scenario_diff.add_argument("file_a", help="baseline spec (one JSON spec)")
    scenario_diff.add_argument("file_b", help="candidate spec (one JSON spec)")

    check = commands.add_parser(
        "check",
        help="static conflict/hazard analysis of scenario specs "
        "(no simulation; exit 1 on error findings)",
    )
    check.add_argument(
        "files", nargs="+", help="JSON files: one spec, a grid, or a list"
    )
    check.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print findings as JSON instead of the line grammar",
    )

    run = commands.add_parser(
        "run", help="execute a vector-assembly file on the decoupled machine"
    )
    run.add_argument("file", help="assembly file (see `repro run --help`)")
    run.add_argument("--t", type=int, default=3)
    run.add_argument("--s", type=int, default=4)
    run.add_argument("--y", type=int, default=None)
    run.add_argument("--register-length", type=int, default=128)
    run.add_argument("--chaining", action="store_true")
    run.add_argument(
        "--dump",
        default=None,
        metavar="BASE:STRIDE:COUNT",
        help="print a memory vector after the run",
    )

    return parser


def _build_config(t: int, s: int, y: int | None, q: int = 1, qp: int = 1):
    if y is None:
        return MemoryConfig.matched(t=t, s=s, input_capacity=q, output_capacity=qp)
    return MemoryConfig.unmatched(
        t=t, s=s, y=y, input_capacity=q, output_capacity=qp
    )


def command_plan(args: argparse.Namespace) -> int:
    config = _build_config(args.t, args.s, args.y, args.q, args.qp)
    planner = AccessPlanner(config.mapping, config.t)
    system = MemorySystem(config)
    vector = VectorAccess(args.base, args.stride, args.length)

    plan = planner.plan(vector, mode=args.mode)
    result = system.run_plan(plan)
    print(f"memory:  {config.describe()}")
    print(f"access:  {vector} (family x={vector.family}, sigma={vector.sigma})")
    print(f"scheme:  {plan.scheme}")
    print(f"result:  {describe_result(result, config.service_ratio)}")
    if args.timeline:
        print(render_timeline(result, config.module_count))
    return 0


def command_window(args: argparse.Namespace) -> int:
    if args.unmatched:
        design = UnmatchedDesign.recommended(args.lam, args.t)
        window = design.fused_window()
        print(
            f"unmatched design: M={design.module_count}, T={1 << args.t}, "
            f"s={design.s}, y={design.y}"
        )
    else:
        matched = MatchedDesign.recommended(args.lam, args.t)
        window = matched.window()
        print(
            f"matched design: M={matched.module_count}, T={1 << args.t}, "
            f"s={matched.s}"
        )
    fraction = conflict_free_fraction(window.high)
    eta = efficiency(window.high, args.t)
    print(f"conflict-free families: {window} ({window.size} families)")
    print(f"stride coverage f = {fraction} ({float(fraction):.6f})")
    print(f"efficiency eta = {float(eta):.4f}")
    return 0


def command_experiments(args: argparse.Namespace) -> int:
    wanted = (
        [item.strip().upper() for item in args.ids.split(",") if item.strip()]
        if args.ids
        else sorted(ALL_EXPERIMENTS)
    )
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    failures = 0
    for experiment_id in wanted:
        result = ALL_EXPERIMENTS[experiment_id]()
        print(f"== {experiment_id}: {result.title}")
        print(render_table(result.headers, result.rows))
        for check in result.checks:
            status = "ok " if check.passed else "FAIL"
            print(f"[{status}] {check.claim}")
            if not check.passed:
                failures += 1
        print()
    if failures:
        print(f"{failures} checks FAILED", file=sys.stderr)
        return 1
    return 0


def command_survey(args: argparse.Namespace) -> int:
    config = _build_config(args.t, args.s, args.y)
    planner = AccessPlanner(config.mapping, config.t)
    system = MemorySystem(config)
    minimum = config.service_ratio + args.length + 1
    rows = []
    for stride in range(1, args.max_stride + 1):
        vector = VectorAccess(0, stride, args.length)
        plan = planner.plan(vector, mode="auto")
        result = system.run_plan(plan)
        rows.append(
            [
                stride,
                vector.family,
                plan.scheme,
                result.latency,
                result.conflict_free,
            ]
        )
    print(f"{config.describe()}, L={args.length}, minimum latency {minimum}")
    print(
        render_table(
            ["stride", "family", "scheme", "latency", "conflict-free"], rows
        )
    )
    return 0


def command_lab(args: argparse.Namespace) -> int:
    from repro.lab import (
        ArtifactStore,
        build_registry,
        default_lab_root,
        run_jobs,
        summarize_cached,
        write_run_artifacts,
    )

    if args.lab_command == "worker":
        # Workers serve a spool directory and own no lab root: results
        # travel back as done-files and only the coordinator persists
        # them into its store.
        return _lab_worker(args)

    if args.lab_command == "serve":
        return _lab_serve(args)

    store = ArtifactStore(args.root or default_lab_root())
    registry = build_registry()

    if args.lab_command == "run":
        if args.ids:
            lookup = {job_id.lower(): job_id for job_id in registry}
            wanted = [
                lookup.get(item.strip().lower(), item.strip())
                for item in args.ids.split(",")
                if item.strip()
            ]
            unknown = sorted(set(wanted) - set(registry))
            if unknown:
                print(
                    f"unknown job ids: {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(registry))})",
                    file=sys.stderr,
                )
                return 2
            specs = [registry[job_id] for job_id in dict.fromkeys(wanted)]
        else:
            specs = list(registry.values())
        overrides = _parse_param_overrides(args.param)
        if overrides:
            from repro.errors import ConfigurationError
            from repro.lab import experiment_spec

            # An override that matches no selected job would otherwise
            # silently run the default design point under a PASS banner.
            selected = {spec.job_id for spec in specs}
            unmatched = sorted(set(overrides) - selected)
            if unmatched:
                raise ConfigurationError(
                    f"--param job id(s) {', '.join(unmatched)} are not in "
                    f"the selected jobs ({', '.join(sorted(selected))})"
                )
            specs = [
                experiment_spec(spec.job_id, **overrides[spec.job_id])
                if spec.job_id in overrides
                else spec
                for spec in specs
            ]
        report = run_jobs(
            specs,
            store=store,
            workers=args.jobs,
            force=args.force,
            progress=print,
            backend=_build_backend(args, store),
        )
        run_dir = write_run_artifacts(store, report)
        print(
            f"run {report.run_id}: {len(report.outcomes)} jobs, "
            f"{report.cache_hits} cache hits, {report.executed} executed, "
            f"{len(report.failures)} failed in {report.elapsed_seconds:.1f}s"
        )
        print(f"manifest: {run_dir / 'manifest.json'}")
        if report.failures:
            failed = ", ".join(o.spec.job_id for o in report.failures)
            print(f"failed jobs: {failed}", file=sys.stderr)
            return 1
        return 0

    if args.lab_command == "merge":
        other = ArtifactStore(args.other_root)
        counts = store.merge(other)
        print(
            f"merged {other.root} into {store.root}: "
            f"{counts['artifacts_imported']} artifact(s) imported, "
            f"{counts['artifacts_skipped']} already present, "
            f"{counts['corrupt_skipped']} corrupt skipped, "
            f"{counts['runs_imported']} run(s) imported"
        )
        return 0

    if args.lab_command == "status":
        import json as json_module

        from repro.lab import recent_run_metrics, status_payload

        payload = status_payload(store, registry)
        if args.metrics:
            payload["run_metrics"] = recent_run_metrics(store)
        if args.as_json:
            print(json_module.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.metrics:
            entries = payload["run_metrics"]
            if not entries:
                print(f"no run manifests under {store.runs_dir}")
                return 0
            print(f"lab root: {store.root}")
            rows = []
            for entry in entries:
                metrics = entry["metrics"]
                hit_rate = metrics.get("cache_hit_rate")
                queue = metrics.get("queue_latency_mean_seconds")
                rows.append(
                    [
                        entry["run_id"],
                        entry["backend"] or "-",
                        entry["job_count"],
                        (
                            f"{hit_rate:.0%}"
                            if isinstance(hit_rate, (int, float))
                            else "-"
                        ),
                        (
                            f"{queue:.3f}s"
                            if isinstance(queue, (int, float))
                            else "-"
                        ),
                        f"{entry['elapsed_seconds']:.1f}s",
                        entry["failures"],
                    ]
                )
            print(
                render_table(
                    [
                        "run",
                        "backend",
                        "jobs",
                        "hit rate",
                        "mean queue",
                        "wall",
                        "failed",
                    ],
                    rows,
                )
            )
            extras = {
                key: value
                for entry in entries
                for key, value in entry["metrics"].items()
                if key.startswith(("spool_", "pool_"))
            }
            if extras:
                newest = entries[0]["metrics"]
                detail = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(newest.items())
                    if key.startswith(("spool_", "pool_"))
                )
                if detail:
                    print(f"newest run backend detail: {detail}")
            return 0
        rows = []
        for job in payload["jobs"]:
            if not job["cached"]:
                rows.append([job["job_id"], job["kind"], "-", "-", "-"])
            else:
                rows.append(
                    [
                        job["job_id"],
                        job["kind"],
                        "yes",
                        "pass" if job["all_passed"] else "FAIL",
                        f"{job['elapsed_seconds']:.2f}s",
                    ]
                )
        print(f"lab root: {store.root}")
        print(
            f"cached:   {payload['cached']}/{payload['registered']} "
            "registered jobs"
        )
        print(render_table(["job", "kind", "cached", "checks", "cost"], rows))
        runs = payload["runs"]
        if runs:
            print()
            print(
                render_table(
                    ["run", "when", "jobs", "hits", "failed", "elapsed"],
                    [
                        [
                            run["run_id"],
                            run["created_at"],
                            run["job_count"],
                            run["cache_hits"],
                            run["failures"],
                            f"{run['elapsed_seconds']:.1f}s",
                        ]
                        for run in runs
                    ],
                )
            )
        return 0

    if args.lab_command == "summarize":
        markdown, missing = summarize_cached(store, registry)
        if markdown is None:
            print(
                f"no cached results under {store.root} — run `repro lab run` "
                "first",
                file=sys.stderr,
            )
            return 1
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(markdown)
            print(f"wrote {args.output} ({len(missing)} jobs not cached)")
        else:
            print(markdown)
        return 0

    if args.lab_command == "diff":
        from repro.lab import diff_runs, render_diff

        diff = diff_runs(store, args.run_a, args.run_b)
        print(render_diff(diff))
        return 1 if diff.has_regressions else 0

    if args.lab_command == "sweep":
        return _lab_sweep(args, store)

    if args.lab_command == "history":
        return _lab_history(args, store)

    if args.verify:
        report = store.verify()
        print(
            f"verified {report['checked']} artifact(s) under {store.root}: "
            f"{len(report['ok'])} ok, {len(report['stale'])} stale, "
            f"{len(report['mismatched'])} mismatched, "
            f"{len(report['corrupt'])} corrupt, "
            f"{len(report['unverifiable'])} unverifiable"
        )
        for label in ("stale", "mismatched", "corrupt", "unverifiable"):
            for address in report[label]:
                print(f"  [{label}] {address}")
        if args.prune_stale:
            pruned = store.prune_stale_index()
            print(f"pruned {len(pruned)} dangling index row(s)")
        return 1 if report["mismatched"] or report["corrupt"] else 0

    if args.prune_stale:
        pruned = store.prune_stale_index()
        print(
            f"pruned {len(pruned)} dangling index row(s) from "
            f"{store.index_path}"
        )
        for address in pruned:
            print(f"  [pruned] {address}")
        return 0

    count = store.rebuild_index()
    print(f"indexed {count} artifacts into {store.index_path}")
    return 0


def _lab_worker(args: argparse.Namespace) -> int:
    """`repro lab worker`: serve one spool directory until done/idle."""
    from pathlib import Path

    from repro.lab import serve

    spool_dir = Path(args.spool_dir)
    if args.once and not spool_dir.is_dir():
        print(f"no such spool directory: {spool_dir}", file=sys.stderr)
        return 2
    stats = serve(
        spool_dir,
        poll=args.poll,
        max_idle=args.max_idle,
        max_jobs=args.max_jobs,
        once=args.once,
        progress=print,
    )
    print(
        f"worker done: {stats.executed} job(s) executed, "
        f"{stats.skipped} claim(s) skipped"
    )
    return 0


def _lab_serve(args: argparse.Namespace) -> int:
    """`repro lab serve`: the persistent HTTP front door to the lab."""
    from repro.lab import ArtifactStore, default_lab_root
    from repro.serve import ServeApp, run_until_signalled

    store = ArtifactStore(args.root or default_lab_root())

    def backend_factory():
        # A fresh backend per batch: SpoolBackend carries per-run
        # mutable counters, so concurrent batches must not share one.
        return _build_backend(args, store)

    def log(message: str) -> None:
        print(message, flush=True)

    app = ServeApp(
        store,
        host=args.host,
        port=args.port,
        backend_factory=backend_factory,
        queue_workers=args.jobs,
        access_log=log,
    )
    return run_until_signalled(app, log=log)


def _lab_sweep(args: argparse.Namespace, store) -> int:
    """Run one scenario grid through the lab, render one comparison table."""
    from pathlib import Path

    from repro.lab import (
        decode_rows,
        run_jobs,
        scenario_job,
        write_run_artifacts,
    )
    from repro.report.sweeps import sweep_table
    from repro.report.tables import render_markdown
    from repro.scenarios import load_grid

    path = Path(args.file)
    if not path.is_file():
        print(f"no such grid file: {args.file}", file=sys.stderr)
        return 2
    grid = load_grid(path.read_text())
    specs = grid.expand()
    jobs = [scenario_job(spec) for spec in specs]
    report = run_jobs(
        jobs,
        store=store,
        workers=args.jobs,
        force=args.force,
        progress=print,
        backend=_build_backend(args, store),
    )
    write_run_artifacts(store, report)
    outcomes = {outcome.spec.job_id: outcome for outcome in report.outcomes}
    records = []
    for job in jobs:
        outcome = outcomes.get(job.job_id)
        if outcome is None:
            records.append({})
            continue
        records.append(
            {
                str(metric): value
                for metric, value in decode_rows(
                    outcome.record.get("rows", [])
                )
            }
        )
    headers, rows = sweep_table(grid, records)
    renderer = render_markdown if args.markdown else render_table
    table = renderer(headers, rows, title=grid.describe())
    if args.output:
        Path(args.output).write_text(table + "\n")
        print(f"wrote {args.output} ({len(rows)} design points)")
    else:
        print(table)
    print(
        f"run {report.run_id}: {len(report.outcomes)} design points, "
        f"{report.cache_hits} cache hits, {len(report.failures)} failed"
    )
    if report.failures:
        failed = ", ".join(o.spec.job_id for o in report.failures)
        print(f"failed design points: {failed}", file=sys.stderr)
        return 1
    return 0


def _lab_history(args: argparse.Namespace, store) -> int:
    """`repro lab history`: cross-run trends and regression gating.

    Every invocation re-ingests the lab root's run manifests (ingestion
    is idempotent), plus whatever ``--ingest`` paths name — bench JSON
    artifacts, detached manifests, whole lab roots.  ``--metric``
    renders the trend; ``--flag-regressions`` compares each series'
    latest point against its best-ever value and exits 1 on slippage.
    """
    import json as json_module
    from pathlib import Path

    from repro.obs.history import (
        HISTORY_FILENAME,
        HistoryDB,
        metric_direction,
    )

    db = HistoryDB(Path(args.db) if args.db else store.root / HISTORY_FILENAME)
    info = sys.stderr if args.as_json else sys.stdout
    counts = db.ingest_store(store)
    if counts["manifests"]:
        print(
            f"ingested {counts['manifests']} manifest(s) "
            f"({counts['metrics']} metric points) from {store.runs_dir}",
            file=info,
        )
    for target in args.ingest:
        count = db.ingest_path(Path(target))
        print(f"ingested {count} metric point(s) from {target}", file=info)

    flagged: list[dict] = []
    if args.flag_regressions:
        flagged = db.flag_regressions(
            metric=args.metric,
            scenario=args.scenario,
            tolerance=args.tolerance,
            absolute_floor=args.absolute_floor,
        )

    if args.as_json:
        payload: dict = {"db": str(db.path)}
        if args.metric:
            payload["metric"] = args.metric
            payload["direction"] = metric_direction(args.metric)
            payload["points"] = db.trend(
                args.metric, scenario=args.scenario, limit=args.limit
            )
        else:
            payload["runs"] = db.runs()
            payload["metrics"] = [
                {"metric": name, "points": count}
                for name, count in db.metric_names()
            ]
        if args.flag_regressions:
            payload["regressions"] = flagged
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 1 if flagged else 0

    if args.metric:
        points = db.trend(
            args.metric, scenario=args.scenario, limit=args.limit
        )
        if not points:
            print(
                f"no points for metric {args.metric!r}"
                + (f" matching {args.scenario!r}" if args.scenario else "")
                + f" in {db.path}",
                file=sys.stderr,
            )
            return 0 if args.flag_regressions and not flagged else 2
        direction = metric_direction(args.metric)
        arrow = {"lower": "(lower is better)", "higher": "(higher is better)"}
        print(
            f"{args.metric} — {len(points)} point(s) "
            f"{arrow.get(direction, '(direction unknown)')}"
        )
        print(
            render_table(
                ["when", "run", "job", "scenario", "commit", "value"],
                [
                    [
                        point["created_at"] or "-",
                        point["run_id"],
                        point["job_id"],
                        point["scenario"] or "-",
                        (point["git_commit"] or "")[:10] or "-",
                        point["value"],
                    ]
                    for point in points
                ],
            )
        )
    else:
        runs = db.runs()
        names = db.metric_names()
        print(f"history db: {db.path}")
        print(f"{len(runs)} run(s), {len(names)} distinct metric(s)")
        if names:
            print(
                render_table(
                    ["metric", "points"],
                    [[name, count] for name, count in names],
                )
            )
        print("pick one with --metric <name>")

    if args.flag_regressions:
        if flagged:
            print(f"{len(flagged)} regression(s) flagged:", file=sys.stderr)
            for entry in flagged:
                print(
                    f"  {entry['job_id']} {entry['metric']}: latest "
                    f"{entry['latest']:g} vs best {entry['best']:g} "
                    f"({entry['direction']} is better, "
                    f"{entry['points']} points, run {entry['run_id']})",
                    file=sys.stderr,
                )
            return 1
        print("no regressions beyond tolerance")
    return 0


def _parse_param_overrides(items: list[str]) -> dict[str, dict]:
    """``JOB:KEY=VALUE`` strings to ``{job_id: {key: value}}``.

    Values parse as JSON when possible (so ``8`` is an int and
    ``true`` a bool) and fall back to plain strings.
    """
    import json

    from repro.errors import ConfigurationError

    overrides: dict[str, dict] = {}
    for item in items:
        head, separator, raw = item.partition("=")
        job_id, colon, key = head.partition(":")
        if not separator or not colon or not job_id or not key:
            raise ConfigurationError(
                f"bad --param {item!r}; expected JOB:KEY=VALUE "
                "(e.g. E03:lambda_exponent=8)"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides.setdefault(job_id.strip().upper(), {})[key.strip()] = value
    return overrides


def command_check(args: argparse.Namespace) -> int:
    """``repro check``: every finding for every file, exit 1 on errors.

    Parse failures are findings (``SL304``), not exceptions — one
    broken file still reports, and still checks its siblings.  Exit 2
    is reserved for usage errors (a missing file), matching the other
    subcommands.
    """
    from pathlib import Path

    from repro.check import check_document

    reports = []
    for filename in args.files:
        path = Path(filename)
        if not path.is_file():
            print(f"no such scenario file: {filename}", file=sys.stderr)
            return 2
        reports.append(
            (filename, check_document(path.read_text(), source=filename))
        )
    if args.as_json:
        import json

        print(
            json.dumps(
                [
                    dict(report.to_dict(), file=filename)
                    for filename, report in reports
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if any(report.has_errors for _, report in reports) else 0
    total = {"error": 0, "warn": 0, "info": 0}
    for _filename, report in reports:
        for finding in report.findings:
            print(finding.render())
        for severity in total:
            total[severity] += report.count(severity)
    print(
        f"{sum(total.values())} finding(s): {total['error']} error(s), "
        f"{total['warn']} warning(s), {total['info']} info"
    )
    return 1 if any(report.has_errors for _, report in reports) else 0


def command_scenario(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.scenarios import (
        CATEGORIES,
        example_params,
        kinds,
        load_scenarios,
        simulate,
        summary,
        validate_spec_kinds,
    )

    if args.scenario_command == "list":
        for category in CATEGORIES:
            print(f"{category} kinds:")
            for kind in kinds(category):
                example = example_params(category, kind)
                print(f"  {kind:20s} {summary(category, kind)}")
                print(f"  {'':20s} example params: {example}")
            print()
        return 0

    if args.scenario_command == "diff":
        from repro.scenarios import diff_results, render_scenario_diff

        sides = []
        for filename in (args.file_a, args.file_b):
            path = Path(filename)
            if not path.is_file():
                print(f"no such scenario file: {filename}", file=sys.stderr)
                return 2
            loaded = load_scenarios(path.read_text())
            if len(loaded) != 1:
                print(
                    f"{filename} holds {len(loaded)} design points; "
                    "`scenario diff` compares exactly one per file",
                    file=sys.stderr,
                )
                return 2
            sides.append(loaded[0])
        spec_a, spec_b = sides
        result_a, result_b = simulate(spec_a), simulate(spec_b)
        diff = diff_results(
            result_a.to_dict(),
            result_b.to_dict(),
            label_a=spec_a.name or args.file_a,
            label_b=spec_b.name or args.file_b,
        )
        print(render_scenario_diff(diff))
        return 1 if diff.has_regressions else 0

    specs = []
    for filename in args.files:
        path = Path(filename)
        if not path.is_file():
            print(f"no such scenario file: {filename}", file=sys.stderr)
            return 2
        specs.extend(load_scenarios(path.read_text()))
    if not specs:
        print("no scenarios found in the given files", file=sys.stderr)
        return 2
    for spec in specs:
        validate_spec_kinds(spec)
    _batch_workers_of(args)  # reject --batch-workers without --engine batch

    if args.trace and args.lab:
        print(
            "--trace needs the in-process simulator; drop --lab "
            "(lab jobs run in worker processes, which cannot stream "
            "trace events back)",
            file=sys.stderr,
        )
        return 2
    if args.trace and args.engine == "batch":
        print(
            "--trace needs the per-point simulator; drop --engine batch "
            "(the analytic fast path never runs a cycle loop, so there "
            "are no trace events to record)",
            file=sys.stderr,
        )
        return 2

    if args.lab:
        from repro.lab import (
            ArtifactStore,
            default_lab_root,
            run_jobs,
            scenario_job,
            write_run_artifacts,
        )

        store = ArtifactStore(args.root or default_lab_root())
        jobs = [scenario_job(spec) for spec in specs]
        report = run_jobs(
            jobs,
            store=store,
            workers=args.jobs,
            force=args.force,
            progress=print,
            backend=_build_backend(args, store),
        )
        run_dir = write_run_artifacts(store, report)
        print(
            f"run {report.run_id}: {len(report.outcomes)} scenarios, "
            f"{report.cache_hits} cache hits, {report.executed} executed"
        )
        print(f"manifest: {run_dir / 'manifest.json'}")
        return 1 if report.failures else 0

    if args.trace:
        from repro.obs import Tracer, write_chrome_trace

        trace_base = Path(args.trace)
        info = sys.stderr if args.as_json else sys.stdout
        results = []
        for index, spec in enumerate(specs):
            tracer = Tracer()
            results.append((spec, simulate(spec, tracer=tracer)))
            if len(specs) == 1:
                target = trace_base
            else:
                target = trace_base.with_name(
                    f"{trace_base.stem}-{index + 1}{trace_base.suffix}"
                )
            written = write_chrome_trace(tracer, target)
            print(
                f"trace: {written} ({len(tracer.events)} events, "
                f"{spec.describe()})",
                file=info,
            )
    elif args.engine == "batch":
        from repro.batch import evaluate_batch

        report = evaluate_batch(
            specs, validate=args.validate, workers=args.batch_workers
        )
        results = list(zip(specs, report.results))
        workers_note = (
            f", {report.workers} workers" if report.workers > 1 else ""
        )
        print(
            f"batch: {len(specs)} design points "
            f"({report.analytic_count} analytic, {report.soa_count} "
            f"batched, {report.fallback_count} fallback, "
            f"{report.validated_count} validated{workers_note}, "
            f"{report.plan_cache_hits} plan-cache hits)",
            file=sys.stderr if args.as_json else sys.stdout,
        )
    else:
        results = [(spec, simulate(spec)) for spec in specs]
    if args.as_json:
        import json

        print(
            json.dumps(
                [
                    {"spec": spec.to_dict(), "result": result.to_dict()}
                    for spec, result in results
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for spec, result in results:
        print(f"== {spec.describe()}")
        print(render_table(["metric", "value"], result.metric_rows()))
        if result.timeline:
            from repro.scenarios import TIMELINE_FIELDS

            print()
            print(
                render_table(
                    list(TIMELINE_FIELDS),
                    [list(row) for row in result.timeline],
                )
            )
        print()
    return 0


def command_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.processor.decoupled import DecoupledVectorMachine
    from repro.processor.program import parse_source

    config = _build_config(args.t, args.s, args.y, q=2)
    machine = DecoupledVectorMachine(
        config,
        register_length=args.register_length,
        chaining=args.chaining,
    )
    # Same parser the 'instructions'/'asm' scenario program kinds use:
    # .init/.fill directives preload memory, the rest is the program.
    program, inits = parse_source(Path(args.file).read_text())
    for base, stride, values in inits:
        machine.store.write_vector(base, stride, values)
    result = machine.run(program)

    print(f"memory:  {config.describe()}")
    print(f"program: {len(program)} instructions "
          f"({program.memory_instruction_count()} memory ops)")
    print(f"cycles:  {result.total_cycles} "
          f"(chained ops: {result.chained_count()}, conflict-free loads: "
          f"{result.conflict_free_loads()})")
    for timing in result.timings:
        print(
            f"  [{timing.start_cycle:6d}..{timing.end_cycle:6d}] "
            f"{timing.unit:7s} {timing.mnemonic:8s} {timing.mode}"
        )
    if args.dump:
        base, stride, count = (int(part) for part in args.dump.split(":"))
        values = machine.store.read_vector(base, stride, count)
        print(f"dump @{base} stride {stride}: {values}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "plan": command_plan,
        "window": command_window,
        "experiments": command_experiments,
        "survey": command_survey,
        "run": command_run,
        "lab": command_lab,
        "scenario": command_scenario,
        "check": command_check,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-print.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
