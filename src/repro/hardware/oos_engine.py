"""The Figure 6 out-of-order access engine, cycle by cycle.

Structure (Section 3.2 / 4.2 and Figure 6):

* **two address generators** — generator 1 produces the first
  subsequence (used only during the first ``2**t`` cycles); generator 2
  produces every later subsequence in natural order, one address per
  cycle;
* an **order queue** that records the alignment key (module /
  within-section module field / section) of each first-subsequence
  request;
* a ``2 * 2**t`` **latch file**, modelled as two banks of ``2**t``
  latches that swap roles every subsequence: while the current
  subsequence is issued from one bank (in the order-queue order), the
  other bank fills with generator 2's next subsequence;
* the issue **arbiter** that picks the latch named by the order queue.

Every structural budget is enforced (one add per generator per cycle,
bank occupancy, queue capacity); the emitted stream is asserted — in
tests and in experiment E15 — to equal the abstract conflict-free plan
request for request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.planner import AccessPlanner
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import HardwareModelError
from repro.hardware.datapath import LatchFile, OrderQueue
from repro.hardware.sequencer import Figure5AddressGenerator, GeneratedRequest


@dataclass(frozen=True)
class EngineReport:
    """Resource usage of one engine run (the Section 5-D cost audit)."""

    total_cycles: int
    generator1_adds: int
    generator2_adds: int
    latch_peak_occupancy: int
    latch_capacity: int
    order_queue_depth: int


class Figure6Engine:
    """Drives one conflict-free vector access with Figure 6's resources.

    Parameters
    ----------
    planner:
        Supplies the mapping, ``t`` and the reorder-key selection logic
        (identical to the abstract planner so the two stay in lockstep).
    vector:
        The access to perform; must lie inside the conflict-free window
        (the engine raises :class:`~repro.errors.OrderingError` through
        the decomposition otherwise, exactly like the planner).
    """

    def __init__(self, planner: AccessPlanner, vector: VectorAccess):
        self.planner = planner
        self.vector = vector
        w, key_of = planner._reorder_parameters(vector)
        self.key_of = key_of
        self.plan = build_subsequences(vector, w, planner.t)
        self.slots = self.plan.elements_per_subsequence  # 2**t
        self.total_subsequences = (
            self.plan.chunks * self.plan.subsequences_per_chunk
        )
        self.order_queue = OrderQueue(self.slots)
        self.bank_a = LatchFile("bank-a", self.slots)
        self.bank_b = LatchFile("bank-b", self.slots)
        self._stream: list[GeneratedRequest] | None = None
        self._report: EngineReport | None = None

    def run(self) -> list[GeneratedRequest]:
        """Produce the full issue stream (one request per cycle)."""
        if self._stream is not None:
            return self._stream

        generator1 = Figure5AddressGenerator(self.plan, start_subsequence=0)
        generator2 = (
            Figure5AddressGenerator(self.plan, start_subsequence=1)
            if self.total_subsequences > 1
            else None
        )

        stream: list[GeneratedRequest] = []
        cycle = 0

        # Phase 1 — first subsequence: issue straight from generator 1,
        # record the key order, and fill bank A with the second
        # subsequence from generator 2.
        for _ in range(self.slots):
            cycle += 1
            produced = generator1.step()
            key = self._key(produced.address)
            self.order_queue.push(key)
            stream.append(
                GeneratedRequest(cycle, produced.element_index, produced.address)
            )
            if generator2 is not None and not generator2.done:
                ahead = generator2.step()
                self.bank_a.write(
                    self._key(ahead.address), ahead.element_index, ahead.address
                )
        self.order_queue.seal()

        # Phase 2 — every later subsequence: issue from the full bank in
        # the recorded key order while the other bank fills.
        banks = (self.bank_a, self.bank_b)
        for subsequence in range(1, self.total_subsequences):
            issue_bank = banks[(subsequence - 1) % 2]
            fill_bank = banks[subsequence % 2]
            for position in range(self.slots):
                cycle += 1
                key = self.order_queue.key_at(position)
                element_index, address = issue_bank.read(key)
                stream.append(GeneratedRequest(cycle, element_index, address))
                if generator2 is not None and not generator2.done:
                    ahead = generator2.step()
                    fill_bank.write(
                        self._key(ahead.address), ahead.element_index, ahead.address
                    )
            if not issue_bank.is_empty():
                raise HardwareModelError(
                    f"bank not drained after subsequence {subsequence}"
                )

        if len(stream) != self.vector.length:
            raise HardwareModelError(
                f"engine produced {len(stream)} requests for a vector of "
                f"length {self.vector.length}"
            )
        self._stream = stream
        self._report = EngineReport(
            total_cycles=cycle,
            generator1_adds=generator1.adder.total_operations
            + generator1.reg_adder.total_operations,
            generator2_adds=(
                generator2.adder.total_operations
                + generator2.reg_adder.total_operations
                if generator2 is not None
                else 0
            ),
            latch_peak_occupancy=max(
                self.bank_a.peak_occupancy, self.bank_b.peak_occupancy
            ),
            latch_capacity=2 * self.slots,
            order_queue_depth=self.slots,
        )
        return stream

    def report(self) -> EngineReport:
        """Resource audit; runs the engine if necessary."""
        self.run()
        assert self._report is not None
        return self._report

    def request_stream(self) -> list[tuple[int, int]]:
        """Adapter matching :class:`~repro.core.planner.AccessPlan`."""
        return [
            (produced.element_index, produced.address)
            for produced in self.run()
        ]

    def _key(self, address: int) -> int:
        key = self.key_of(address)
        if not 0 <= key < self.slots:
            raise HardwareModelError(
                f"alignment key {key} outside the {self.slots}-slot latch "
                "bank — this mapping/stride pair is not supported by the "
                "Figure 6 engine"
            )
        return key
