"""Vector register files: random-access vs FIFO (Section 5-D).

Out-of-order element return requires the vector register to be written by
element index — a random-access organisation — whereas ordered access can
use a simple FIFO.  Both are modelled so the processor layer (and the
tests) can demonstrate the paper's point: feeding an out-of-order result
stream into a FIFO register corrupts element placement and is rejected.
"""

from __future__ import annotations

from repro.errors import RegisterFileError


class RandomAccessVectorRegister:
    """A vector register writable at any element position."""

    def __init__(self, length: int):
        if length < 1:
            raise RegisterFileError(f"register length must be >= 1, got {length}")
        self.length = length
        self._values: list[float | None] = [None] * length
        self.writes = 0

    def write(self, index: int, value: float) -> None:
        if not 0 <= index < self.length:
            raise RegisterFileError(
                f"element {index} out of range for register of length "
                f"{self.length}"
            )
        self._values[index] = value
        self.writes += 1

    def read(self, index: int) -> float:
        if not 0 <= index < self.length:
            raise RegisterFileError(
                f"element {index} out of range for register of length "
                f"{self.length}"
            )
        value = self._values[index]
        if value is None:
            raise RegisterFileError(
                f"element {index} read before it was written"
            )
        return value

    @property
    def full(self) -> bool:
        """All elements present (the decoupled execute unit's ready bit)."""
        return all(value is not None for value in self._values)

    @property
    def valid_count(self) -> int:
        return sum(1 for value in self._values if value is not None)

    def as_list(self) -> list[float]:
        """The complete contents; raises if any element is missing."""
        if not self.full:
            raise RegisterFileError(
                f"register incomplete: {self.valid_count}/{self.length} "
                "elements written"
            )
        return [value for value in self._values if value is not None]

    def clear(self) -> None:
        self._values = [None] * self.length


class FifoVectorRegister:
    """A FIFO-organised register: elements must arrive in order.

    Adequate for ordered access (Section 5-D); raises on any
    out-of-order write, demonstrating why the out-of-order scheme needs
    the random-access organisation.
    """

    def __init__(self, length: int):
        if length < 1:
            raise RegisterFileError(f"register length must be >= 1, got {length}")
        self.length = length
        self._values: list[float] = []

    def write(self, index: int, value: float) -> None:
        expected = len(self._values)
        if index != expected:
            raise RegisterFileError(
                f"FIFO register expected element {expected} next but "
                f"received element {index}; out-of-order return requires a "
                "random-access register"
            )
        if expected >= self.length:
            raise RegisterFileError("FIFO register overflow")
        self._values.append(value)

    def read(self, index: int) -> float:
        if not 0 <= index < len(self._values):
            raise RegisterFileError(
                f"element {index} not yet available in FIFO register"
            )
        return self._values[index]

    @property
    def full(self) -> bool:
        return len(self._values) == self.length

    def as_list(self) -> list[float]:
        if not self.full:
            raise RegisterFileError(
                f"register incomplete: {len(self._values)}/{self.length} "
                "elements written"
            )
        return list(self._values)


class VectorRegisterFile:
    """A named set of random-access vector registers (V0, V1, ...)."""

    def __init__(self, count: int, length: int):
        if count < 1:
            raise RegisterFileError(f"register count must be >= 1, got {count}")
        self.count = count
        self.length = length
        self._registers = [RandomAccessVectorRegister(length) for _ in range(count)]

    def register(self, number: int) -> RandomAccessVectorRegister:
        if not 0 <= number < self.count:
            raise RegisterFileError(
                f"register V{number} does not exist (file has {self.count})"
            )
        return self._registers[number]

    def load_values(self, number: int, values) -> None:
        """Fill a register wholesale (test/benchmark convenience)."""
        register = self.register(number)
        register.clear()
        for index, value in enumerate(values):
            register.write(index, value)
