"""Structural budget primitives for the register-level models.

The paper's hardware argument (Section 5-D) is that the out-of-order
access unit costs roughly the same as an ordered address generator: one
adder per generator, a ``2 * 2**t`` latch file, a small order queue and an
arbiter.  The models in this package *enforce* those budgets — every
adder use and latch write goes through the classes below, which raise
:class:`~repro.errors.HardwareModelError` on any cycle that would need
more hardware than Figures 5 and 6 provide.  The equivalence benches then
demonstrate that, within those budgets, the models emit exactly the
streams the abstract planner promises.
"""

from __future__ import annotations

from repro.errors import HardwareModelError


class BudgetedAdder:
    """An adder usable at most once per cycle.

    Call :meth:`new_cycle` at each cycle boundary; :meth:`add` raises if
    used twice within one cycle.
    """

    def __init__(self, name: str):
        self.name = name
        self._used_this_cycle = False
        self.total_operations = 0

    def new_cycle(self) -> None:
        self._used_this_cycle = False

    def add(self, left: int, right: int) -> int:
        if self._used_this_cycle:
            raise HardwareModelError(
                f"adder {self.name!r} used twice in one cycle — the Figure 5 "
                "datapath has a single adder per generator"
            )
        self._used_this_cycle = True
        self.total_operations += 1
        return left + right


class LatchFile:
    """A bank of labelled latches with occupancy tracking.

    Models the ``2 * 2**t`` latch file of Figure 6 (two banks of ``2**t``;
    this class is one bank).  Writing an occupied latch or reading an
    empty one is a structural hazard and raises.
    """

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self._slots: list[tuple[int, int] | None] = [None] * size
        self.peak_occupancy = 0

    def write(self, label: int, element_index: int, address: int) -> None:
        if not 0 <= label < self.size:
            raise HardwareModelError(
                f"latch bank {self.name!r}: label {label} out of range "
                f"[0, {self.size})"
            )
        if self._slots[label] is not None:
            raise HardwareModelError(
                f"latch bank {self.name!r}: slot {label} overwritten while "
                "occupied — the subsequence pipeline overflowed its budget"
            )
        self._slots[label] = (element_index, address)
        occupancy = sum(1 for slot in self._slots if slot is not None)
        self.peak_occupancy = max(self.peak_occupancy, occupancy)

    def read(self, label: int) -> tuple[int, int]:
        if not 0 <= label < self.size:
            raise HardwareModelError(
                f"latch bank {self.name!r}: label {label} out of range "
                f"[0, {self.size})"
            )
        slot = self._slots[label]
        if slot is None:
            raise HardwareModelError(
                f"latch bank {self.name!r}: slot {label} read while empty — "
                "an address was issued before its generator produced it"
            )
        self._slots[label] = None
        return slot

    @property
    def occupied(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    def is_empty(self) -> bool:
        return self.occupied == 0


class OrderQueue:
    """The queue storing the first subsequence's key order (Figure 6).

    Fixed capacity ``2**t``; filled once during the first subsequence and
    then read cyclically for every later subsequence.
    """

    def __init__(self, size: int):
        self.size = size
        self._keys: list[int] = []
        self._sealed = False

    def push(self, key: int) -> None:
        if self._sealed:
            raise HardwareModelError("order queue written after sealing")
        if len(self._keys) >= self.size:
            raise HardwareModelError(
                f"order queue overflow: capacity {self.size}"
            )
        self._keys.append(key)

    def seal(self) -> None:
        """Freeze the queue after the first subsequence."""
        if len(self._keys) != self.size:
            raise HardwareModelError(
                f"order queue sealed with {len(self._keys)} of {self.size} "
                "entries — the first subsequence did not cover every key"
            )
        self._sealed = True

    def key_at(self, position: int) -> int:
        if not self._sealed:
            raise HardwareModelError("order queue read before sealing")
        return self._keys[position % self.size]

    @property
    def keys(self) -> tuple[int, ...]:
        return tuple(self._keys)
