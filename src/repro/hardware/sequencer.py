"""The Figure 4 control and Figure 5 address-generation datapath.

One address is produced per cycle, in the Section 3.1 subsequence order,
using exactly the resources of Figure 5:

* registers ``A`` (request address) and ``SUB`` (first address of the
  current subsequence), one budgeted adder, and muxes selecting between
  the increments ``sigma * 2**x`` and ``sigma * 2**w`` (the compiler loads
  both, Section 3.1);
* an identical-but-narrower datapath for the vector-register element
  number with increments ``1`` and ``2**(w-x)``;
* three down-counters ``I`` (element in subsequence), ``J`` (subsequence
  in chunk) and ``K`` (chunk).

The emitted ``(element_index, address)`` stream equals
``subsequence_order(...)`` of the abstract layer cycle for cycle — the
equivalence is asserted in the tests and in experiment E15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.subsequences import SubsequencePlan, build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import HardwareModelError
from repro.hardware.datapath import BudgetedAdder


@dataclass(frozen=True)
class GeneratedRequest:
    """One cycle's output of an address generator."""

    cycle: int
    element_index: int
    address: int


class Figure5AddressGenerator:
    """Cycle-stepped model of the Figure 5 address calculation unit.

    Parameters
    ----------
    plan:
        The subsequence decomposition to walk (carries the vector, ``w``
        and ``t``).
    start_subsequence:
        Global subsequence number to start from (0 = the whole vector).
        The Figure 6 engine uses ``start_subsequence=1`` for its second
        generator, which begins with the second subsequence while the
        first generator covers the first.
    """

    def __init__(self, plan: SubsequencePlan, start_subsequence: int = 0):
        total = plan.chunks * plan.subsequences_per_chunk
        if not 0 <= start_subsequence < total:
            raise HardwareModelError(
                f"start_subsequence {start_subsequence} out of range "
                f"[0, {total})"
            )
        self.plan = plan
        vector = plan.vector
        self.increment_x = vector.stride  # sigma * 2**x
        self.increment_w = plan.intra_step_address  # sigma * 2**w
        self.reg_increment_x = 1
        self.reg_increment_w = plan.intra_step_elements  # 2**(w-x)
        self.adder = BudgetedAdder("address")
        self.reg_adder = BudgetedAdder("register-number")

        # Position the FSM at the first element of start_subsequence.  The
        # hardware reaches this state by the compiler loading SUB/A with
        # the subsequence's first address (one extra instruction); the
        # model computes it directly.
        chunk, sub_in_chunk = divmod(start_subsequence, plan.subsequences_per_chunk)
        first_element = chunk * plan.chunk_elements + sub_in_chunk
        self._sub_address = vector.address_of(first_element)
        self._address = self._sub_address
        self._sub_element = first_element
        self._element = first_element

        self._i = 0  # element position within subsequence (0-based)
        self._j = sub_in_chunk
        self._k = chunk
        self._cycle = 0
        self._done = False

    @property
    def done(self) -> bool:
        """All remaining subsequences exhausted."""
        return self._done

    def step(self) -> GeneratedRequest:
        """Advance one cycle: emit the current address, update datapath."""
        if self._done:
            raise HardwareModelError("address generator stepped after done")
        self._cycle += 1
        self.adder.new_cycle()
        self.reg_adder.new_cycle()
        emitted = GeneratedRequest(self._cycle, self._element, self._address)

        plan = self.plan
        last_i = plan.elements_per_subsequence - 1
        last_j = plan.subsequences_per_chunk - 1
        last_k = plan.chunks - 1

        if self._i < last_i:
            # Inner loop of Figure 4: A = A + sigma * 2**w.
            self._address = self.adder.add(self._address, self.increment_w)
            self._element = self.reg_adder.add(
                self._element, self.reg_increment_w
            )
            self._i += 1
        elif self._j < last_j:
            # Subsequence boundary: SUB = SUB + sigma*2**x || A = SUB',
            # one adder output feeding both registers.
            step = self.adder.add(self._sub_address, self.increment_x)
            self._sub_address = step
            self._address = step
            reg_step = self.reg_adder.add(self._sub_element, self.reg_increment_x)
            self._sub_element = reg_step
            self._element = reg_step
            self._i = 0
            self._j += 1
        elif self._k < last_k:
            # Chunk boundary: SUB = A + sigma*2**x || A = A + sigma*2**x.
            step = self.adder.add(self._address, self.increment_x)
            self._sub_address = step
            self._address = step
            reg_step = self.reg_adder.add(self._element, self.reg_increment_x)
            self._sub_element = reg_step
            self._element = reg_step
            self._i = 0
            self._j = 0
            self._k += 1
        else:
            self._done = True
        return emitted

    def run(self) -> list[GeneratedRequest]:
        """Emit the full remaining stream."""
        out: list[GeneratedRequest] = []
        while not self._done:
            out.append(self.step())
        return out


def ordered_generator_stream(vector: VectorAccess) -> list[GeneratedRequest]:
    """The baseline in-order address generator: ``A += stride`` per cycle.

    Provided for the complexity comparison of Section 5-D: the ordered
    unit is the degenerate ``w = x`` case of Figure 5 (one adder, one
    register, no SUB path).
    """
    adder = BudgetedAdder("ordered-address")
    address = vector.base
    out: list[GeneratedRequest] = []
    for index in range(vector.length):
        adder.new_cycle()
        out.append(GeneratedRequest(index + 1, index, address))
        if index + 1 < vector.length:
            address = adder.add(address, vector.stride)
    return out


def natural_order_stream(
    vector: VectorAccess, w: int, t: int
) -> list[GeneratedRequest]:
    """Convenience: full Figure 5 stream for ``vector`` against ``w``."""
    return Figure5AddressGenerator(build_subsequences(vector, w, t)).run()
