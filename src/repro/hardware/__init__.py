"""Register-level models of the paper's hardware (Figures 4, 5 and 6)."""

from repro.hardware.datapath import BudgetedAdder, LatchFile, OrderQueue
from repro.hardware.oos_engine import EngineReport, Figure6Engine
from repro.hardware.register_file import (
    FifoVectorRegister,
    RandomAccessVectorRegister,
    VectorRegisterFile,
)
from repro.hardware.sequencer import (
    Figure5AddressGenerator,
    GeneratedRequest,
    natural_order_stream,
    ordered_generator_stream,
)

__all__ = [
    "BudgetedAdder",
    "EngineReport",
    "FifoVectorRegister",
    "Figure5AddressGenerator",
    "Figure6Engine",
    "GeneratedRequest",
    "LatchFile",
    "OrderQueue",
    "RandomAccessVectorRegister",
    "VectorRegisterFile",
    "natural_order_stream",
    "ordered_generator_stream",
]
