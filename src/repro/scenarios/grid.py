"""Scenario grids: declarative parameter sweeps over spec fields.

A :class:`ScenarioGrid` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus axes — dotted field paths each with a list of values — that expands
to the cartesian product of design points, every one a full standalone
spec.  Like the spec itself the grid is pure data: it round-trips
through JSON, so a whole experiment grid can live in one committed file
and be fanned out by the lab (each point hashing to its own cache
entry).

Axis paths address the spec's dict form: ``"memory.t"``,
``"mapping.params.s"``, ``"workload.params.stride"``,
``"program.params.n"``.  Expansion order
is deterministic: axes are kept sorted by path (so the order survives
the canonical-JSON round trip) and later axes vary fastest, like
nested loops.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, canonical_json, freeze_value


@dataclass(frozen=True)
class ScenarioGrid:
    """A base spec plus ``(path, values)`` axes to sweep."""

    base: ScenarioSpec
    axes: tuple[tuple[str, tuple[object, ...]], ...]

    def __post_init__(self) -> None:
        # Canonical axis order (sorted by path): expansion order must
        # survive the JSON round trip, and canonical JSON sorts keys.
        object.__setattr__(
            self, "axes", tuple(sorted(self.axes, key=lambda axis: axis[0]))
        )
        seen = set()
        for path, values in self.axes:
            if not isinstance(path, str) or not path:
                raise ConfigurationError(f"axis path must be a string: {path!r}")
            if path in seen:
                raise ConfigurationError(f"duplicate grid axis {path!r}")
            seen.add(path)
            if not values:
                raise ConfigurationError(f"grid axis {path!r} has no values")
        # Fail fast on a path that does not exist in the base spec: a
        # typo would otherwise silently sweep nothing.
        if self.axes:
            first_point = next(iter(self._points()))
            self._apply(first_point)

    @classmethod
    def of(cls, base: ScenarioSpec, **axes) -> "ScenarioGrid":
        """Grid from keyword axes (dots spelled as ``__``)."""
        return cls(
            base,
            tuple(
                (path.replace("__", "."), tuple(values))
                for path, values in axes.items()
            ),
        )

    @property
    def size(self) -> int:
        count = 1
        for _path, values in self.axes:
            count *= len(values)
        return count

    def _points(self):
        paths = [path for path, _values in self.axes]
        for combination in itertools.product(
            *(values for _path, values in self.axes)
        ):
            yield list(zip(paths, combination))

    def _apply(self, point: list[tuple[str, object]]) -> ScenarioSpec:
        spec = self.base
        for path, value in point:
            spec = spec.replace(path, value)
        if spec.name:
            suffix = ",".join(
                f"{path.rsplit('.', 1)[-1]}={value}" for path, value in point
            )
            spec = spec.replace("name", f"{spec.name}[{suffix}]")
        return spec

    def expand(self) -> list[ScenarioSpec]:
        """Every design point of the grid, in deterministic order."""
        if not self.axes:
            return [self.base]
        return [self._apply(point) for point in self._points()]

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "axes": {path: list(values) for path, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioGrid":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario grid must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise ConfigurationError(
                f"unknown scenario grid keys: {', '.join(sorted(unknown))}"
            )
        if "base" not in data:
            raise ConfigurationError("scenario grid needs a 'base' spec")
        axes_data = data.get("axes", {})
        if not isinstance(axes_data, dict):
            raise ConfigurationError(
                f"grid axes must be an object of path -> values, got "
                f"{axes_data!r}"
            )
        axes = tuple(
            (
                path,
                freeze_value(values, context=f"axis {path!r}")
                if isinstance(values, (list, tuple))
                else (_bad_axis(path, values)),
            )
            for path, values in axes_data.items()
        )
        return cls(ScenarioSpec.from_dict(data["base"]), axes)

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGrid":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid grid JSON: {error}") from None
        return cls.from_dict(data)

    def describe(self) -> str:
        axes = ", ".join(
            f"{path} in {list(values)}" for path, values in self.axes
        )
        return f"grid of {self.size} scenarios ({axes or 'no axes'})"


def _bad_axis(path: str, values) -> tuple:
    raise ConfigurationError(
        f"grid axis {path!r} must list its values, got {values!r}"
    )


def load_grid(text: str) -> ScenarioGrid:
    """Parse a JSON document that must be a single scenario grid.

    ``repro lab sweep`` feeds grid files through this: unlike
    :func:`load_scenarios` it keeps the axes, which become the sweep
    table's columns.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid grid JSON: {error}") from None
    if not isinstance(data, dict) or "base" not in data:
        raise ConfigurationError(
            "a sweep needs a grid file — an object with 'base' and 'axes' "
            "sections (got a plain spec or list; run it with "
            "`repro scenario run` instead)"
        )
    return ScenarioGrid.from_dict(data)


def load_scenarios(text: str) -> list[ScenarioSpec]:
    """Parse a JSON document into scenario specs.

    Accepts three shapes: a single spec object, a grid object
    (``{"base": ..., "axes": ...}``), or a JSON array mixing either.
    This is what ``repro scenario run`` feeds files through.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid scenario JSON: {error}") from None
    documents = data if isinstance(data, list) else [data]
    specs: list[ScenarioSpec] = []
    for document in documents:
        if isinstance(document, dict) and "base" in document:
            specs.extend(ScenarioGrid.from_dict(document).expand())
        else:
            specs.append(ScenarioSpec.from_dict(document))
    return specs
