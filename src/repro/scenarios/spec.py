"""Serializable scenario specifications.

A :class:`ScenarioSpec` names one point of the paper's design space as
pure data — a mapping kind plus parameters, the memory geometry
``(t, q, q', address_bits)``, a workload and a drive mode — with every
value a JSON scalar (or a list of scalars).  Like the lab's
``JobSpec``, a spec is process-boundary-safe: it pickles trivially,
hashes canonically, round-trips through JSON byte-for-byte, and two
specs differing in any parameter are different design points (and,
downstream, different lab cache entries).

The component *kinds* are resolved against :mod:`repro.scenarios.registry`
only when a machine is actually built, so a spec can be authored, stored
and shipped without importing any simulator code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Scalar types a spec parameter may hold (plus lists/tuples of them).
SCALAR_TYPES = (bool, int, float, str, type(None))


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN.

    Same contract as :func:`repro.lab.hashing.canonical_json`, defined
    here as well so the spec layer stays import-light (importing the
    ``repro.lab`` package would pull the whole lab — and its experiment
    registry — into every spec consumer, creating an import cycle).
    """
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def freeze_value(value, *, context: str = "parameter"):
    """Normalise one parameter value to a hashable, JSON-safe form.

    Scalars pass through; lists/tuples of scalars become tuples.
    Anything else (objects, dicts, nested lists) is rejected — specs
    carry data, never live components.
    """
    if isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        items = []
        for item in value:
            if not isinstance(item, SCALAR_TYPES):
                raise ConfigurationError(
                    f"{context} lists may only hold scalars, got "
                    f"{type(item).__name__} in {value!r}"
                )
            items.append(item)
        return tuple(items)
    raise ConfigurationError(
        f"{context} values must be JSON scalars or lists of scalars, got "
        f"{type(value).__name__}: {value!r}"
    )


def freeze_params(params: dict) -> tuple[tuple[str, object], ...]:
    """A params dict as a sorted, hashable tuple of pairs."""
    frozen = []
    for key in sorted(params):
        if not isinstance(key, str):
            raise ConfigurationError(
                f"parameter names must be strings, got {key!r}"
            )
        frozen.append((key, freeze_value(params[key], context=f"param {key!r}")))
    return tuple(frozen)


def _thaw_value(value):
    """JSON-facing form of a frozen value (tuples back to lists)."""
    if isinstance(value, tuple):
        return [_thaw_value(item) for item in value]
    return value


@dataclass(frozen=True)
class ComponentSpec:
    """One pluggable component: a registered ``kind`` plus its params.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    the spec is hashable and its equality is order-insensitive; use
    :meth:`param_dict` for the dict view and :meth:`of` to construct
    from keyword arguments.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError(
                f"component kind must be a non-empty string, got {self.kind!r}"
            )

    @classmethod
    def of(cls, kind: str, **params) -> "ComponentSpec":
        return cls(kind, freeze_params(params))

    def param_dict(self) -> dict:
        return {key: value for key, value in self.params}

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": {key: _thaw_value(value) for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ComponentSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"component spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"kind", "params"}
        if unknown:
            raise ConfigurationError(
                f"unknown component spec keys: {', '.join(sorted(unknown))}"
            )
        if "kind" not in data:
            raise ConfigurationError(f"component spec needs a 'kind': {data!r}")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError(
                f"component params must be an object, got {params!r}"
            )
        return cls(data["kind"], freeze_params(params))

    def describe(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class MemorySpec:
    """Memory geometry: service ratio exponent, buffers and ports.

    Attributes
    ----------
    t:
        Module service time is ``T = 2**t`` processor cycles.
    q:
        Input (waiting) slots per module.
    qp:
        Output slots per module (``q'`` in the paper).
    address_bits:
        Width of the machine address space.
    ports:
        ``k`` — address/result bus pairs (the Section 6 "several memory
        ports" outlook).  On the program path the access unit sustains
        one concurrent in-flight memory instruction per port.
    """

    t: int
    q: int = 1
    qp: int = 1
    address_bits: int = 32
    ports: int = 1

    def __post_init__(self) -> None:
        for name in ("t", "q", "qp", "address_bits", "ports"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"memory spec field {name!r} must be an integer, "
                    f"got {value!r}"
                )
        if self.t < 0:
            raise ConfigurationError(f"t must be >= 0, got {self.t}")
        if self.q < 1 or self.qp < 1:
            raise ConfigurationError(
                f"buffer depths must be >= 1, got q={self.q}, q'={self.qp}"
            )
        if self.address_bits < 1:
            raise ConfigurationError(
                f"address_bits must be >= 1, got {self.address_bits}"
            )
        if self.ports < 1:
            raise ConfigurationError(
                f"memory spec field 'ports' must be >= 1, got {self.ports}"
            )

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "q": self.q,
            "qp": self.qp,
            "address_bits": self.address_bits,
            "ports": self.ports,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemorySpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"memory spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"t", "q", "qp", "address_bits", "ports"}
        if unknown:
            raise ConfigurationError(
                f"unknown memory spec keys: {', '.join(sorted(unknown))}"
            )
        if "t" not in data:
            raise ConfigurationError("memory spec needs 't'")
        return cls(
            t=data["t"],
            q=data.get("q", 1),
            qp=data.get("qp", 1),
            address_bits=data.get("address_bits", 32),
            ports=data.get("ports", 1),
        )


#: Default drive: the access planner in ``auto`` mode.
DEFAULT_DRIVE = ComponentSpec("planner", (("mode", "auto"),))


@dataclass(frozen=True)
class ScenarioSpec:
    """One machine + workload design point, as pure data.

    ``workload`` may be None for machine-only specs (the experiment
    runners build a machine once and drive it with many vectors);
    :func:`repro.scenarios.facade.simulate` requires a ``workload`` or a
    ``program``.  ``program`` names a whole vector program (an inline
    instruction list, assembler text, or a registered strip-mined
    kernel) executed by the decoupled machine; a spec declares either a
    workload or a program, never both.
    """

    mapping: ComponentSpec
    memory: MemorySpec
    workload: ComponentSpec | None = None
    drive: ComponentSpec = field(default=DEFAULT_DRIVE)
    name: str = ""
    program: ComponentSpec | None = None

    def __post_init__(self) -> None:
        if self.workload is not None and self.program is not None:
            raise ConfigurationError(
                "a scenario declares either a 'workload' or a 'program', "
                "not both"
            )

    def to_dict(self) -> dict:
        data: dict = {}
        if self.name:
            data["name"] = self.name
        data["mapping"] = self.mapping.to_dict()
        data["memory"] = self.memory.to_dict()
        if self.workload is not None:
            data["workload"] = self.workload.to_dict()
        if self.program is not None:
            data["program"] = self.program.to_dict()
        data["drive"] = self.drive.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "name", "mapping", "memory", "workload", "drive", "program"
        }
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec keys: {', '.join(sorted(unknown))}"
            )
        for required in ("mapping", "memory"):
            if required not in data:
                raise ConfigurationError(
                    f"scenario spec needs a {required!r} section"
                )
        name = data.get("name", "")
        if not isinstance(name, str):
            raise ConfigurationError(f"scenario name must be a string: {name!r}")
        workload = data.get("workload")
        program = data.get("program")
        return cls(
            mapping=ComponentSpec.from_dict(data["mapping"]),
            memory=MemorySpec.from_dict(data["memory"]),
            workload=(
                ComponentSpec.from_dict(workload) if workload is not None else None
            ),
            drive=(
                ComponentSpec.from_dict(data["drive"])
                if "drive" in data
                else DEFAULT_DRIVE
            ),
            name=name,
            program=(
                ComponentSpec.from_dict(program) if program is not None else None
            ),
        )

    def to_json(self) -> str:
        """Canonical (sorted-key, minimal) JSON — the hashable identity."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)

    def replace(self, path: str, value) -> "ScenarioSpec":
        """A copy with the dotted-``path`` field set to ``value``.

        Paths address the dict form: ``"memory.t"``,
        ``"mapping.params.s"``, ``"workload.params.stride"``, ``"name"``.
        This is the primitive :class:`~repro.scenarios.grid.ScenarioGrid`
        expands axes with.
        """
        data = self.to_dict()
        parts = path.split(".")
        cursor = data
        for part in parts[:-1]:
            if not isinstance(cursor, dict) or part not in cursor:
                raise ConfigurationError(
                    f"scenario spec has no field at path {path!r}"
                )
            cursor = cursor[part]
        if not isinstance(cursor, dict):
            raise ConfigurationError(
                f"scenario spec has no field at path {path!r}"
            )
        leaf = parts[-1]
        # params dicts accept new keys; structural sections do not.
        if leaf not in cursor and parts[-2:-1] != ["params"]:
            raise ConfigurationError(
                f"scenario spec has no field at path {path!r}"
            )
        cursor[leaf] = value
        return ScenarioSpec.from_dict(data)

    def describe(self) -> str:
        parts = [
            f"mapping={self.mapping.describe()}",
            f"T=2**{self.memory.t}",
            f"q={self.memory.q}",
            f"q'={self.memory.qp}",
        ]
        if self.memory.ports != 1:
            parts.append(f"ports={self.memory.ports}")
        if self.workload is not None:
            parts.append(f"workload={self.workload.describe()}")
        if self.program is not None:
            parts.append(f"program={self.program.describe()}")
        parts.append(f"drive={self.drive.describe()}")
        prefix = f"{self.name}: " if self.name else ""
        return prefix + ", ".join(parts)
