"""The registered scenario components: mappings, workloads, drives.

Importing this module populates the :mod:`repro.scenarios.registry`
tables.  Each factory is a thin, validating adapter from spec
parameters to one of the library's existing classes — the factories
own *no* behaviour of their own, so a machine built from a spec is
bit-identical to one wired by hand.

Workload factories return lightweight workload objects exposing
``accesses()`` (a list of :class:`~repro.core.vector.VectorAccess` /
:class:`~repro.core.gather.IndexedAccess`) and a ``label``; the
:mod:`repro.scenarios.facade` turns those into request streams via the
selected drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.gather import IndexedAccess
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import PseudoRandomMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping
from repro.scenarios.registry import DRIVE, MAPPING, WORKLOAD, register
from repro.workloads.indexed import (
    bit_reversal_indices,
    block_shuffle_indices,
    csr_row_indices,
    histogram_indices,
)
from repro.workloads.kernels import (
    fft_butterfly_accesses,
    matrix_antidiagonal_access,
    matrix_column_accesses,
    matrix_diagonal_access,
    matrix_row_accesses,
    stencil_accesses,
    transpose_block_accesses,
)

Access = Union[VectorAccess, IndexedAccess]


# -- mappings ------------------------------------------------------------


@register(
    MAPPING,
    "interleaved",
    example={"m": 3},
    summary="Low-order interleaving: module = low m address bits",
)
def _interleaved(m: int, address_bits: int = 32) -> LowOrderInterleaved:
    return LowOrderInterleaved(m, address_bits)


@register(
    MAPPING,
    "field-interleaved",
    example={"m": 3, "s": 4},
    summary="Module = address bits s..s+m-1 (Section 1 baseline)",
)
def _field_interleaved(m: int, s: int, address_bits: int = 32) -> FieldInterleaved:
    return FieldInterleaved(m, s, address_bits)


@register(
    MAPPING,
    "matched-xor",
    example={"t": 3, "s": 4},
    summary="Eq. (1) XOR mapping for matched memories (M = T)",
)
def _matched_xor(t: int, s: int, address_bits: int = 32) -> MatchedXorMapping:
    return MatchedXorMapping(t, s, address_bits)


@register(
    MAPPING,
    "section-xor",
    example={"t": 3, "s": 4, "y": 9},
    summary="Eq. (2) two-level mapping for unmatched memories (M = T**2)",
)
def _section_xor(t: int, s: int, y: int, address_bits: int = 32) -> SectionXorMapping:
    return SectionXorMapping(t, s, y, address_bits)


@register(
    MAPPING,
    "skewed",
    example={"m": 3, "s": 4},
    summary="Row-rotation skewing (Budnik-Kuck / Lawrie family)",
)
def _skewed(
    m: int, s: int, distance: int = 1, address_bits: int = 32
) -> SkewedMapping:
    return SkewedMapping(m, s, distance, address_bits)


@register(
    MAPPING,
    "pseudo-random",
    example={"m": 3},
    summary="Seeded random full-rank XOR matrix (Rau-1991 baseline)",
)
def _pseudo_random(
    m: int, window_bits: int = 16, seed: int = 0, address_bits: int = 32
) -> PseudoRandomMapping:
    return PseudoRandomMapping(m, window_bits, seed, address_bits)


@register(
    MAPPING,
    "dynamic",
    example={"m": 3},
    summary="Per-stride dynamic scheme selection (Harper-1991 baseline)",
)
def _dynamic(m: int, address_bits: int = 32) -> DynamicSchemeSelector:
    # Resolved against the workload's stride by the facade: the selector
    # only becomes a concrete mapping once the dominant stride is known.
    return DynamicSchemeSelector(m, address_bits)


# -- workloads -----------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """A named batch of accesses produced by one workload factory."""

    label: str
    items: tuple[Access, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ConfigurationError(
                f"workload {self.label!r} generated no accesses"
            )

    def accesses(self) -> list[Access]:
        return list(self.items)

    @property
    def element_count(self) -> int:
        return sum(item.length for item in self.items)

    def single_vector(self) -> VectorAccess:
        """The workload as one strided vector, when it is one.

        Drives that only accept a constant-stride stream (``figure6``,
        ``decoupled``) call this; anything else is a configuration
        error, reported with the workload's name.
        """
        if len(self.items) == 1 and isinstance(self.items[0], VectorAccess):
            return self.items[0]
        raise ConfigurationError(
            f"workload {self.label!r} is not a single strided vector"
        )


def _vector_workload(label: str, items: Sequence[VectorAccess]) -> Workload:
    return Workload(label, tuple(items))


@register(
    WORKLOAD,
    "strided",
    example={"base": 16, "stride": 12, "length": 128},
    summary="One constant-stride vector access",
)
def _strided(stride: int, length: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"strided(base={base}, stride={stride}, length={length})",
        [VectorAccess(base, stride, length)],
    )


@register(
    WORKLOAD,
    "gather",
    example={"indices": [3, 1, 4, 1, 5, 9, 2, 6], "base": 0},
    summary="Explicit index vector (gather/scatter)",
)
def _gather(indices: Sequence[int], base: int = 0) -> Workload:
    return Workload(
        f"gather({len(indices)} indices)",
        (IndexedAccess(base, list(indices)),),
    )


@register(
    WORKLOAD,
    "bit-reversal",
    example={"bits": 6},
    summary="FFT bit-reversal permutation gather",
)
def _bit_reversal(bits: int, base: int = 0) -> Workload:
    return Workload(
        f"bit-reversal({bits} bits)",
        (IndexedAccess(base, bit_reversal_indices(bits)),),
    )


@register(
    WORKLOAD,
    "csr-gather",
    example={"row_length": 48, "column_count": 4096},
    summary="Column indices of one CSR sparse-matrix row",
)
def _csr_gather(
    row_length: int, column_count: int, seed: int = 0, base: int = 0
) -> Workload:
    return Workload(
        f"csr-gather({row_length} of {column_count})",
        (IndexedAccess(base, csr_row_indices(row_length, column_count, seed)),),
    )


@register(
    WORKLOAD,
    "histogram",
    example={"count": 128, "buckets": 64},
    summary="Zipf-skewed histogram bucket scatter",
)
def _histogram(
    count: int, buckets: int, skew: float = 1.2, seed: int = 0, base: int = 0
) -> Workload:
    return Workload(
        f"histogram({count} into {buckets})",
        (IndexedAccess(base, histogram_indices(count, buckets, skew, seed)),),
    )


@register(
    WORKLOAD,
    "block-shuffle",
    example={"block": 8, "blocks": 16},
    summary="Dense blocks of indices in shuffled block order",
)
def _block_shuffle(block: int, blocks: int, seed: int = 0, base: int = 0) -> Workload:
    return Workload(
        f"block-shuffle({blocks} x {block})",
        (IndexedAccess(base, block_shuffle_indices(block, blocks, seed)),),
    )


@register(
    WORKLOAD,
    "matrix-rows",
    example={"rows": 8, "cols": 128},
    summary="Row accesses of a row-major matrix (stride 1)",
)
def _matrix_rows(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-rows({rows}x{cols})", matrix_row_accesses(rows, cols, base)
    )


@register(
    WORKLOAD,
    "matrix-columns",
    example={"rows": 128, "cols": 8},
    summary="Column accesses of a row-major matrix (stride = cols)",
)
def _matrix_columns(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-columns({rows}x{cols})",
        matrix_column_accesses(rows, cols, base),
    )


@register(
    WORKLOAD,
    "matrix-diagonal",
    example={"n": 128},
    summary="Main diagonal of an n x n matrix (stride n+1)",
)
def _matrix_diagonal(n: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-diagonal({n})", [matrix_diagonal_access(n, base)]
    )


@register(
    WORKLOAD,
    "matrix-antidiagonal",
    example={"n": 128},
    summary="Anti-diagonal of an n x n matrix (stride n-1)",
)
def _matrix_antidiagonal(n: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-antidiagonal({n})", [matrix_antidiagonal_access(n, base)]
    )


@register(
    WORKLOAD,
    "fft-stage",
    example={"n": 256, "stage": 3},
    summary="Operand loads of one radix-2 FFT butterfly stage",
)
def _fft_stage(n: int, stage: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"fft-stage({n}, stage {stage})",
        fft_butterfly_accesses(n, stage, base),
    )


@register(
    WORKLOAD,
    "transpose-blocks",
    example={"rows": 32, "cols": 32, "block": 8},
    summary="Column reads of each tile of a blocked transpose",
)
def _transpose_blocks(rows: int, cols: int, block: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"transpose-blocks({rows}x{cols}/{block})",
        transpose_block_accesses(rows, cols, block, base),
    )


@register(
    WORKLOAD,
    "stencil",
    example={"rows": 6, "cols": 66},
    summary="5-point stencil loads over a row-major grid",
)
def _stencil(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"stencil({rows}x{cols})", stencil_accesses(rows, cols, base)
    )


# -- drives --------------------------------------------------------------

#: Drive factories return a *mode descriptor*; the facade interprets it.
#: Keeping drives declarative (no captured machine state) preserves the
#: spec's process-boundary safety.


@dataclass(frozen=True)
class PlannerDrive:
    """Plan each access with the AccessPlanner, run the memory simulator."""

    mode: str = "auto"
    indexed_mode: str = "scheduled"


@dataclass(frozen=True)
class Figure6Drive:
    """Generate the request stream with the Figure 6 hardware engine."""


@dataclass(frozen=True)
class DecoupledDrive:
    """Run VLOADs through the full decoupled access/execute machine."""

    chaining: bool = False
    plan_mode: str = "auto"
    execute_startup: int = 4
    register_length: int | None = None


@register(
    DRIVE,
    "planner",
    example={"mode": "auto"},
    summary="AccessPlanner order + cycle-accurate memory simulator",
)
def _planner_drive(mode: str = "auto", indexed_mode: str = "scheduled") -> PlannerDrive:
    if mode not in ("auto", "ordered", "subsequence", "conflict_free"):
        raise ConfigurationError(
            f"planner mode must be auto/ordered/subsequence/conflict_free, "
            f"got {mode!r}"
        )
    if indexed_mode not in ("ordered", "scheduled"):
        raise ConfigurationError(
            f"indexed_mode must be ordered/scheduled, got {indexed_mode!r}"
        )
    return PlannerDrive(mode, indexed_mode)


@register(
    DRIVE,
    "figure6",
    example={},
    summary="Figure 6 register-level address-generation engine",
)
def _figure6_drive() -> Figure6Drive:
    return Figure6Drive()


@register(
    DRIVE,
    "decoupled",
    example={"chaining": False},
    summary="Decoupled access/execute vector machine (Figure 1)",
)
def _decoupled_drive(
    chaining: bool = False,
    plan_mode: str = "auto",
    execute_startup: int = 4,
    register_length: int | None = None,
) -> DecoupledDrive:
    if plan_mode not in ("auto", "ordered", "subsequence", "conflict_free"):
        raise ConfigurationError(
            f"plan_mode must be auto/ordered/subsequence/conflict_free, "
            f"got {plan_mode!r}"
        )
    return DecoupledDrive(chaining, plan_mode, execute_startup, register_length)
