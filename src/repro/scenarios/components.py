"""The registered scenario components: mappings, workloads, drives, programs.

Importing this module populates the :mod:`repro.scenarios.registry`
tables.  Each factory is a thin, validating adapter from spec
parameters to one of the library's existing classes — the factories
own *no* behaviour of their own, so a machine built from a spec is
bit-identical to one wired by hand.

Workload factories return lightweight workload objects exposing
``accesses()`` (a list of :class:`~repro.core.vector.VectorAccess` /
:class:`~repro.core.gather.IndexedAccess`) and a ``label``; the
:mod:`repro.scenarios.facade` turns those into request streams via the
selected drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.gather import IndexedAccess
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, ProgramError
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import PseudoRandomMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping
from repro.processor.program import MemoryInit, Program, parse_source
from repro.processor.stripmine import (
    daxpy_program,
    elementwise_product_program,
    fft_butterfly_program,
    gather_program,
    load_store_copy_program,
    saxpy_chain_program,
    scatter_program,
    vsum_program,
)
from repro.scenarios.registry import DRIVE, MAPPING, PROGRAM, WORKLOAD, register
from repro.workloads.indexed import (
    bit_reversal_indices,
    block_shuffle_indices,
    csr_row_indices,
    histogram_indices,
)
from repro.workloads.kernels import (
    fft_butterfly_accesses,
    matrix_antidiagonal_access,
    matrix_column_accesses,
    matrix_diagonal_access,
    matrix_row_accesses,
    stencil_accesses,
    transpose_block_accesses,
)

Access = Union[VectorAccess, IndexedAccess]


# -- mappings ------------------------------------------------------------


@register(
    MAPPING,
    "interleaved",
    example={"m": 3},
    summary="Low-order interleaving: module = low m address bits",
)
def _interleaved(m: int, address_bits: int = 32) -> LowOrderInterleaved:
    return LowOrderInterleaved(m, address_bits)


@register(
    MAPPING,
    "field-interleaved",
    example={"m": 3, "s": 4},
    summary="Module = address bits s..s+m-1 (Section 1 baseline)",
)
def _field_interleaved(m: int, s: int, address_bits: int = 32) -> FieldInterleaved:
    return FieldInterleaved(m, s, address_bits)


@register(
    MAPPING,
    "matched-xor",
    example={"t": 3, "s": 4},
    summary="Eq. (1) XOR mapping for matched memories (M = T)",
)
def _matched_xor(t: int, s: int, address_bits: int = 32) -> MatchedXorMapping:
    return MatchedXorMapping(t, s, address_bits)


@register(
    MAPPING,
    "section-xor",
    example={"t": 3, "s": 4, "y": 9},
    summary="Eq. (2) two-level mapping for unmatched memories (M = T**2)",
)
def _section_xor(t: int, s: int, y: int, address_bits: int = 32) -> SectionXorMapping:
    return SectionXorMapping(t, s, y, address_bits)


@register(
    MAPPING,
    "skewed",
    example={"m": 3, "s": 4},
    summary="Row-rotation skewing (Budnik-Kuck / Lawrie family)",
)
def _skewed(
    m: int, s: int, distance: int = 1, address_bits: int = 32
) -> SkewedMapping:
    return SkewedMapping(m, s, distance, address_bits)


@register(
    MAPPING,
    "pseudo-random",
    example={"m": 3},
    summary="Seeded random full-rank XOR matrix (Rau-1991 baseline)",
)
def _pseudo_random(
    m: int, window_bits: int = 16, seed: int = 0, address_bits: int = 32
) -> PseudoRandomMapping:
    return PseudoRandomMapping(m, window_bits, seed, address_bits)


@register(
    MAPPING,
    "dynamic",
    example={"m": 3},
    summary="Per-stride dynamic scheme selection (Harper-1991 baseline)",
)
def _dynamic(m: int, address_bits: int = 32) -> DynamicSchemeSelector:
    # Resolved against the workload's stride by the facade: the selector
    # only becomes a concrete mapping once the dominant stride is known.
    return DynamicSchemeSelector(m, address_bits)


# -- workloads -----------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """A named batch of accesses produced by one workload factory."""

    label: str
    items: tuple[Access, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ConfigurationError(
                f"workload {self.label!r} generated no accesses"
            )

    def accesses(self) -> list[Access]:
        return list(self.items)

    @property
    def element_count(self) -> int:
        return sum(item.length for item in self.items)

    def single_vector(self) -> VectorAccess:
        """The workload as one strided vector, when it is one.

        Drives that only accept a constant-stride stream (``figure6``,
        ``decoupled``) call this; anything else is a configuration
        error, reported with the workload's name.
        """
        if len(self.items) == 1 and isinstance(self.items[0], VectorAccess):
            return self.items[0]
        raise ConfigurationError(
            f"workload {self.label!r} is not a single strided vector"
        )


def _vector_workload(label: str, items: Sequence[VectorAccess]) -> Workload:
    return Workload(label, tuple(items))


@register(
    WORKLOAD,
    "strided",
    example={"base": 16, "stride": 12, "length": 128},
    summary="One constant-stride vector access",
)
def _strided(stride: int, length: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"strided(base={base}, stride={stride}, length={length})",
        [VectorAccess(base, stride, length)],
    )


@register(
    WORKLOAD,
    "gather",
    example={"indices": [3, 1, 4, 1, 5, 9, 2, 6], "base": 0},
    summary="Explicit index vector (gather/scatter)",
)
def _gather(indices: Sequence[int], base: int = 0) -> Workload:
    return Workload(
        f"gather({len(indices)} indices)",
        (IndexedAccess(base, list(indices)),),
    )


@register(
    WORKLOAD,
    "bit-reversal",
    example={"bits": 6},
    summary="FFT bit-reversal permutation gather",
)
def _bit_reversal(bits: int, base: int = 0) -> Workload:
    return Workload(
        f"bit-reversal({bits} bits)",
        (IndexedAccess(base, bit_reversal_indices(bits)),),
    )


@register(
    WORKLOAD,
    "csr-gather",
    example={"row_length": 48, "column_count": 4096},
    summary="Column indices of one CSR sparse-matrix row",
)
def _csr_gather(
    row_length: int, column_count: int, seed: int = 0, base: int = 0
) -> Workload:
    return Workload(
        f"csr-gather({row_length} of {column_count})",
        (IndexedAccess(base, csr_row_indices(row_length, column_count, seed)),),
    )


@register(
    WORKLOAD,
    "histogram",
    example={"count": 128, "buckets": 64},
    summary="Zipf-skewed histogram bucket scatter",
)
def _histogram(
    count: int, buckets: int, skew: float = 1.2, seed: int = 0, base: int = 0
) -> Workload:
    return Workload(
        f"histogram({count} into {buckets})",
        (IndexedAccess(base, histogram_indices(count, buckets, skew, seed)),),
    )


@register(
    WORKLOAD,
    "block-shuffle",
    example={"block": 8, "blocks": 16},
    summary="Dense blocks of indices in shuffled block order",
)
def _block_shuffle(block: int, blocks: int, seed: int = 0, base: int = 0) -> Workload:
    return Workload(
        f"block-shuffle({blocks} x {block})",
        (IndexedAccess(base, block_shuffle_indices(block, blocks, seed)),),
    )


@register(
    WORKLOAD,
    "matrix-rows",
    example={"rows": 8, "cols": 128},
    summary="Row accesses of a row-major matrix (stride 1)",
)
def _matrix_rows(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-rows({rows}x{cols})", matrix_row_accesses(rows, cols, base)
    )


@register(
    WORKLOAD,
    "matrix-columns",
    example={"rows": 128, "cols": 8},
    summary="Column accesses of a row-major matrix (stride = cols)",
)
def _matrix_columns(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-columns({rows}x{cols})",
        matrix_column_accesses(rows, cols, base),
    )


@register(
    WORKLOAD,
    "matrix-diagonal",
    example={"n": 128},
    summary="Main diagonal of an n x n matrix (stride n+1)",
)
def _matrix_diagonal(n: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-diagonal({n})", [matrix_diagonal_access(n, base)]
    )


@register(
    WORKLOAD,
    "matrix-antidiagonal",
    example={"n": 128},
    summary="Anti-diagonal of an n x n matrix (stride n-1)",
)
def _matrix_antidiagonal(n: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"matrix-antidiagonal({n})", [matrix_antidiagonal_access(n, base)]
    )


@register(
    WORKLOAD,
    "fft-stage",
    example={"n": 256, "stage": 3},
    summary="Operand loads of one radix-2 FFT butterfly stage",
)
def _fft_stage(n: int, stage: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"fft-stage({n}, stage {stage})",
        fft_butterfly_accesses(n, stage, base),
    )


@register(
    WORKLOAD,
    "transpose-blocks",
    example={"rows": 32, "cols": 32, "block": 8},
    summary="Column reads of each tile of a blocked transpose",
)
def _transpose_blocks(rows: int, cols: int, block: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"transpose-blocks({rows}x{cols}/{block})",
        transpose_block_accesses(rows, cols, block, base),
    )


@register(
    WORKLOAD,
    "stencil",
    example={"rows": 6, "cols": 66},
    summary="5-point stencil loads over a row-major grid",
)
def _stencil(rows: int, cols: int, base: int = 0) -> Workload:
    return _vector_workload(
        f"stencil({rows}x{cols})", stencil_accesses(rows, cols, base)
    )


# -- drives --------------------------------------------------------------

#: Drive factories return a *mode descriptor*; the facade interprets it.
#: Keeping drives declarative (no captured machine state) preserves the
#: spec's process-boundary safety.


@dataclass(frozen=True)
class PlannerDrive:
    """Plan each access with the AccessPlanner, run the memory simulator."""

    mode: str = "auto"
    indexed_mode: str = "scheduled"


@dataclass(frozen=True)
class Figure6Drive:
    """Generate the request stream with the Figure 6 hardware engine."""


@dataclass(frozen=True)
class DecoupledDrive:
    """Run VLOADs through the full decoupled access/execute machine.

    ``memory_streams`` caps the access unit's concurrent in-flight
    memory instructions; ``None`` tracks the memory's port count
    (``memory.ports`` in the spec), so the classic single-port design
    keeps the paper's serial per-access timing.
    """

    chaining: bool = False
    plan_mode: str = "auto"
    execute_startup: int = 4
    register_length: int | None = None
    memory_streams: int | None = None


# -- programs ------------------------------------------------------------

#: Register length a program scenario uses when the drive leaves
#: ``register_length`` unset (the paper's canonical L = 64 design).
DEFAULT_PROGRAM_REGISTER_LENGTH = 64


@dataclass(frozen=True)
class ScenarioProgram:
    """A whole vector program plus the data contract around it.

    ``inputs`` are ``(base, stride, values)`` vectors preloaded into the
    backing store before the run; ``expected`` are vectors the store
    must hold afterwards (empty for raw instruction sources, whose
    outputs the facade then cannot check numerically).
    """

    label: str
    program: Program
    inputs: tuple[MemoryInit, ...] = ()
    expected: tuple[MemoryInit, ...] = ()

    def __post_init__(self) -> None:
        if not len(self.program):
            raise ConfigurationError(
                f"program {self.label!r} has no instructions"
            )


def _check_length(n) -> int:
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        raise ConfigurationError(f"program length n must be an int >= 1, got {n!r}")
    return n


def _check_stride(name: str, stride) -> int:
    if not isinstance(stride, int) or isinstance(stride, bool) or stride == 0:
        raise ConfigurationError(
            f"program stride {name!r} must be a non-zero integer, got {stride!r}"
        )
    return stride


def _auto_base(name: str, base, previous_base: int, stride: int, n: int) -> int:
    """Default one array's base just past the previous array's span, so
    the registered kernels never overlap unless the spec asks them to."""
    if base is None:
        return previous_base + abs(stride) * n
    if not isinstance(base, int) or isinstance(base, bool):
        raise ConfigurationError(
            f"program base {name!r} must be an integer, got {base!r}"
        )
    return base


def _ramp(n: int, start: float = 0.0, step: float = 1.0) -> tuple[float, ...]:
    """Deterministic input data: a simple arithmetic ramp."""
    return tuple(start + step * i for i in range(n))


@register(
    PROGRAM,
    "instructions",
    example={
        "lines": [
            ".init base=0, stride=4, values=1;2;3;4",
            "vload v1, base=0, stride=4, length=4",
            "vscale v2, v1, scalar=2.0, length=4",
            "vstore v2, base=512, stride=1, length=4",
        ]
    },
    summary="Inline instruction list (one assembler statement per entry)",
)
def _instructions(lines) -> ScenarioProgram:
    if not isinstance(lines, (list, tuple)) or not lines:
        raise ConfigurationError(
            "program kind 'instructions' needs a non-empty 'lines' list"
        )
    if not all(isinstance(line, str) for line in lines):
        raise ConfigurationError("'lines' entries must all be strings")
    program, inits = parse_source("\n".join(lines))
    return ScenarioProgram(
        label=f"instructions({len(program)} instructions)",
        program=program,
        inputs=inits,
    )


@register(
    PROGRAM,
    "asm",
    example={
        "text": (
            ".fill base=0, stride=4, count=64, value=1.5\n"
            "vload v1, base=0, stride=4\n"
            "vadd v2, v1, v1"
        )
    },
    summary="Assembler source text (directives .init/.fill allowed)",
)
def _asm(text: str) -> ScenarioProgram:
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError("program kind 'asm' needs non-empty 'text'")
    program, inits = parse_source(text)
    return ScenarioProgram(
        label=f"asm({len(program)} instructions)",
        program=program,
        inputs=inits,
    )


@register(
    PROGRAM,
    "daxpy",
    example={"n": 96, "alpha": 2.0},
    summary="Strip-mined y = alpha*x + y (loads, scale, add, store)",
)
def _daxpy(
    n: int,
    alpha: float = 2.0,
    x_base: int = 0,
    x_stride: int = 4,
    y_base: int | None = None,
    y_stride: int = 4,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("x_stride", x_stride)
    _check_stride("y_stride", y_stride)
    y_base = _auto_base("y_base", y_base, x_base, x_stride, n)
    x = _ramp(n)
    y = _ramp(n, start=1.0, step=2.0)
    expected = tuple(alpha * a + b for a, b in zip(x, y))
    return ScenarioProgram(
        label=f"daxpy(n={n}, alpha={alpha})",
        program=daxpy_program(
            n, register_length, alpha, x_base, x_stride, y_base, y_stride
        ),
        inputs=((x_base, x_stride, x), (y_base, y_stride, y)),
        expected=((y_base, y_stride, expected),),
    )


@register(
    PROGRAM,
    "elementwise-product",
    example={"n": 96},
    summary="Strip-mined out = a * b (two loads, multiply, store)",
)
def _elementwise_product(
    n: int,
    a_base: int = 0,
    a_stride: int = 4,
    b_base: int | None = None,
    b_stride: int = 4,
    out_base: int | None = None,
    out_stride: int = 4,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    for name, stride in (
        ("a_stride", a_stride), ("b_stride", b_stride), ("out_stride", out_stride)
    ):
        _check_stride(name, stride)
    b_base = _auto_base("b_base", b_base, a_base, a_stride, n)
    out_base = _auto_base("out_base", out_base, b_base, b_stride, n)
    a = _ramp(n, start=1.0)
    b = _ramp(n, start=2.0, step=0.5)
    expected = tuple(left * right for left, right in zip(a, b))
    return ScenarioProgram(
        label=f"elementwise-product(n={n})",
        program=elementwise_product_program(
            n, register_length, a_base, a_stride, b_base, b_stride,
            out_base, out_stride,
        ),
        inputs=((a_base, a_stride, a), (b_base, b_stride, b)),
        expected=((out_base, out_stride, expected),),
    )


@register(
    PROGRAM,
    "saxpy-chain",
    example={"n": 96, "alpha": 3.0},
    summary="Strip-mined out = alpha*x — the minimal LOAD->OP->STORE chain",
)
def _saxpy_chain(
    n: int,
    alpha: float = 3.0,
    x_base: int = 0,
    x_stride: int = 4,
    out_base: int | None = None,
    out_stride: int = 4,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("x_stride", x_stride)
    _check_stride("out_stride", out_stride)
    out_base = _auto_base("out_base", out_base, x_base, x_stride, n)
    x = _ramp(n, start=1.0)
    expected = tuple(alpha * value for value in x)
    return ScenarioProgram(
        label=f"saxpy-chain(n={n}, alpha={alpha})",
        program=saxpy_chain_program(
            n, register_length, alpha, x_base, x_stride, out_base, out_stride
        ),
        inputs=((x_base, x_stride, x),),
        expected=((out_base, out_stride, expected),),
    )


@register(
    PROGRAM,
    "load-store-copy",
    example={"n": 96},
    summary="Strip-mined memory-to-memory copy (pure access pipeline)",
)
def _load_store_copy(
    n: int,
    src_base: int = 0,
    src_stride: int = 4,
    dst_base: int | None = None,
    dst_stride: int = 4,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("src_stride", src_stride)
    _check_stride("dst_stride", dst_stride)
    dst_base = _auto_base("dst_base", dst_base, src_base, src_stride, n)
    values = _ramp(n, start=5.0)
    return ScenarioProgram(
        label=f"load-store-copy(n={n})",
        program=load_store_copy_program(
            n, register_length, src_base, src_stride, dst_base, dst_stride
        ),
        inputs=((src_base, src_stride, values),),
        expected=((dst_base, dst_stride, values),),
    )


@register(
    PROGRAM,
    "fft-butterfly",
    example={"n": 256, "stage": 3},
    summary="Strip-mined radix-2 butterflies of one in-place FFT stage",
)
def _fft_butterfly(
    n: int,
    stage: int = 0,
    base: int = 0,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    if not isinstance(stage, int) or isinstance(stage, bool) or stage < 0:
        raise ConfigurationError(f"stage must be an int >= 0, got {stage!r}")
    try:
        program = fft_butterfly_program(n, stage, register_length, base)
    except ProgramError as error:
        raise ConfigurationError(
            f"infeasible fft-butterfly(n={n}, stage={stage}): {error}"
        ) from None
    data = _ramp(n, start=1.0)
    half = 1 << stage
    out = list(data)
    for top in range(n):
        if (top // half) % 2 == 0:
            bottom = top + half
            out[top] = data[top] + data[bottom]
            out[bottom] = data[top] - data[bottom]
    return ScenarioProgram(
        label=f"fft-butterfly(n={n}, stage={stage})",
        program=program,
        inputs=((base, 1, data),),
        expected=((base, 1, tuple(out)),),
    )


def _shuffled_indices(n: int, seed: int) -> list[int]:
    """A deterministic permutation of ``range(n)`` (gather/scatter data)."""
    import random

    order = list(range(n))
    random.Random(seed).shuffle(order)
    return order


@register(
    PROGRAM,
    "vsum",
    example={"n": 96},
    summary="Strip-mined reduction out[0] = sum(x) (VSUM + accumulator)",
)
def _vsum(
    n: int,
    src_base: int = 0,
    src_stride: int = 4,
    out_base: int | None = None,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("src_stride", src_stride)
    out_base = _auto_base("out_base", out_base, src_base, src_stride, n)
    values = _ramp(n, start=1.0)
    return ScenarioProgram(
        label=f"vsum(n={n})",
        program=vsum_program(n, register_length, src_base, src_stride, out_base),
        inputs=((src_base, src_stride, values),),
        expected=((out_base, 1, (sum(values),)),),
    )


@register(
    PROGRAM,
    "gather",
    example={"n": 96},
    summary="Strip-mined indexed load out[i] = table[index[i]] (VGATHER)",
)
def _gather_program(
    n: int,
    table_size: int | None = None,
    seed: int = 0,
    index_base: int = 0,
    index_stride: int = 1,
    table_base: int | None = None,
    out_base: int | None = None,
    out_stride: int = 1,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("index_stride", index_stride)
    _check_stride("out_stride", out_stride)
    if table_size is None:
        table_size = n
    if (
        not isinstance(table_size, int)
        or isinstance(table_size, bool)
        or table_size < n
    ):
        raise ConfigurationError(
            f"program field 'table_size' must be an int >= n={n}, got "
            f"{table_size!r}"
        )
    table_base = _auto_base("table_base", table_base, index_base, index_stride, n)
    out_base = _auto_base("out_base", out_base, table_base, 1, table_size)
    indices = _shuffled_indices(table_size, seed)[:n]
    table = _ramp(table_size, start=10.0)
    expected = tuple(table[index] for index in indices)
    return ScenarioProgram(
        label=f"gather(n={n}, table={table_size})",
        program=gather_program(
            n, register_length, table_base, index_base, index_stride,
            out_base, out_stride,
        ),
        inputs=(
            (index_base, index_stride, tuple(float(i) for i in indices)),
            (table_base, 1, table),
        ),
        expected=((out_base, out_stride, expected),),
    )


@register(
    PROGRAM,
    "scatter",
    example={"n": 96},
    summary="Strip-mined indexed store table[index[i]] = x[i] (VSCATTER)",
)
def _scatter_program(
    n: int,
    seed: int = 0,
    index_base: int = 0,
    index_stride: int = 1,
    src_base: int | None = None,
    src_stride: int = 1,
    table_base: int | None = None,
    register_length: int = DEFAULT_PROGRAM_REGISTER_LENGTH,
) -> ScenarioProgram:
    n = _check_length(n)
    _check_stride("index_stride", index_stride)
    _check_stride("src_stride", src_stride)
    src_base = _auto_base("src_base", src_base, index_base, index_stride, n)
    table_base = _auto_base("table_base", table_base, src_base, src_stride, n)
    # A permutation keeps the scatter write set unambiguous: every table
    # slot is written exactly once, whatever the delivery order.
    indices = _shuffled_indices(n, seed)
    values = _ramp(n, start=1.0, step=0.5)
    expected = [0.0] * n
    for position, index in enumerate(indices):
        expected[index] = values[position]
    return ScenarioProgram(
        label=f"scatter(n={n})",
        program=scatter_program(
            n, register_length, table_base, index_base, index_stride,
            src_base, src_stride,
        ),
        inputs=(
            (index_base, index_stride, tuple(float(i) for i in indices)),
            (src_base, src_stride, values),
        ),
        expected=((table_base, 1, tuple(expected)),),
    )


@register(
    DRIVE,
    "planner",
    example={"mode": "auto"},
    summary="AccessPlanner order + cycle-accurate memory simulator",
)
def _planner_drive(mode: str = "auto", indexed_mode: str = "scheduled") -> PlannerDrive:
    if mode not in ("auto", "ordered", "subsequence", "conflict_free"):
        raise ConfigurationError(
            f"planner mode must be auto/ordered/subsequence/conflict_free, "
            f"got {mode!r}"
        )
    if indexed_mode not in ("ordered", "scheduled"):
        raise ConfigurationError(
            f"indexed_mode must be ordered/scheduled, got {indexed_mode!r}"
        )
    return PlannerDrive(mode, indexed_mode)


@register(
    DRIVE,
    "figure6",
    example={},
    summary="Figure 6 register-level address-generation engine",
)
def _figure6_drive() -> Figure6Drive:
    return Figure6Drive()


@register(
    DRIVE,
    "decoupled",
    example={"chaining": False},
    summary="Decoupled access/execute vector machine (Figure 1)",
)
def _decoupled_drive(
    chaining: bool = False,
    plan_mode: str = "auto",
    execute_startup: int = 4,
    register_length: int | None = None,
    memory_streams: int | None = None,
) -> DecoupledDrive:
    if plan_mode not in ("auto", "ordered", "subsequence", "conflict_free"):
        raise ConfigurationError(
            f"plan_mode must be auto/ordered/subsequence/conflict_free, "
            f"got {plan_mode!r}"
        )
    if memory_streams is not None and (
        not isinstance(memory_streams, int)
        or isinstance(memory_streams, bool)
        or memory_streams < 1
    ):
        raise ConfigurationError(
            f"drive field 'memory_streams' must be an integer >= 1 (or "
            f"null to track memory.ports), got {memory_streams!r}"
        )
    return DecoupledDrive(
        chaining, plan_mode, execute_startup, register_length, memory_streams
    )
