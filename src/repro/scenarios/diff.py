"""Metric-by-metric diffing of two scenario design points.

``repro scenario diff a.json b.json`` simulates one spec per file and
compares the two :meth:`ScenarioResult.to_dict` records — the scenario
analogue of ``repro lab diff``, but across *design points* rather than
recorded runs.  Each scalar metric is classified by direction:

* **regression** — candidate ``b`` is worse than baseline ``a``: more
  cycles (``latency``, ``excess_latency``, ``issue_stalls``,
  ``wait_count``, ``cycles_per_element``, ``extra:total_cycles``),
  lower ``efficiency``, a ``conflict_free`` / ``numerically_correct``
  flag that flipped true -> false, or a lost chaining speedup;
* **improvement** — the same metrics moving the other way;
* **change** — anything else that differs (schemes, timelines, module
  business, informational extras).

Regressions drive the CLI's non-zero exit status, so two committed
specs can gate CI on "the new design point is no worse".
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Scalar metrics where a larger candidate value is a regression.
HIGHER_IS_WORSE = frozenset(
    {
        "latency",
        "excess_latency",
        "issue_stalls",
        "wait_count",
        "cycles_per_element",
        "extra:total_cycles",
    }
)

#: Scalar metrics where a smaller candidate value is a regression.
LOWER_IS_WORSE = frozenset(
    {
        "efficiency",
        "extra:chaining_speedup",
        # Port/stream occupancy: losing memory-level parallelism (fewer
        # concurrent in-flight accesses, less hidden overlap) is a
        # regression; the port/stream *counts* themselves are design
        # choices and stay direction-free.
        "extra:stream_concurrency_peak",
        "extra:overlap_fraction",
    }
)

#: Boolean metrics that regress when they flip true -> false.
MUST_STAY_TRUE = frozenset({"conflict_free", "extra:numerically_correct"})

#: Keys compared for equality only (lists and labels, no direction).
_STRUCTURAL = ("name", "drive", "schemes", "module_busy_cycles")


@dataclass(frozen=True)
class MetricDiff:
    """One metric that differs between the two design points."""

    metric: str
    a: object
    b: object
    severity: str  # "regression" | "improvement" | "change"

    def describe(self) -> str:
        detail = f"{self.metric}: {_show(self.a)} -> {_show(self.b)}"
        if isinstance(self.a, (int, float)) and isinstance(
            self.b, (int, float)
        ) and not isinstance(self.a, bool) and not isinstance(self.b, bool):
            delta = self.b - self.a
            detail += f" ({delta:+g})"
        return detail


@dataclass
class ScenarioDiff:
    """Everything that differs between two simulated design points."""

    label_a: str
    label_b: str
    compared: int = 0
    identical: int = 0
    entries: list[MetricDiff] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        return [e for e in self.entries if e.severity == "regression"]

    @property
    def improvements(self) -> list[MetricDiff]:
        return [e for e in self.entries if e.severity == "improvement"]

    @property
    def changes(self) -> list[MetricDiff]:
        return [e for e in self.entries if e.severity == "change"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def _show(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, list):
        return f"<{len(value)} entries>"
    return str(value)


def _flatten(record: dict) -> dict:
    """One ``ScenarioResult.to_dict`` record as a flat metric mapping."""
    flat: dict = {}
    for key, value in record.items():
        if key == "extras":
            for extra_key, extra_value in value.items():
                flat[f"extra:{extra_key}"] = extra_value
        elif key == "timeline":
            flat["timeline"] = value
        else:
            flat[key] = value
    return flat


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _classify(metric: str, a, b) -> str:
    if metric in MUST_STAY_TRUE and a is True and b is False:
        return "regression"
    if metric in MUST_STAY_TRUE and a is False and b is True:
        return "improvement"
    if _is_number(a) and _is_number(b):
        if metric in HIGHER_IS_WORSE:
            return "regression" if b > a else "improvement"
        if metric in LOWER_IS_WORSE:
            return "regression" if b < a else "improvement"
    return "change"


def diff_results(
    record_a: dict,
    record_b: dict,
    *,
    label_a: str = "a",
    label_b: str = "b",
) -> ScenarioDiff:
    """Compare two ``ScenarioResult.to_dict`` records metric by metric.

    Metrics present on only one side are reported as changes (a
    workload point diffed against a program point has different
    extras); shared metrics are classified by direction.
    """
    flat_a = _flatten(record_a)
    flat_b = _flatten(record_b)
    diff = ScenarioDiff(label_a=label_a, label_b=label_b)
    for metric in sorted(flat_a.keys() | flat_b.keys()):
        if metric in ("name",):
            continue  # design points are allowed to be named differently
        in_a, in_b = metric in flat_a, metric in flat_b
        diff.compared += 1
        if in_a and in_b:
            a, b = flat_a[metric], flat_b[metric]
            if a == b:
                diff.identical += 1
                continue
            if metric == "timeline" or metric in _STRUCTURAL:
                diff.entries.append(MetricDiff(metric, a, b, "change"))
            else:
                diff.entries.append(
                    MetricDiff(metric, a, b, _classify(metric, a, b))
                )
        else:
            diff.entries.append(
                MetricDiff(
                    metric,
                    flat_a.get(metric, "<absent>"),
                    flat_b.get(metric, "<absent>"),
                    "change",
                )
            )
    return diff


def render_scenario_diff(diff: ScenarioDiff) -> str:
    """Human-readable diff, regressions first."""
    lines = [
        f"scenario diff: {diff.label_a} -> {diff.label_b}",
        f"compared {diff.compared} metric(s); {diff.identical} identical",
    ]
    for label, entries in (
        ("REGRESSION", diff.regressions),
        ("improvement", diff.improvements),
        ("change", diff.changes),
    ):
        for entry in entries:
            lines.append(f"[{label}] {entry.describe()}")
    if not diff.entries:
        lines.append("design points are metric-identical")
    elif not diff.has_regressions:
        lines.append("no regressions")
    else:
        lines.append(f"{len(diff.regressions)} regression(s)")
    return "\n".join(lines)
