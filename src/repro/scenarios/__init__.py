"""repro.scenarios — declarative, serializable machine + workload specs.

Every design point the paper (and this repository) studies — which
address mapping, what memory geometry ``(t, q, q', address bits)``,
which workload, how the memory is driven — is expressible as one
JSON-serializable :class:`ScenarioSpec` and executed by one call:

    from repro.scenarios import ScenarioSpec, ComponentSpec, MemorySpec, simulate

    spec = ScenarioSpec(
        mapping=ComponentSpec.of("matched-xor", t=3, s=4),
        memory=MemorySpec(t=3),
        workload=ComponentSpec.of("strided", base=16, stride=12, length=128),
    )
    result = simulate(spec)
    assert result.conflict_free and result.latency == 8 + 128 + 1

    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec          # specs are pure data

Modules:

* :mod:`repro.scenarios.spec` — ``ScenarioSpec``/``ComponentSpec``/
  ``MemorySpec`` and their JSON round-trip;
* :mod:`repro.scenarios.registry` — kind -> factory tables per layer;
* :mod:`repro.scenarios.components` — the registered factories
  (mappings, workloads, drive modes);
* :mod:`repro.scenarios.facade` — ``build_machine``/``simulate`` and the
  normalised ``ScenarioResult``;
* :mod:`repro.scenarios.grid` — ``ScenarioGrid`` parameter sweeps over
  spec fields.

The lab (:mod:`repro.lab`) accepts specs as jobs (``scenario_job``), so
distinct design points land in distinct cache entries; the CLI front
end is ``repro scenario run|list``.
"""

from repro.scenarios import components as _components  # registration
from repro.scenarios.components import ScenarioProgram
from repro.scenarios.diff import (
    ScenarioDiff,
    diff_results,
    render_scenario_diff,
)
from repro.scenarios.facade import (
    ENGINE_NAMES,
    TIMELINE_FIELDS,
    ScenarioResult,
    build_machine,
    build_workload,
    resolve_mapping,
    simulate,
    simulate_grid,
)
from repro.scenarios.grid import ScenarioGrid, load_grid, load_scenarios
from repro.scenarios.registry import (
    CATEGORIES,
    DRIVE,
    MAPPING,
    PROGRAM,
    WORKLOAD,
    build,
    example_params,
    kinds,
    summary,
    validate_kind,
    validate_spec_kinds,
)
from repro.scenarios.spec import (
    ComponentSpec,
    MemorySpec,
    ScenarioSpec,
    freeze_params,
    freeze_value,
)

del _components

__all__ = [
    "CATEGORIES",
    "DRIVE",
    "ENGINE_NAMES",
    "MAPPING",
    "PROGRAM",
    "TIMELINE_FIELDS",
    "WORKLOAD",
    "ComponentSpec",
    "MemorySpec",
    "ScenarioDiff",
    "ScenarioGrid",
    "ScenarioProgram",
    "ScenarioResult",
    "ScenarioSpec",
    "build",
    "build_machine",
    "build_workload",
    "diff_results",
    "example_params",
    "freeze_params",
    "freeze_value",
    "kinds",
    "load_grid",
    "load_scenarios",
    "render_scenario_diff",
    "resolve_mapping",
    "simulate",
    "simulate_grid",
    "summary",
    "validate_kind",
    "validate_spec_kinds",
]
