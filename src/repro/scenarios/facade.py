"""The scenario facade: spec in, normalised metrics out.

Two entry points:

* :func:`build_machine` — spec to live ``(MemoryConfig, AccessPlanner,
  MemorySystem)``, the wiring every experiment runner used to do by
  hand;
* :func:`simulate` — build the machine, generate the workload, drive
  the memory, and normalise the metrics every caller previously
  extracted ad hoc (latency, stalls, conflict-freedom, efficiency,
  per-module utilisation) into one JSON-safe
  :class:`ScenarioResult`.

Both raise :class:`~repro.errors.ConfigurationError` for infeasible
combinations (a dynamic mapping without a strided workload, the
Figure 6 engine on a gather, a register shorter than the vector), so a
bad spec fails loudly before any simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.gather import IndexedAccess, plan_indexed
from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError
from repro.mappings.base import AddressMapping
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.memory.config import MemoryConfig
from repro.memory.system import AccessResult, MemorySystem
from repro.scenarios import components as _components  # registers kinds
from repro.scenarios.components import (
    DecoupledDrive,
    Figure6Drive,
    PlannerDrive,
    Workload,
)
from repro.scenarios.registry import DRIVE, MAPPING, WORKLOAD, build
from repro.scenarios.spec import ScenarioSpec

__unused = _components  # imported for its registration side effect


@dataclass(frozen=True)
class ScenarioResult:
    """Normalised outcome of simulating one scenario.

    All fields are JSON scalars or lists thereof, so a result can be
    stored as a lab artifact or printed by the CLI without any custom
    encoding.  ``extras`` carries drive-specific observations (total
    machine cycles, chained instruction count, latch occupancy...).
    """

    name: str
    drive: str
    schemes: tuple[str, ...]
    access_count: int
    element_count: int
    latency: int
    minimum_latency: int
    conflict_free: bool
    issue_stalls: int
    wait_count: int
    service_ratio: int
    module_count: int
    module_busy_cycles: tuple[int, ...]
    extras: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    @property
    def cycles_per_element(self) -> float:
        return self.latency / self.element_count

    @property
    def excess_latency(self) -> int:
        """Cycles above the conflict-free minimum."""
        return self.latency - self.minimum_latency

    @property
    def efficiency(self) -> float:
        """Delivered elements per cycle, against the minimum-latency ideal."""
        return self.minimum_latency / self.latency

    @property
    def module_utilisation(self) -> float:
        """Mean fraction of the run each module spent busy."""
        if not self.module_busy_cycles or self.latency == 0:
            return 0.0
        return sum(self.module_busy_cycles) / (
            len(self.module_busy_cycles) * self.latency
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "drive": self.drive,
            "schemes": list(self.schemes),
            "access_count": self.access_count,
            "element_count": self.element_count,
            "latency": self.latency,
            "minimum_latency": self.minimum_latency,
            "excess_latency": self.excess_latency,
            "conflict_free": self.conflict_free,
            "issue_stalls": self.issue_stalls,
            "wait_count": self.wait_count,
            "cycles_per_element": self.cycles_per_element,
            "efficiency": self.efficiency,
            "service_ratio": self.service_ratio,
            "module_count": self.module_count,
            "module_utilisation": self.module_utilisation,
            "module_busy_cycles": list(self.module_busy_cycles),
            "extras": {key: value for key, value in self.extras},
        }

    def metric_rows(self) -> list[list]:
        """``[metric, value]`` rows for tables and lab artifacts."""
        data = self.to_dict()
        rows = []
        for key in (
            "drive",
            "access_count",
            "element_count",
            "latency",
            "minimum_latency",
            "excess_latency",
            "conflict_free",
            "issue_stalls",
            "wait_count",
            "cycles_per_element",
            "efficiency",
            "module_utilisation",
        ):
            value = data[key]
            if isinstance(value, float):
                value = round(value, 6)
            rows.append([key, value])
        rows.append(["schemes", " ".join(self.schemes)])
        for key, value in self.extras:
            rows.append([f"extra:{key}", value])
        return rows


def build_workload(spec: ScenarioSpec) -> Workload:
    """The live workload of a spec (which must declare one)."""
    if spec.workload is None:
        raise ConfigurationError(
            f"scenario {spec.name or spec.describe()!r} declares no workload; "
            "add a 'workload' section to simulate it"
        )
    return build(WORKLOAD, spec.workload)


def resolve_mapping(
    spec: ScenarioSpec, workload: Workload | None = None
) -> AddressMapping:
    """The concrete mapping of a spec.

    A ``dynamic`` mapping is a per-stride *selector*, not a mapping; it
    needs a single strided workload to resolve against (exactly the
    restriction the paper's Section 1 draws against dynamic schemes).
    """
    mapping = build(
        MAPPING, spec.mapping, address_bits=spec.memory.address_bits
    )
    if isinstance(mapping, DynamicSchemeSelector):
        if workload is None and spec.workload is not None:
            workload = build_workload(spec)
        if workload is None:
            raise ConfigurationError(
                "a dynamic mapping needs a strided workload to select the "
                "per-stride scheme; this spec has no workload"
            )
        vector = workload.single_vector()
        return mapping.mapping_for_stride(vector.stride)
    return mapping


def build_machine(
    spec: ScenarioSpec, workload: Workload | None = None
) -> tuple[MemoryConfig, AccessPlanner, MemorySystem]:
    """Materialise the machine layer of a spec.

    Returns the memory configuration, the access planner and the
    cycle-accurate memory system — identical objects to what the
    hand-wired constructors produce, so results are bit-for-bit equal.
    """
    mapping = resolve_mapping(spec, workload)
    config = MemoryConfig(
        mapping,
        spec.memory.t,
        input_capacity=spec.memory.q,
        output_capacity=spec.memory.qp,
    )
    planner = AccessPlanner(config.mapping, config.t)
    return config, planner, MemorySystem(config)


def simulate(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario end to end and normalise its metrics."""
    workload = build_workload(spec)
    config, planner, system = build_machine(spec, workload)
    drive = build(DRIVE, spec.drive)
    if isinstance(drive, PlannerDrive):
        return _simulate_planner(spec, workload, config, planner, system, drive)
    if isinstance(drive, Figure6Drive):
        return _simulate_figure6(spec, workload, config, planner, system)
    if isinstance(drive, DecoupledDrive):
        return _simulate_decoupled(spec, workload, config, drive)
    raise ConfigurationError(  # pragma: no cover - registry emits the three
        f"drive kind {spec.drive.kind!r} returned an unknown descriptor"
    )


def _aggregate(
    spec: ScenarioSpec,
    config: MemoryConfig,
    runs: list[tuple[str, AccessResult]],
    extras: tuple[tuple[str, object], ...] = (),
) -> ScenarioResult:
    """Fold per-access results into one scenario-level record.

    Multi-access workloads (kernels) are simulated back to back, so
    totals add and conflict-freedom is the conjunction.
    """
    schemes = []
    for scheme, _run in runs:
        if scheme not in schemes:
            schemes.append(scheme)
    elements = sum(run.element_count for _scheme, run in runs)
    busy = [0] * config.module_count
    for _scheme, run in runs:
        for module, cycles in enumerate(run.module_busy_cycles):
            busy[module] += cycles
    minimum = sum(
        config.service_ratio + run.element_count + 1 for _scheme, run in runs
    )
    return ScenarioResult(
        name=spec.name,
        drive=spec.drive.kind,
        schemes=tuple(schemes),
        access_count=len(runs),
        element_count=elements,
        latency=sum(run.latency for _scheme, run in runs),
        minimum_latency=minimum,
        conflict_free=all(run.conflict_free for _scheme, run in runs),
        issue_stalls=sum(run.issue_stall_cycles for _scheme, run in runs),
        wait_count=sum(run.wait_count for _scheme, run in runs),
        service_ratio=config.service_ratio,
        module_count=config.module_count,
        module_busy_cycles=tuple(busy),
        extras=extras,
    )


def _simulate_planner(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    planner: AccessPlanner,
    system: MemorySystem,
    drive: PlannerDrive,
) -> ScenarioResult:
    runs: list[tuple[str, AccessResult]] = []
    for access in workload.accesses():
        if isinstance(access, IndexedAccess):
            plan = plan_indexed(
                config.mapping, config.t, access, mode=drive.indexed_mode
            )
        else:
            plan = planner.plan(access, mode=drive.mode)
        runs.append((plan.scheme, system.run_plan(plan)))
    return _aggregate(spec, config, runs)


def _simulate_figure6(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    planner: AccessPlanner,
    system: MemorySystem,
) -> ScenarioResult:
    from repro.hardware.oos_engine import Figure6Engine

    vector = workload.single_vector()
    engine = Figure6Engine(planner, vector)
    run = system.run_stream(engine.request_stream())
    report = engine.report()
    extras = (
        ("latch_peak_occupancy", report.latch_peak_occupancy),
        ("latch_capacity", report.latch_capacity),
        ("generator_adds", report.generator1_adds + report.generator2_adds),
    )
    return _aggregate(spec, config, [("conflict_free", run)], extras)


def _simulate_decoupled(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    drive: DecoupledDrive,
) -> ScenarioResult:
    from repro.processor.decoupled import DecoupledVectorMachine
    from repro.processor.isa import VAdd, VLoad
    from repro.processor.program import Program

    vector = workload.single_vector()
    register_length = drive.register_length or vector.length
    if register_length < vector.length:
        raise ConfigurationError(
            f"register_length {register_length} is shorter than the "
            f"workload vector ({vector.length} elements)"
        )
    machine = DecoupledVectorMachine(
        config,
        register_length=register_length,
        execute_startup=drive.execute_startup,
        chaining=drive.chaining,
        plan_mode=drive.plan_mode,  # type: ignore[arg-type]
    )
    machine.store.write_vector(
        vector.base, vector.stride, [float(i) for i in range(vector.length)]
    )
    instructions = [VLoad(1, vector.base, vector.stride, vector.length)]
    if drive.chaining:
        # A dependent add makes the chained overlap observable.
        instructions.append(VAdd(2, 1, 1, vector.length))
    result = machine.run(Program(instructions))

    load = result.timings[0]
    memory_run = machine.memory_access_results[0]
    extras = (
        ("total_cycles", result.total_cycles),
        ("chained_instructions", result.chained_count()),
        ("conflict_free_loads", result.conflict_free_loads()),
        ("load_scheme", load.mode),
    )
    return _aggregate(spec, config, [(load.mode, memory_run)], extras)
