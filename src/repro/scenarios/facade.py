"""The scenario facade: spec in, normalised metrics out.

Two entry points:

* :func:`build_machine` — spec to live ``(MemoryConfig, AccessPlanner,
  MemorySystem)``, the wiring every experiment runner used to do by
  hand;
* :func:`simulate` — build the machine, generate the workload (or the
  program), drive the memory, and normalise the metrics every caller
  previously extracted ad hoc (latency, stalls, conflict-freedom,
  efficiency, per-module utilisation) into one JSON-safe
  :class:`ScenarioResult`.

A spec with a ``program`` section runs a whole vector program through
the one :class:`~repro.processor.engine.ProgramEngine` API — the same
path the workload-driven ``decoupled`` drive uses — and the result
additionally carries the per-instruction ``timeline``, total machine
cycles, the overlap fraction, the measured-vs-analytic chaining
speedup, and the end-to-end numerical-correctness verdict.

Both entry points raise :class:`~repro.errors.ConfigurationError` for
infeasible combinations (a dynamic mapping without a strided workload,
the Figure 6 engine on a gather, a register shorter than the vector, a
program under a non-decoupled drive), so a bad spec fails loudly before
any simulation starts.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.gather import IndexedAccess, plan_indexed
from repro.core.planner import AccessPlanner
from repro.errors import ConfigurationError
from repro.mappings.base import AddressMapping
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.memory.config import MemoryConfig
from repro.memory.system import AccessResult, MemorySystem
from repro.obs.tracer import resolve_tracer
from repro.scenarios import components as _components  # registers kinds
from repro.scenarios.components import (
    DecoupledDrive,
    Figure6Drive,
    PlannerDrive,
    Workload,
)
from repro.scenarios.registry import DRIVE, MAPPING, PROGRAM, WORKLOAD, build
from repro.scenarios.spec import ScenarioSpec

__unused = _components  # imported for its registration side effect

#: Column names of one :attr:`ScenarioResult.timeline` row, in order.
#: Matches :data:`repro.processor.engine.TIMELINE_FIELDS` (asserted in
#: the tests); duplicated here so reading a stored result needs no
#: processor import.
TIMELINE_FIELDS = (
    "position",
    "mnemonic",
    "unit",
    "start_cycle",
    "end_cycle",
    "duration",
    "mode",
    "conflict_free",
    "port",
    "stream",
)


def _jsonify(value):
    """Extras values to their JSON-facing form (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


@dataclass(frozen=True)
class ScenarioResult:
    """Normalised outcome of simulating one scenario.

    All fields are JSON scalars or lists thereof, so a result can be
    stored as a lab artifact or printed by the CLI without any custom
    encoding.  ``extras`` carries drive-specific observations (total
    machine cycles, chained instruction count, latch occupancy...).
    ``timeline`` — per-instruction cycle accounting, one row of
    :data:`TIMELINE_FIELDS` values per executed instruction — is only
    populated by the decoupled-machine paths (empty for planner and
    figure6 drives, which simulate accesses, not instructions).
    """

    name: str
    drive: str
    schemes: tuple[str, ...]
    access_count: int
    element_count: int
    latency: int
    minimum_latency: int
    conflict_free: bool
    issue_stalls: int
    wait_count: int
    service_ratio: int
    module_count: int
    module_busy_cycles: tuple[int, ...]
    extras: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    timeline: tuple[tuple, ...] = field(default_factory=tuple)

    @property
    def cycles_per_element(self) -> float:
        return self.latency / self.element_count

    @property
    def excess_latency(self) -> int:
        """Cycles above the conflict-free minimum."""
        return self.latency - self.minimum_latency

    @property
    def efficiency(self) -> float:
        """Delivered elements per cycle, against the minimum-latency ideal."""
        return self.minimum_latency / self.latency

    @property
    def module_utilisation(self) -> float:
        """Mean fraction of the run each module spent busy."""
        if not self.module_busy_cycles or self.latency == 0:
            return 0.0
        return sum(self.module_busy_cycles) / (
            len(self.module_busy_cycles) * self.latency
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "drive": self.drive,
            "schemes": list(self.schemes),
            "access_count": self.access_count,
            "element_count": self.element_count,
            "latency": self.latency,
            "minimum_latency": self.minimum_latency,
            "excess_latency": self.excess_latency,
            "conflict_free": self.conflict_free,
            "issue_stalls": self.issue_stalls,
            "wait_count": self.wait_count,
            "cycles_per_element": self.cycles_per_element,
            "efficiency": self.efficiency,
            "service_ratio": self.service_ratio,
            "module_count": self.module_count,
            "module_utilisation": self.module_utilisation,
            "module_busy_cycles": list(self.module_busy_cycles),
            "extras": {key: _jsonify(value) for key, value in self.extras},
            "timeline": [
                dict(zip(TIMELINE_FIELDS, row)) for row in self.timeline
            ],
        }

    def metric_rows(self) -> list[list]:
        """``[metric, value]`` rows for tables and lab artifacts."""
        data = self.to_dict()
        rows = []
        for key in (
            "drive",
            "access_count",
            "element_count",
            "latency",
            "minimum_latency",
            "excess_latency",
            "conflict_free",
            "issue_stalls",
            "wait_count",
            "cycles_per_element",
            "efficiency",
            "module_utilisation",
        ):
            value = data[key]
            if isinstance(value, float):
                value = round(value, 6)
            rows.append([key, value])
        rows.append(["schemes", " ".join(self.schemes)])
        for key, value in self.extras:
            rows.append([f"extra:{key}", value])
        return rows


#: Set to ``0``/``off``/``false``/``no`` to disable machine-template
#: memoization (every ``build_config`` call then re-derives the mapping
#: and config from scratch).
MACHINE_CACHE_ENV = "REPRO_MACHINE_CACHE"

_MACHINE_CACHE_CAPACITY = 512
_machine_cache: OrderedDict[tuple, MemoryConfig] = OrderedDict()
_machine_cache_lock = threading.Lock()
_machine_cache_hits = 0
_machine_cache_misses = 0


def machine_cache_enabled() -> bool:
    """Whether :func:`build_config` reuses machine templates."""
    value = os.environ.get(MACHINE_CACHE_ENV, "1").strip().lower()
    return value not in ("0", "off", "false", "no")


def machine_cache_stats() -> dict[str, int]:
    """Hit/miss/occupancy counters of the machine-template cache."""
    with _machine_cache_lock:
        return {
            "machine_cache_hits": _machine_cache_hits,
            "machine_cache_misses": _machine_cache_misses,
            "machine_cache_entries": len(_machine_cache),
        }


def clear_machine_cache() -> None:
    """Empty the machine-template cache (tests, benchmarks)."""
    global _machine_cache_hits, _machine_cache_misses
    with _machine_cache_lock:
        _machine_cache.clear()
        _machine_cache_hits = 0
        _machine_cache_misses = 0


def _freeze(value):
    """A params value as a hashable cache-key component."""
    if isinstance(value, dict):
        return tuple(
            (key, _freeze(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _machine_cache_key(spec: ScenarioSpec) -> tuple | None:
    """Cache key of a spec's machine layer, or None when uncacheable.

    ``dynamic`` mappings resolve against the workload, so their machine
    depends on more than the mapping/memory sections and is rebuilt
    every time.  Everything else is a pure function of the two spec
    sections (the same determinism the content-addressed artifact cache
    already relies on), so identical sections — the common case across
    a grid's program/workload axes — share one frozen
    :class:`MemoryConfig` and mapping object.
    """
    if not machine_cache_enabled():
        return None
    if spec.mapping.kind == "dynamic":
        return None
    memory = spec.memory
    return (
        spec.mapping.kind,
        _freeze(spec.mapping.params),
        memory.t,
        memory.q,
        memory.qp,
        memory.ports,
        memory.address_bits,
    )


def _machine_cache_lookup(key: tuple) -> MemoryConfig | None:
    global _machine_cache_hits, _machine_cache_misses
    with _machine_cache_lock:
        config = _machine_cache.get(key)
        if config is None:
            _machine_cache_misses += 1
            return None
        _machine_cache.move_to_end(key)
        _machine_cache_hits += 1
        return config


def _machine_cache_store(key: tuple, config: MemoryConfig) -> None:
    with _machine_cache_lock:
        _machine_cache[key] = config
        _machine_cache.move_to_end(key)
        while len(_machine_cache) > _MACHINE_CACHE_CAPACITY:
            _machine_cache.popitem(last=False)


def build_workload(spec: ScenarioSpec) -> Workload:
    """The live workload of a spec (which must declare one)."""
    if spec.workload is None:
        raise ConfigurationError(
            f"scenario {spec.name or spec.describe()!r} declares no workload; "
            "add a 'workload' (or 'program') section to simulate it"
        )
    return build(WORKLOAD, spec.workload)


def resolve_mapping(
    spec: ScenarioSpec, workload: Workload | None = None
) -> AddressMapping:
    """The concrete mapping of a spec.

    A ``dynamic`` mapping is a per-stride *selector*, not a mapping; it
    needs a single strided workload to resolve against (exactly the
    restriction the paper's Section 1 draws against dynamic schemes).
    """
    mapping, _dynamic = _resolve_mapping_info(spec, workload)
    return mapping


def _resolve_mapping_info(
    spec: ScenarioSpec, workload: Workload | None = None
) -> tuple[AddressMapping, bool]:
    """The concrete mapping plus whether it was workload-resolved."""
    mapping = build(
        MAPPING, spec.mapping, address_bits=spec.memory.address_bits
    )
    if isinstance(mapping, DynamicSchemeSelector):
        if workload is None and spec.workload is not None:
            workload = build_workload(spec)
        if workload is None:
            raise ConfigurationError(
                "a dynamic mapping needs a strided workload to select the "
                "per-stride scheme; this spec has no workload"
            )
        vector = workload.single_vector()
        return mapping.mapping_for_stride(vector.stride), True
    return mapping, False


def build_config(
    spec: ScenarioSpec, workload: Workload | None = None
) -> MemoryConfig:
    """The memory configuration of a spec (geometry validation included).

    The program path needs only this — the
    :class:`~repro.processor.engine.ProgramEngine` builds its own
    machine from the config — while :func:`build_machine` layers the
    planner and memory system on top for the access-driven paths.

    Identical mapping/memory sections share one frozen config (and
    mapping object) through the machine-template cache, so a grid
    sweeping program or workload axes stops re-deriving its machine
    per point; disable with ``REPRO_MACHINE_CACHE=0``.
    """
    key = _machine_cache_key(spec)
    if key is not None:
        cached = _machine_cache_lookup(key)
        if cached is not None:
            return cached
    mapping, dynamic = _resolve_mapping_info(spec, workload)
    if spec.memory.ports > mapping.module_count:
        raise ConfigurationError(
            f"scenario field 'memory.ports' ({spec.memory.ports}) exceeds "
            f"the module count M={mapping.module_count} of mapping "
            f"{spec.mapping.kind!r}: each port needs at least one module "
            "to talk to"
        )
    config = MemoryConfig(
        mapping,
        spec.memory.t,
        input_capacity=spec.memory.q,
        output_capacity=spec.memory.qp,
        ports=spec.memory.ports,
    )
    # A registered kind may hand back a dynamic selector even when the
    # spec kind isn't literally "dynamic"; those configs depend on the
    # workload, so only workload-independent machines are shared.
    if key is not None and not dynamic:
        _machine_cache_store(key, config)
    return config


def build_machine(
    spec: ScenarioSpec, workload: Workload | None = None
) -> tuple[MemoryConfig, AccessPlanner, MemorySystem]:
    """Materialise the machine layer of a spec.

    Returns the memory configuration, the access planner and the
    cycle-accurate memory system — identical objects to what the
    hand-wired constructors produce, so results are bit-for-bit equal.
    """
    config = build_config(spec, workload)
    planner = AccessPlanner(config.mapping, config.t)
    return config, planner, MemorySystem(config)


def simulate(spec: ScenarioSpec, tracer=None) -> ScenarioResult:
    """Run one scenario end to end and normalise its metrics.

    ``tracer`` (an :class:`repro.obs.tracer.Tracer`) collects the
    cycle-level event timeline of whichever drive runs — kernel
    module/port/stream events for the access-driven paths, plus
    machine-unit instruction spans for the program paths — for export
    as Chrome trace JSON (``repro scenario run --trace``).
    """
    tracer = resolve_tracer(tracer)
    drive = build(DRIVE, spec.drive)
    if spec.program is not None:
        if not isinstance(drive, DecoupledDrive):
            raise ConfigurationError(
                f"scenario programs run on the decoupled machine; set "
                f"drive kind to 'decoupled' (got {spec.drive.kind!r})"
            )
        return _simulate_program(spec, build_config(spec), drive, tracer)
    workload = build_workload(spec)
    config, planner, system = build_machine(spec, workload)
    if isinstance(drive, PlannerDrive):
        return _simulate_planner(
            spec, workload, config, planner, system, drive, tracer
        )
    if isinstance(drive, Figure6Drive):
        return _simulate_figure6(
            spec, workload, config, planner, system, tracer
        )
    if isinstance(drive, DecoupledDrive):
        return _simulate_decoupled(spec, workload, config, drive, tracer)
    raise ConfigurationError(  # pragma: no cover - registry emits the three
        f"drive kind {spec.drive.kind!r} returned an unknown descriptor"
    )


#: Evaluation engines ``simulate_grid`` (and the CLI) accept.
ENGINE_NAMES = ("kernel", "batch")


def simulate_grid(
    grid,
    *,
    engine: str = "kernel",
    validate: int = 0,
    workers: int | None = None,
    tracer=None,
) -> list[ScenarioResult]:
    """Simulate every design point of a grid (or a list of specs).

    ``engine`` picks the evaluation strategy: ``"kernel"`` runs each
    point through :func:`simulate` (the per-point cycle-accurate
    path), ``"batch"`` hands the whole batch to
    :func:`repro.batch.evaluate_batch` — the analytic ``T + L + 1``
    fast path for conflict-free planner points plus the
    struct-of-arrays batched kernel for the rest, with identical
    results either way.  ``validate`` (batch engine only) re-runs that
    many sampled points through the per-point kernel and raises on any
    field mismatch.  ``workers`` (batch engine only) shards the
    fallback tier — figure6/decoupled/program points — over that many
    worker processes.  ``tracer`` is only meaningful for the kernel
    engine (the batch engine materialises no per-cycle events).
    """
    from repro.scenarios.grid import ScenarioGrid

    specs = grid.expand() if isinstance(grid, ScenarioGrid) else list(grid)
    if engine == "kernel":
        return [simulate(spec, tracer) for spec in specs]
    if engine == "batch":
        from repro.batch import evaluate_batch

        return list(
            evaluate_batch(
                specs, validate=validate, workers=workers
            ).results
        )
    raise ConfigurationError(
        f"unknown evaluation engine {engine!r} "
        f"(known: {', '.join(ENGINE_NAMES)})"
    )


def _aggregate(
    spec: ScenarioSpec,
    config: MemoryConfig,
    runs: list[tuple[str, AccessResult]],
    extras: tuple[tuple[str, object], ...] = (),
    timeline: tuple[tuple, ...] = (),
) -> ScenarioResult:
    """Fold per-access results into one scenario-level record.

    Multi-access workloads (kernels) are simulated back to back, so
    totals add and conflict-freedom is the conjunction.
    """
    schemes = []
    for scheme, _run in runs:
        if scheme not in schemes:
            schemes.append(scheme)
    elements = sum(run.element_count for _scheme, run in runs)
    busy = [0] * config.module_count
    for _scheme, run in runs:
        for module, cycles in enumerate(run.module_busy_cycles):
            busy[module] += cycles
    minimum = sum(
        config.service_ratio + run.element_count + 1 for _scheme, run in runs
    )
    return ScenarioResult(
        name=spec.name,
        drive=spec.drive.kind,
        schemes=tuple(schemes),
        access_count=len(runs),
        element_count=elements,
        latency=sum(run.latency for _scheme, run in runs),
        minimum_latency=minimum,
        conflict_free=all(run.conflict_free for _scheme, run in runs),
        issue_stalls=sum(run.issue_stall_cycles for _scheme, run in runs),
        wait_count=sum(run.wait_count for _scheme, run in runs),
        service_ratio=config.service_ratio,
        module_count=config.module_count,
        module_busy_cycles=tuple(busy),
        extras=extras,
        timeline=timeline,
    )


def _simulate_planner(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    planner: AccessPlanner,
    system: MemorySystem,
    drive: PlannerDrive,
    tracer=None,
) -> ScenarioResult:
    tracer = resolve_tracer(tracer)
    runs: list[tuple[str, AccessResult]] = []
    # Accesses run back to back, so each one's kernel events are shifted
    # by the latency accumulated before it — the exported timeline shows
    # the workload as one continuous run.
    offset = 0
    for access in workload.accesses():
        if isinstance(access, IndexedAccess):
            plan = plan_indexed(
                config.mapping, config.t, access, mode=drive.indexed_mode
            )
        else:
            plan = planner.plan(access, mode=drive.mode)
        run = system.run_plan(plan, tracer=tracer.shifted(offset))
        offset += run.latency
        runs.append((plan.scheme, run))
    return _aggregate(spec, config, runs)


def _simulate_figure6(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    planner: AccessPlanner,
    system: MemorySystem,
    tracer=None,
) -> ScenarioResult:
    from repro.hardware.oos_engine import Figure6Engine

    vector = workload.single_vector()
    engine = Figure6Engine(planner, vector)
    run = system.run_stream(engine.request_stream(), tracer=tracer)
    report = engine.report()
    extras = (
        ("latch_peak_occupancy", report.latch_peak_occupancy),
        ("latch_capacity", report.latch_capacity),
        ("generator_adds", report.generator1_adds + report.generator2_adds),
    )
    return _aggregate(spec, config, [("conflict_free", run)], extras)


def _simulate_decoupled(
    spec: ScenarioSpec,
    workload: Workload,
    config: MemoryConfig,
    drive: DecoupledDrive,
    tracer=None,
) -> ScenarioResult:
    from repro.processor.engine import ProgramEngine, single_load_program

    vector = workload.single_vector()
    register_length = drive.register_length or vector.length
    if register_length < vector.length:
        raise ConfigurationError(
            f"register_length {register_length} is shorter than the "
            f"workload vector ({vector.length} elements)"
        )
    engine = ProgramEngine(
        config,
        register_length,
        execute_startup=drive.execute_startup,
        chaining=drive.chaining,
        plan_mode=drive.plan_mode,  # type: ignore[arg-type]
        memory_streams=drive.memory_streams,
        tracer=tracer,
    )
    # The implicit program: one VLOAD (plus a dependent VADD when
    # chaining, which makes the chained overlap observable).
    program = single_load_program(vector, drive.chaining)
    inputs = (
        (
            vector.base,
            vector.stride,
            tuple(float(i) for i in range(vector.length)),
        ),
    )
    run = engine.run(program, inputs)
    load_scheme = run.memory_runs[0][0]
    extras = (
        ("total_cycles", run.total_cycles),
        ("chained_instructions", run.chained_count),
        ("conflict_free_loads", run.conflict_free_loads),
        ("load_scheme", load_scheme),
        ("overlap_fraction", run.overlap_fraction),
    )
    return _aggregate(
        spec, config, list(run.memory_runs), extras, timeline=run.timeline
    )


def _simulate_program(
    spec: ScenarioSpec,
    config: MemoryConfig,
    drive: DecoupledDrive,
    tracer=None,
) -> ScenarioResult:
    """Run a whole-program scenario through the :class:`ProgramEngine`.

    Memory metrics (latency, stalls, conflict-freedom...) aggregate over
    every LOAD/STORE the program issued; machine-level observations land
    in ``extras`` and the per-instruction ``timeline``.  When the drive
    enables chaining, the program is also run on an otherwise-identical
    non-chaining machine, and the measured decoupled/chained speedup is
    reported next to the analytic
    :func:`repro.processor.chaining.program_chaining_speedup` prediction
    with the model's stated tolerance.
    """
    from repro.processor.chaining import (
        CHAINING_MODEL_TOLERANCE,
        program_chaining_speedup,
    )
    from repro.processor.engine import ProgramEngine
    from repro.scenarios.components import DEFAULT_PROGRAM_REGISTER_LENGTH

    register_length = drive.register_length or DEFAULT_PROGRAM_REGISTER_LENGTH
    scenario_program = build(
        PROGRAM, spec.program, register_length=register_length
    )
    engine = ProgramEngine(
        config,
        register_length,
        execute_startup=drive.execute_startup,
        chaining=drive.chaining,
        plan_mode=drive.plan_mode,  # type: ignore[arg-type]
        memory_streams=drive.memory_streams,
        tracer=tracer,
    )
    run = engine.run(
        scenario_program.program,
        scenario_program.inputs,
        scenario_program.expected,
    )
    extras: list[tuple[str, object]] = [
        ("program", scenario_program.label),
        ("instruction_count", len(scenario_program.program)),
        ("memory_instructions",
         scenario_program.program.memory_instruction_count()),
        ("register_length", register_length),
        ("total_cycles", run.total_cycles),
        ("chained_instructions", run.chained_count),
        ("conflict_free_loads", run.conflict_free_loads),
        ("overlap_fraction", run.overlap_fraction),
        ("memory_ports", config.ports),
        ("memory_streams", run.machine.memory_streams),
        ("stream_concurrency_peak", run.stream_concurrency_peak),
    ]
    if run.outputs_correct is not None:
        extras.append(("numerically_correct", run.outputs_correct))
        if run.output_errors:
            extras.append(("output_errors", run.output_errors[:5]))
    if drive.chaining:
        measured = engine.measured_chaining_speedup(
            scenario_program.program, scenario_program.inputs, chained_run=run
        )
        extras.append(("chaining_speedup", measured))
        # The analytic model assumes every access is conflict-free and
        # a serial memory unit (one in-flight access); only report it
        # (and its acceptance tolerance) when both premises hold, so
        # consumers never compare against an inapplicable prediction.
        model_applicable = run.machine.memory_streams == 1 and all(
            access.conflict_free for _scheme, access in run.memory_runs
        )
        extras.append(("chaining_model_applicable", model_applicable))
        if model_applicable:
            extras.extend(
                (
                    (
                        "chaining_speedup_model",
                        program_chaining_speedup(
                            scenario_program.program,
                            register_length,
                            config.service_ratio,
                            drive.execute_startup,
                        ),
                    ),
                    ("chaining_model_tolerance", CHAINING_MODEL_TOLERANCE),
                )
            )
    return _aggregate(
        spec,
        config,
        list(run.memory_runs),
        tuple(extras),
        timeline=run.timeline,
    )
