"""Kind registries: the string -> factory tables behind scenario specs.

Four categories, one registry each:

* ``"mapping"`` — address mappings (module-number component ``F``);
* ``"workload"`` — access streams (strided, indexed, kernel);
* ``"drive"`` — how requests reach the memory (planner, Figure 6
  engine, the decoupled machine);
* ``"program"`` — whole vector programs for the decoupled machine
  (inline instruction lists, assembler text, or named strip-mined
  kernels such as ``daxpy``).

A factory takes the spec's parameters as keyword arguments (plus
category-specific context such as ``address_bits``) and returns the
live component.  Unknown kinds and unknown/invalid parameters raise
:class:`~repro.errors.ConfigurationError` with the known alternatives
spelled out, so a typo in a JSON spec fails with a readable message
instead of a stack trace from deep inside a constructor.
"""

from __future__ import annotations

import inspect
import re
from typing import Callable

from repro.errors import ConfigurationError
from repro.scenarios.spec import ComponentSpec

MAPPING = "mapping"
WORKLOAD = "workload"
DRIVE = "drive"
PROGRAM = "program"

CATEGORIES = (MAPPING, WORKLOAD, DRIVE, PROGRAM)


class _Entry:
    """One registered kind: its factory plus a runnable example."""

    def __init__(self, factory: Callable, example: dict, summary: str):
        self.factory = factory
        self.example = example
        self.summary = summary
        self._signature: inspect.Signature | None = None

    def signature(self) -> inspect.Signature:
        """The factory's signature, resolved once.

        ``inspect.signature`` is surprisingly expensive and factories
        are immutable after registration, so every ``build`` call (the
        batch engine makes thousands) shares one resolution.
        """
        if self._signature is None:
            self._signature = inspect.signature(self.factory)
        return self._signature


_REGISTRY: dict[str, dict[str, _Entry]] = {
    category: {} for category in CATEGORIES
}


def register(category: str, kind: str, *, example: dict, summary: str = ""):
    """Decorator registering ``factory`` as ``kind`` in ``category``.

    ``example`` is a complete, feasible parameter set for the kind; the
    round-trip tests and ``repro scenario list`` both consume it, so
    every registered component ships with a working starting point.
    """
    if category not in _REGISTRY:
        raise ConfigurationError(
            f"unknown registry category {category!r} "
            f"(known: {', '.join(CATEGORIES)})"
        )

    def wrap(factory: Callable) -> Callable:
        if kind in _REGISTRY[category]:
            raise ConfigurationError(
                f"duplicate registration of {category} kind {kind!r}"
            )
        _REGISTRY[category][kind] = _Entry(
            factory, dict(example), summary or (factory.__doc__ or "").strip()
        )
        return factory

    return wrap


def kinds(category: str) -> list[str]:
    """Registered kinds of one category, sorted."""
    _check_category(category)
    return sorted(_REGISTRY[category])


def example_params(category: str, kind: str) -> dict:
    """A copy of the registered example parameter set."""
    return dict(_entry(category, kind).example)


def summary(category: str, kind: str) -> str:
    return _entry(category, kind).summary.splitlines()[0]


def build(category: str, spec: ComponentSpec, **context):
    """Instantiate one component from its spec.

    ``context`` carries cross-layer inputs a factory may need (the
    memory's ``address_bits`` for mappings, the planner for drives).
    Factories declare the context they use; the rest is filtered out
    here so adding context never breaks existing factories.
    """
    entry = _entry(category, spec.kind)
    params = spec.param_dict()
    overlap = set(params) & set(context)
    if overlap:
        raise ConfigurationError(
            f"{category} kind {spec.kind!r} params shadow reserved context "
            f"names: {', '.join(sorted(overlap))}"
        )
    accepted = entry.signature().parameters
    takes_kwargs = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in accepted.values()
    )
    passed_context = {
        key: value
        for key, value in context.items()
        if takes_kwargs or key in accepted
    }
    try:
        return entry.factory(**params, **passed_context)
    except TypeError as error:
        # A factory signature mismatch is a spec problem (unknown or
        # missing parameter), not a bug — report it as configuration.
        detail = re.sub(r"^\w+\(\)\s*", "", str(error))
        raise ConfigurationError(
            f"bad parameters for {category} kind {spec.kind!r}: {detail} "
            f"(example params: {entry.example!r})"
        ) from None


def validate_kind(category: str, kind: str, *, context: str = "") -> None:
    """Raise :class:`ConfigurationError` unless ``kind`` is registered.

    The one kind-name validator every front door shares — serve
    schemas, the scenario CLI, and the ``repro check`` spec-lint pass
    all call this, so a typo'd kind produces the same message (and the
    same close-match hint) everywhere.  ``context`` prefixes the
    message with where the kind appeared (e.g. ``"scenario 'fft'"``).
    """
    _check_category(category)
    if kind in _REGISTRY[category]:
        return
    import difflib

    known = sorted(_REGISTRY[category])
    close = difflib.get_close_matches(kind, known, n=2)
    hint = f"; did you mean {', '.join(repr(k) for k in close)}?" if close else ""
    prefix = f"{context}: " if context else ""
    raise ConfigurationError(
        f"{prefix}unknown {category} kind {kind!r} "
        f"(registered: {', '.join(known) or 'none'}){hint}"
    )


def spec_components(spec) -> list[tuple[str, ComponentSpec]]:
    """The ``(category, component)`` pairs a scenario spec declares."""
    components = [(MAPPING, spec.mapping), (DRIVE, spec.drive)]
    if spec.workload is not None:
        components.append((WORKLOAD, spec.workload))
    if spec.program is not None:
        components.append((PROGRAM, spec.program))
    return components


def validate_spec_kinds(spec) -> None:
    """Validate every component kind one scenario spec names."""
    context = f"scenario {spec.name!r}" if spec.name else "scenario"
    for category, component in spec_components(spec):
        validate_kind(category, component.kind, context=context)


def factory_parameters(category: str, kind: str) -> tuple[frozenset[str], frozenset[str]] | None:
    """The parameter names a kind's factory accepts and requires.

    Returns ``(accepted, required)`` name sets, or ``None`` when the
    factory takes ``**kwargs`` (every name is acceptable).  Context
    names (``address_bits``, ``register_length``) are included in
    ``accepted`` — callers that lint user-supplied params should treat
    them as reserved, since :func:`build` rejects specs that shadow
    context.
    """
    parameters = _entry(category, kind).signature().parameters
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return None
    accepted = frozenset(parameters)
    required = frozenset(
        name
        for name, parameter in parameters.items()
        if parameter.default is inspect.Parameter.empty
        and parameter.kind
        not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
    )
    return accepted, required


def _check_category(category: str) -> None:
    if category not in _REGISTRY:
        raise ConfigurationError(
            f"unknown registry category {category!r} "
            f"(known: {', '.join(CATEGORIES)})"
        )


def _entry(category: str, kind: str) -> _Entry:
    _check_category(category)
    try:
        return _REGISTRY[category][kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown {category} kind {kind!r} "
            f"(registered: {', '.join(sorted(_REGISTRY[category])) or 'none'})"
        ) from None
