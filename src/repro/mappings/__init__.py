"""Address-mapping schemes: the module-number component ``F`` of Section 2.

The package provides every scheme the paper discusses or compares against:

* conventional and field interleaving (:mod:`repro.mappings.interleaved`),
* row-rotation skewing (:mod:`repro.mappings.skewed`),
* the matched XOR linear transformation of Eq. (1)
  (:mod:`repro.mappings.linear`),
* the unmatched two-level section mapping of Eq. (2)
  (:mod:`repro.mappings.section`),
* the general GF(2) matrix class with a pseudo-random member
  (:mod:`repro.mappings.matrix`),
* per-stride dynamic scheme selection (:mod:`repro.mappings.dynamic`).
"""

from repro.mappings.base import (
    DEFAULT_ADDRESS_BITS,
    AddressMapping,
    bit_field,
    empirical_period,
    is_power_of_two,
)
from repro.mappings.dynamic import DynamicSchemeSelector
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import (
    PseudoRandomMapping,
    XorMatrixMapping,
    gf2_rank,
    parity,
)
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping

__all__ = [
    "DEFAULT_ADDRESS_BITS",
    "AddressMapping",
    "DynamicSchemeSelector",
    "FieldInterleaved",
    "LowOrderInterleaved",
    "MatchedXorMapping",
    "PseudoRandomMapping",
    "SectionXorMapping",
    "SkewedMapping",
    "XorMatrixMapping",
    "bit_field",
    "empirical_period",
    "gf2_rank",
    "is_power_of_two",
    "parity",
]
