"""Per-stride dynamic scheme selection (Harper & Linebarger 1991 baseline).

The dynamic storage schemes cited in the paper's introduction choose the
address transformation *per array* when the dominant access stride is
known: an array accessed with stride family ``x`` is stored under a
mapping whose single ordered-access conflict-free family is ``x``.  This
gives conflict-free ordered access to that one stride but to nothing else,
which is exactly the contrast the paper draws — its static scheme covers a
whole *window* of families with one mapping.

:class:`DynamicSchemeSelector` packages that baseline for the comparison
benches: :meth:`mapping_for_stride` returns the ideal per-stride mapping
(a :class:`~repro.mappings.interleaved.FieldInterleaved` with the field at
the stride's family position), and :meth:`cross_penalty_sequence` shows
what happens when a vector of a *different* family is accessed through it.
"""

from __future__ import annotations

from repro.core.families import family_of
from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping
from repro.mappings.interleaved import FieldInterleaved


class DynamicSchemeSelector:
    """Chooses an ordered-access-optimal mapping for each stride.

    Parameters
    ----------
    module_bits:
        ``m`` of the target memory.
    address_bits:
        Address-space width handed to the generated mappings.
    """

    def __init__(self, module_bits: int, address_bits: int = DEFAULT_ADDRESS_BITS):
        if module_bits < 0:
            raise ConfigurationError(f"module_bits must be >= 0, got {module_bits}")
        self.module_bits = module_bits
        self.address_bits = address_bits

    def mapping_for_stride(self, stride: int) -> AddressMapping:
        """The per-stride ideal mapping: module field at bit ``x``.

        A stride ``sigma * 2**x`` steps the field ``a[x+m-1..x]`` by the
        odd number ``sigma`` per element, so ordered access under this
        mapping visits all ``M`` modules cyclically — conflict-free for
        the chosen stride (and only for its family).
        """
        x = family_of(stride)
        if x + self.module_bits > self.address_bits:
            raise ConfigurationError(
                f"stride family {x} pushes the module field beyond the "
                f"{self.address_bits}-bit address space"
            )
        return FieldInterleaved(self.module_bits, x, self.address_bits)

    def cross_penalty_sequence(
        self, stored_for: int, accessed_with: int, start: int, length: int
    ) -> list[int]:
        """Module sequence when an array stored for one stride is read
        with another — the failure mode of dynamic schemes.

        Returns the canonical temporal distribution of the access, which
        the benches feed to the simulator to quantify the penalty.
        """
        mapping = self.mapping_for_stride(stored_for)
        return mapping.module_sequence(start, accessed_with, length)
