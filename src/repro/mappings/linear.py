"""The matched-memory XOR linear transformation of Eq. (1).

For a matched memory (``M = T = 2**t``) the paper uses the mapping

    ``b_i = a_i XOR a_{s+i}``        (s >= t,  0 <= i <= t-1)

i.e. the module number is the XOR of the low ``t`` address bits with the
``t``-bit field starting at bit ``s``.  Requesting the elements of a
vector of stride family ``x = s`` in order visits all modules cyclically,
so that family is conflict-free for any length and any base address
(Harper 1991); the paper's out-of-order scheme extends this to the whole
window ``s-N <= x <= s``.

Figure 3 of the paper shows this mapping for ``m = t = 3``, ``s = 3``; the
layout is regenerated verbatim by experiment E01.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping, bit_field


class MatchedXorMapping(AddressMapping):
    """XOR mapping ``b = a[t-1..0] XOR a[s+t-1..s]`` (Eq. 1 of the paper).

    Parameters
    ----------
    module_bits:
        ``m = t`` — the memory is matched, so the module count equals the
        memory/processor cycle ratio.
    s:
        Position of the high XOR field; must satisfy ``s >= t``.  The
        single family that is conflict-free under *ordered* access is
        ``x = s``; Section 3.3 recommends ``s = lambda - t`` so the
        out-of-order window reaches down to the odd strides.
    """

    def __init__(
        self, module_bits: int, s: int, address_bits: int = DEFAULT_ADDRESS_BITS
    ):
        super().__init__(module_bits, address_bits)
        if s < module_bits:
            raise ConfigurationError(
                f"Eq. (1) requires s >= t (s={s}, t={module_bits}); with s < t "
                "the two XOR fields overlap and the scheme degenerates"
            )
        if s + module_bits > address_bits:
            raise ConfigurationError(
                f"XOR field [{s}, {s + module_bits}) exceeds the "
                f"{address_bits}-bit address space"
            )
        self.s = s

    @property
    def t(self) -> int:
        """Alias: for a matched memory the module bits equal ``t``."""
        return self.module_bits

    def cache_token(self) -> tuple:
        return ("matched-xor", self.module_bits, self.s, self.address_bits)

    def module_of(self, address: int) -> int:
        address = self.reduce(address)
        low = bit_field(address, 0, self.module_bits)
        high = bit_field(address, self.s, self.module_bits)
        return low ^ high

    def displacement_of(self, address: int) -> int:
        """Displacement = the address without its low ``t`` bits.

        ``(module, displacement)`` is a bijection: the high field
        ``a[s+t-1..s]`` is contained in the displacement, so the low bits
        are recovered as ``module XOR a[s+t-1..s]``.
        """
        return self.reduce(address) >> self.module_bits

    def address_of(self, module: int, displacement: int) -> int:
        """Inverse mapping, used by tests to verify bijectivity."""
        high = bit_field(displacement, self.s - self.module_bits, self.module_bits)
        low = (module ^ high) & (self.module_count - 1)
        return self.reduce((displacement << self.module_bits) | low)

    def period(self, family: int) -> int:
        """``Px = max(2**(s+t-x), 1)`` (Section 3)."""
        exponent = self.s + self.module_bits - family
        return 1 << exponent if exponent > 0 else 1

    def describe(self) -> str:
        return f"MatchedXorMapping(t={self.module_bits}, s={self.s})"
