"""The unmatched-memory section mapping of Eq. (2).

For an unmatched memory with ``M = T**2`` modules (``m = 2t``) Section 4.1
of the paper divides the modules into ``T`` *sections* of ``T`` modules and
the address space into blocks of ``2**y`` words, mapping each block onto
one section.  The module number ``b`` has two fields:

    ``b_i = a_i XOR a_{s+i}``   for ``0 <= i <= t-1``   (s >= t)
    ``b_i = a_{y+i-t}``         for ``t <= i <= 2t-1``  (y >= s+t)

The low field selects the module *within* a section exactly like the
matched mapping of Eq. (1); the high field (``a[y+t-1..y]``) selects the
section.  A *supermodule* (Section 4.2) collects the i-th module of every
section; its number is determined by the address bits ``a[s+t-1..s]``.

Figure 7 of the paper shows this mapping for ``t=2, m=4, s=3, y=7``; it is
regenerated verbatim by experiment E05.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping, bit_field


class SectionXorMapping(AddressMapping):
    """Two-level XOR mapping for unmatched memories (Eq. 2, ``m = 2t``).

    Parameters
    ----------
    t:
        ``T = 2**t`` is the memory/processor cycle ratio; the memory has
        ``M = 2**(2t)`` modules arranged as ``T`` sections of ``T``.
    s:
        Low XOR field position, ``s >= t`` (same role as in Eq. 1).
    y:
        Section field position, ``y >= s + t``.  Section 4.3 recommends
        ``s = lambda - t`` and ``y = 2(lambda - t) + 1``, which yields the
        conflict-free window ``0 <= x <= 2(lambda - t) + 1``.
    """

    def __init__(
        self, t: int, s: int, y: int, address_bits: int = DEFAULT_ADDRESS_BITS
    ):
        super().__init__(2 * t, address_bits)
        if t < 1:
            raise ConfigurationError(f"t must be >= 1 for a sectioned memory, got {t}")
        if s < t:
            raise ConfigurationError(f"Eq. (2) requires s >= t (s={s}, t={t})")
        if y < s + t:
            raise ConfigurationError(
                f"Eq. (2) requires y >= s + t (y={y}, s={s}, t={t}); otherwise "
                "the section field overlaps the low XOR field"
            )
        if y + t > address_bits:
            raise ConfigurationError(
                f"section field [{y}, {y + t}) exceeds the "
                f"{address_bits}-bit address space"
            )
        self.t = t
        self.s = s
        self.y = y

    def cache_token(self) -> tuple:
        return ("section-xor", self.t, self.s, self.y, self.address_bits)

    @property
    def section_count(self) -> int:
        """Number of sections, ``T = 2**t``."""
        return 1 << self.t

    @property
    def modules_per_section(self) -> int:
        """Modules in each section, also ``T = 2**t``."""
        return 1 << self.t

    def module_of(self, address: int) -> int:
        address = self.reduce(address)
        low = bit_field(address, 0, self.t) ^ bit_field(address, self.s, self.t)
        high = bit_field(address, self.y, self.t)
        return (high << self.t) | low

    def section_of(self, address: int) -> int:
        """Section number = high module field = ``a[y+t-1..y]``."""
        return bit_field(self.reduce(address), self.y, self.t)

    def module_within_section(self, address: int) -> int:
        """Low module field ``b[t-1..0]``."""
        return self.module_of(address) & (self.modules_per_section - 1)

    def supermodule_of(self, address: int) -> int:
        """Supermodule number = address bits ``a[s+t-1..s]`` (Section 4.2).

        Inside one Lemma-2 subsequence the low ``t`` address bits are
        constant, so ordering requests by this field is equivalent to
        ordering by the within-section module number.
        """
        return bit_field(self.reduce(address), self.s, self.t)

    def displacement_of(self, address: int) -> int:
        """Bits of the address not consumed by the module number.

        Removes ``a[t-1..0]`` (recoverable from the low module field and
        ``a[s+t-1..s]``) and ``a[y+t-1..y]`` (the section field), then
        concatenates the remaining fields.  Together with
        :meth:`module_of` this is a bijection of the address space.
        """
        address = self.reduce(address)
        middle = bit_field(address, self.t, self.y - self.t)
        high = address >> (self.y + self.t)
        return (high << (self.y - self.t)) | middle

    def address_of(self, module: int, displacement: int) -> int:
        """Inverse mapping, used by tests to verify bijectivity."""
        middle = bit_field(displacement, 0, self.y - self.t)
        high = displacement >> (self.y - self.t)
        section = (module >> self.t) & (self.section_count - 1)
        partial = (high << (self.y + self.t)) | (section << self.y) | (middle << self.t)
        low = (module ^ bit_field(partial, self.s, self.t)) & (
            self.modules_per_section - 1
        )
        return self.reduce(partial | low)

    def period(self, family: int) -> int:
        """``Px = max(2**(y+t-x), 1)`` (Section 4.1)."""
        exponent = self.y + self.t - family
        return 1 << exponent if exponent > 0 else 1

    def inner_period(self, family: int) -> int:
        """Period of the *within-section* module field, ``max(2**(s+t-x), 1)``.

        This is the chunk size used by the Lemma-2 reordering when the
        stride family falls in the low window ``s-N <= x <= s``.
        """
        exponent = self.s + self.t - family
        return 1 << exponent if exponent > 0 else 1

    def describe(self) -> str:
        return f"SectionXorMapping(t={self.t}, s={self.s}, y={self.y})"
