"""General boolean-matrix (XOR) address mappings over GF(2).

Norton & Melton (1987) characterised the class of linear transformations
``b = H . a`` over GF(2) that give conflict-free power-of-two-stride
access; Rau (1991) used pseudo-random members of the class to spread
arbitrary strides.  This module implements the general class:

* :class:`XorMatrixMapping` — each module bit is the XOR (parity) of an
  arbitrary subset of address bits, given as a bit mask per module bit.
* :func:`gf2_rank` — rank of a set of masks over GF(2), used to check that
  a mapping actually spreads addresses over all modules.
* :class:`PseudoRandomMapping` — a seeded random full-rank member of the
  class, the Rau-style baseline used in the comparison benches.

Both Eq. (1) and Eq. (2) of the paper are members of this class; the
``from_matched``/``from_section`` constructors build them explicitly and
the test-suite checks they agree with the dedicated implementations.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping


def parity(value: int) -> int:
    """Parity (XOR of all bits) of a non-negative integer."""
    return bin(value).count("1") & 1


def gf2_rank(masks: list[int]) -> int:
    """Rank over GF(2) of the row vectors encoded as integer bit masks."""
    rank = 0
    rows = list(masks)
    while rows:
        pivot = max(rows)
        rows.remove(pivot)
        if pivot == 0:
            continue
        rank += 1
        high_bit = pivot.bit_length() - 1
        rows = [row ^ pivot if row >> high_bit & 1 else row for row in rows]
    return rank


class XorMatrixMapping(AddressMapping):
    """Module bit ``i`` = parity of ``address AND masks[i]``.

    Parameters
    ----------
    masks:
        One bit mask per module bit, least-significant module bit first.
        The rows must be linearly independent over GF(2) so that every
        module number is reachable (otherwise some modules would never be
        used and the memory could not be matched).
    """

    def __init__(self, masks: list[int], address_bits: int = DEFAULT_ADDRESS_BITS):
        super().__init__(len(masks), address_bits)
        space = 1 << address_bits
        for i, mask in enumerate(masks):
            if not 0 <= mask < space:
                raise ConfigurationError(
                    f"mask {i} (={mask:#x}) does not fit in {address_bits} bits"
                )
        if gf2_rank(masks) != len(masks):
            raise ConfigurationError(
                "mask rows are linearly dependent over GF(2); some modules "
                "would be unreachable"
            )
        self.masks = list(masks)

    def cache_token(self) -> tuple:
        # The mask rows fully determine ``module_of``, so the token is
        # exact even for the seeded random subclass.
        return ("xor-matrix", tuple(self.masks), self.address_bits)

    @classmethod
    def from_matched(
        cls, t: int, s: int, address_bits: int = DEFAULT_ADDRESS_BITS
    ) -> "XorMatrixMapping":
        """The Eq. (1) matched mapping as an explicit matrix."""
        masks = [(1 << i) | (1 << (s + i)) for i in range(t)]
        return cls(masks, address_bits)

    @classmethod
    def from_section(
        cls, t: int, s: int, y: int, address_bits: int = DEFAULT_ADDRESS_BITS
    ) -> "XorMatrixMapping":
        """The Eq. (2) section mapping as an explicit matrix."""
        low = [(1 << i) | (1 << (s + i)) for i in range(t)]
        high = [1 << (y + i) for i in range(t)]
        return cls(low + high, address_bits)

    def module_of(self, address: int) -> int:
        address = self.reduce(address)
        module = 0
        for i, mask in enumerate(self.masks):
            module |= parity(address & mask) << i
        return module

    def displacement_of(self, address: int) -> int:
        """Displacement = address with the matrix's pivot bits removed.

        Gaussian elimination (cached) identifies one pivot address bit per
        module bit; deleting those bits from the address yields a value
        that, together with the module number, reconstructs the address —
        hence a bijection.
        """
        address = self.reduce(address)
        pivots = self._pivot_bits()
        out = 0
        out_pos = 0
        for bit in range(self.address_bits):
            if bit in pivots:
                continue
            out |= ((address >> bit) & 1) << out_pos
            out_pos += 1
        return out

    def _pivot_bits(self) -> frozenset[int]:
        """One pivot address-bit column per mask row (cached)."""
        cached = getattr(self, "_pivot_cache", None)
        if cached is not None:
            return cached
        rows = list(self.masks)
        pivots: set[int] = set()
        for _ in range(len(rows)):
            candidates = [r for r in rows if r != 0]
            if not candidates:
                break
            row = max(candidates)
            rows.remove(row)
            high_bit = row.bit_length() - 1
            pivots.add(high_bit)
            rows = [r ^ row if (r >> high_bit) & 1 else r for r in rows]
        self._pivot_cache = frozenset(pivots)
        return self._pivot_cache

    def describe(self) -> str:
        return f"XorMatrixMapping(m={self.module_bits}, masks={self.masks})"


class PseudoRandomMapping(XorMatrixMapping):
    """A seeded random full-rank XOR mapping (Rau-1991-style baseline).

    Each module bit is the parity of a random subset of the low
    ``window_bits`` address bits, re-drawn until the rows are independent.
    Used by the comparison benches to show how a stride-insensitive
    spreading scheme trades worst-case behaviour for average behaviour.
    """

    def __init__(
        self,
        module_bits: int,
        window_bits: int = 16,
        seed: int = 0,
        address_bits: int = DEFAULT_ADDRESS_BITS,
    ):
        if window_bits < module_bits or window_bits > address_bits:
            raise ConfigurationError(
                f"window_bits must lie in [module_bits, address_bits], got "
                f"{window_bits}"
            )
        rng = random.Random(seed)
        masks: list[int] = []
        attempts = 0
        while True:
            masks = [rng.randrange(1, 1 << window_bits) for _ in range(module_bits)]
            if gf2_rank(masks) == module_bits:
                break
            attempts += 1
            if attempts > 1000:  # pragma: no cover - astronomically unlikely
                raise ConfigurationError("could not draw a full-rank matrix")
        super().__init__(masks, address_bits)
        self.seed = seed
        self.window_bits = window_bits

    def describe(self) -> str:
        return (
            f"PseudoRandomMapping(m={self.module_bits}, "
            f"window={self.window_bits}, seed={self.seed})"
        )
