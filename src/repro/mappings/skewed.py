"""Row-rotation skewing schemes.

Skewing predates the XOR schemes (Budnik & Kuck 1971, Lawrie 1975): the
address space is viewed as rows of ``2**c`` consecutive words and row ``r``
is rotated by ``r * d`` module positions.  The module number is

    ``b = (a + d * (a >> c)) mod M``

The paper's conclusions note that all its results can be achieved with
skewing by "selecting in a suitable manner ... the number of rows to
rotate": with ``c = s`` and odd ``d`` the family ``x = s`` is conflict-free
for ordered access, exactly like Eq. (1), and the out-of-order window of
Theorem 1 applies unchanged (the planner in :mod:`repro.core.planner` is
mapping-agnostic and verified against this scheme in the tests).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping


class SkewedMapping(AddressMapping):
    """Module = ``(a + d * (a >> s)) mod M`` — rotate each row of ``2**s``.

    Parameters
    ----------
    module_bits:
        ``m``; the memory has ``M = 2**m`` modules.
    s:
        Row size is ``2**s`` words; rows are rotated cumulatively.
    distance:
        Rotation distance ``d`` per row; must be odd so that stepping a
        stride of family ``x = s`` cycles through all modules.
    """

    def __init__(
        self,
        module_bits: int,
        s: int,
        distance: int = 1,
        address_bits: int = DEFAULT_ADDRESS_BITS,
    ):
        super().__init__(module_bits, address_bits)
        if s < module_bits:
            raise ConfigurationError(
                f"row exponent s must be >= m for an invertible skew "
                f"(s={s}, m={module_bits}); smaller rows make two addresses "
                "share one (module, displacement) cell"
            )
        if distance % 2 == 0:
            raise ConfigurationError(
                f"rotation distance must be odd for conflict-free family x=s, "
                f"got {distance}"
            )
        self.s = s
        self.distance = distance

    def cache_token(self) -> tuple:
        return (
            "skewed", self.module_bits, self.s, self.distance,
            self.address_bits,
        )

    def module_of(self, address: int) -> int:
        address = self.reduce(address)
        return (address + self.distance * (address >> self.s)) & (
            self.module_count - 1
        )

    def displacement_of(self, address: int) -> int:
        """Displacement = the row number, ``a >> s`` combined with the
        within-row position above the module bits.

        For ``s >= m`` the pair ``(module, a >> m)`` is already a
        bijection; we use ``a >> m`` uniformly, which is bijective because
        the module number determines the low ``m`` bits once ``a >> m``
        (hence the rotation offset) is known.
        """
        return self.reduce(address) >> self.module_bits

    def period(self, family: int) -> int:
        """``Px = max(2**(s+m-x), 1)``.

        The module number depends only on ``a mod 2**(s+m)`` (the low bits
        directly and the row number modulo ``2**m``), and that residue
        cycles with period ``2**(s+m-x)`` for stride family ``x``.
        """
        exponent = self.s + self.module_bits - family
        return 1 << exponent if exponent > 0 else 1

    def describe(self) -> str:
        return (
            f"SkewedMapping(m={self.module_bits}, s={self.s}, d={self.distance})"
        )
