"""Abstract interface for memory-module address mappings.

The memory of the paper's machine is organised as ``M = 2**m`` modules.  An
*address mapping* transforms a one-dimensional address ``A`` into the
two-dimensional space ``(module, displacement)``.  Conflicts depend only on
the module-number component ``F`` (Section 2 of the paper), so that
component is the centre of this interface; the displacement component is
provided so the mapping is a real bijection and memory contents can be
stored and retrieved in simulations.

All mappings operate on an address space of ``2**address_bits`` words and
treat addresses modulo that size, which mirrors the fixed-width address
registers of the hardware in Figures 5 and 6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

#: Default width of the machine address registers, in bits.
DEFAULT_ADDRESS_BITS = 32


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_field(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    ``bit_field(0b110100, 2, 3)`` is ``0b101``.
    """
    if low < 0 or width < 0:
        raise ValueError("bit_field requires non-negative low and width")
    return (value >> low) & ((1 << width) - 1)


class AddressMapping(ABC):
    """Module-number component ``F`` of an address mapping.

    Parameters
    ----------
    module_bits:
        ``m`` such that the memory has ``M = 2**m`` modules.
    address_bits:
        Width of the address space; addresses are reduced modulo
        ``2**address_bits`` before mapping.
    """

    def __init__(self, module_bits: int, address_bits: int = DEFAULT_ADDRESS_BITS):
        if module_bits < 0:
            raise ConfigurationError(f"module_bits must be >= 0, got {module_bits}")
        if address_bits < module_bits or address_bits <= 0:
            raise ConfigurationError(
                f"address_bits ({address_bits}) must be positive and at least "
                f"module_bits ({module_bits})"
            )
        self.module_bits = module_bits
        self.address_bits = address_bits

    @property
    def module_count(self) -> int:
        """Number of memory modules ``M = 2**m``."""
        return 1 << self.module_bits

    @property
    def address_space(self) -> int:
        """Size of the address space, ``2**address_bits``."""
        return 1 << self.address_bits

    def reduce(self, address: int) -> int:
        """Wrap ``address`` into the machine's address space."""
        return address & (self.address_space - 1)

    @abstractmethod
    def module_of(self, address: int) -> int:
        """Return the module number ``b = F(A)`` for ``address``."""

    @abstractmethod
    def displacement_of(self, address: int) -> int:
        """Return the displacement (row inside the module) for ``address``.

        Together with :meth:`module_of` this must form a bijection of the
        address space onto ``module x displacement``.
        """

    def map(self, address: int) -> tuple[int, int]:
        """Return the pair ``(module, displacement)`` for ``address``."""
        return self.module_of(address), self.displacement_of(address)

    def period(self, family: int) -> int:
        """Period ``Px`` of the canonical temporal distribution.

        ``family`` is the exponent ``x`` of a stride ``sigma * 2**x`` with
        ``sigma`` odd.  The base implementation measures the period
        empirically via :func:`empirical_period`; analytic subclasses
        override it with the paper's closed forms.
        """
        return empirical_period(self, stride=1 << family, start=0)

    def module_sequence(self, start: int, stride: int, length: int) -> list[int]:
        """Module numbers of ``length`` elements from ``start`` by ``stride``.

        This is the canonical temporal distribution of the vector
        ``(start, stride, length)`` under this mapping.
        """
        start = self.reduce(start)
        return [
            self.module_of(self.reduce(start + i * stride)) for i in range(length)
        ]

    def cache_token(self) -> tuple | None:
        """Hashable identity of this mapping's address function, or None.

        Two mappings of the same concrete type whose tokens compare
        equal must map every address identically — that is the contract
        the :mod:`repro.core.planner` plan cache keys on (it always
        pairs the token with ``type(self)``, so a subclass that changes
        ``module_of`` without overriding the token still gets its own
        cache entries).  The base implementation returns ``None``:
        mappings without a declared identity are never cached.
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description of the mapping."""
        return f"{type(self).__name__}(m={self.module_bits})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def empirical_period(
    mapping: AddressMapping, stride: int, start: int = 0, limit: int | None = None
) -> int:
    """Measure the period of the module sequence ``F(start + i*stride)``.

    The period is the smallest ``p > 0`` such that the module of element
    ``i + p`` equals the module of element ``i`` for every ``i``.  For the
    XOR-based mappings in this package the sequence is strictly periodic
    and the period divides ``2**address_bits / gcd(stride, 2**address_bits)``,
    so the search below always terminates.

    Parameters
    ----------
    limit:
        Upper bound for the search; defaults to the address-space size
        divided by the power-of-two part of the stride, which is an exact
        bound for linear mappings.
    """
    from math import gcd

    space = mapping.address_space
    if limit is None:
        limit = space // gcd(stride % space or space, space)
        limit = max(limit, 1)
    # A candidate period must make the whole orbit repeat; for the affine
    # sequence A + i*S the module sequence repeats with period p iff
    # F(A + (i+p)S) == F(A + iS) for all i in one candidate span.
    candidates = [p for p in _divisors_pow2(limit)]
    sample = mapping.module_sequence(start, stride, min(4 * limit, 4096))
    for p in candidates:
        if p >= len(sample):
            break
        if all(sample[i] == sample[i % p] for i in range(len(sample))):
            return p
    return limit


def _divisors_pow2(limit: int) -> list[int]:
    """Powers of two up to and including ``limit`` (itself a power of two)."""
    out = []
    p = 1
    while p <= limit:
        out.append(p)
        p <<= 1
    return out
