"""Interleaved address mappings.

Two classical schemes:

* :class:`LowOrderInterleaved` — the conventional arrangement where the low
  ``m`` address bits select the module.  Conflict-free for odd strides
  (family ``x = 0``) on a matched memory, which is the ordered-access
  baseline the paper quotes an efficiency of 0.4 for (Section 5-B).

* :class:`FieldInterleaved` — "using an internal field of the address as
  module number" (Section 1): bits ``s .. s+m-1`` select the module.  This
  shifts the single conflict-free family to ``x = s`` and has the same
  period structure as the XOR mapping, so the paper's out-of-order scheme
  applies to it as well.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mappings.base import DEFAULT_ADDRESS_BITS, AddressMapping, bit_field


class LowOrderInterleaved(AddressMapping):
    """Module = low-order ``m`` bits of the address."""

    def __init__(self, module_bits: int, address_bits: int = DEFAULT_ADDRESS_BITS):
        super().__init__(module_bits, address_bits)

    def cache_token(self) -> tuple:
        return ("low-order", self.module_bits, self.address_bits)

    def module_of(self, address: int) -> int:
        return self.reduce(address) & (self.module_count - 1)

    def displacement_of(self, address: int) -> int:
        return self.reduce(address) >> self.module_bits

    def period(self, family: int) -> int:
        """``Px = max(2**(m-x), 1)``: the low bits cycle every ``2**(m-x)``."""
        return max(1 << (self.module_bits - family), 1) if family < self.module_bits else 1

    def describe(self) -> str:
        return f"LowOrderInterleaved(m={self.module_bits})"


class FieldInterleaved(AddressMapping):
    """Module = address bits ``s .. s+m-1``.

    The element sequence of a stride ``sigma * 2**s`` steps this field by
    ``sigma`` per element (the low ``s`` bits never change when a multiple
    of ``2**s`` is added), so family ``x = s`` is conflict-free for ordered
    access, mirroring the matched XOR mapping of Eq. (1).
    """

    def __init__(
        self, module_bits: int, s: int, address_bits: int = DEFAULT_ADDRESS_BITS
    ):
        super().__init__(module_bits, address_bits)
        if s < 0:
            raise ConfigurationError(f"field position s must be >= 0, got {s}")
        if s + module_bits > address_bits:
            raise ConfigurationError(
                f"module field [{s}, {s + module_bits}) exceeds the "
                f"{address_bits}-bit address space"
            )
        self.s = s

    def cache_token(self) -> tuple:
        return ("field", self.module_bits, self.s, self.address_bits)

    def module_of(self, address: int) -> int:
        return bit_field(self.reduce(address), self.s, self.module_bits)

    def displacement_of(self, address: int) -> int:
        # Remove the module field: keep bits below s and bits above s+m,
        # concatenated.  This is a bijection between the address space and
        # (module, displacement).
        address = self.reduce(address)
        low = bit_field(address, 0, self.s)
        high = address >> (self.s + self.module_bits)
        return (high << self.s) | low

    def period(self, family: int) -> int:
        """``Px = max(2**(s+m-x), 1)`` — the field cycles like a counter."""
        exponent = self.s + self.module_bits - family
        return 1 << exponent if exponent > 0 else 1

    def describe(self) -> str:
        return f"FieldInterleaved(m={self.module_bits}, s={self.s})"
