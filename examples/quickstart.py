#!/usr/bin/env python3
"""Quickstart: conflict-free out-of-order access of one strided vector.

Reproduces the paper's running example in a dozen lines: a matched
memory with M = T = 8 modules (t = 3), the Eq. (1) XOR mapping with
s = 4, and a 128-element vector of stride 12 (family x = 2).  Ordered
access conflicts; the Section 3.2 reordering runs at the minimum
latency T + L + 1 = 137 cycles.

Run:  python examples/quickstart.py
"""

from repro import AccessPlanner, MatchedDesign, VectorAccess
from repro.memory import MemoryConfig, MemorySystem, describe_result, render_timeline


def main() -> None:
    # 1. Pick the paper's recommended design for L = 128, T = 8.
    design = MatchedDesign.recommended(lambda_exponent=7, t=3)
    print(f"design: M = {design.module_count} modules, s = {design.s}, "
          f"conflict-free stride families {design.window()}")

    # 2. Build the memory system and the access planner.
    config = MemoryConfig.matched(t=design.t, s=design.s)
    planner = AccessPlanner(config.mapping, config.t)
    system = MemorySystem(config)

    # 3. A stride-12 vector (sigma = 3, family x = 2), any base address.
    vector = VectorAccess(base=16, stride=12, length=128)
    print(f"\naccess: {vector} — stride family x = {vector.family}")

    # 4. Ordered access conflicts...
    ordered = planner.plan(vector, mode="ordered")
    ordered_run = system.run_plan(ordered)
    print(f"ordered:       {describe_result(ordered_run, config.service_ratio)}")

    # 5. ...the paper's out-of-order access does not.
    reordered = planner.plan(vector, mode="auto")
    reordered_run = system.run_plan(reordered)
    print(f"out-of-order:  {describe_result(reordered_run, config.service_ratio)}")

    # 6. Show the first cycles of the conflict-free access: every module
    #    busy back to back, one result per cycle.
    print("\nmodule timeline (first 60 cycles, glyph = element index mod 10):")
    print(render_timeline(reordered_run, config.module_count, max_cycles=60))


if __name__ == "__main__":
    main()
