#!/usr/bin/env python3
"""Strided DAXPY on the full decoupled vector machine (Figure 1).

Computes ``y = alpha * x + y`` over 1000 elements where ``x`` is a
stride-12 vector (family 2 — conflicting under ordered access) and ``y``
is contiguous.  The compiler strip-mines into 128-element register
strips (Section 1); the machine is run three ways:

* ordered access (baseline memory unit),
* out-of-order conflict-free access (the paper's scheme),
* out-of-order access plus LOAD->EXECUTE chaining (Section 5-F).

Numerical results are identical; the cycle counts show where the memory
system's behaviour goes.

Run:  python examples/daxpy_machine.py
"""

from repro.memory import MemoryConfig
from repro.processor import DecoupledVectorMachine, daxpy_program

N = 1000
ALPHA = 2.5
X_BASE, X_STRIDE = 0, 12
Y_BASE, Y_STRIDE = 1 << 20, 1
REGISTER_LENGTH = 128


def run_variant(name: str, plan_mode: str, chaining: bool) -> None:
    machine = DecoupledVectorMachine(
        MemoryConfig.matched(t=3, s=4, input_capacity=2),
        register_length=REGISTER_LENGTH,
        chaining=chaining,
        plan_mode=plan_mode,
    )
    xs = [0.25 * i for i in range(N)]
    ys = [100.0 - 0.5 * i for i in range(N)]
    machine.store.write_vector(X_BASE, X_STRIDE, xs)
    machine.store.write_vector(Y_BASE, Y_STRIDE, ys)

    program = daxpy_program(
        N, REGISTER_LENGTH, ALPHA, X_BASE, X_STRIDE, Y_BASE, Y_STRIDE
    )
    result = machine.run(program)

    out = machine.store.read_vector(Y_BASE, Y_STRIDE, N)
    expected = [ALPHA * x + y for x, y in zip(xs, ys)]
    correct = all(abs(a - b) < 1e-9 for a, b in zip(out, expected))

    loads = [t for t in result.timings if t.mnemonic == "LOAD"]
    conflict_free = sum(1 for t in loads if t.conflict_free)
    print(
        f"{name:28s} {result.total_cycles:6d} cycles   "
        f"loads CF {conflict_free}/{len(loads)}   "
        f"chained ops {result.chained_count()}   "
        f"values {'OK' if correct else 'WRONG'}"
    )


def main() -> None:
    print(f"DAXPY: y = {ALPHA} * x + y, n = {N}, "
          f"x stride {X_STRIDE} (family 2), strip length {REGISTER_LENGTH}\n")
    run_variant("ordered access", "ordered", chaining=False)
    run_variant("out-of-order (paper)", "auto", chaining=False)
    run_variant("out-of-order + chaining", "auto", chaining=True)
    print(
        "\nThe out-of-order scheme removes the per-period conflict stalls "
        "of ordered\naccess; chaining then overlaps each arithmetic "
        "instruction with the load\nfeeding it (possible only because the "
        "conflict-free order is deterministic)."
    )


if __name__ == "__main__":
    main()
