#!/usr/bin/env python3
"""Stride survey: which design serves which strides conflict-free?

Sweeps every stride 1..40 plus the strides a realistic dense-kernel mix
generates, over three memory designs:

* conventional low-order interleaving, ordered access (the baseline);
* the paper's matched design (M = T = 8, Eq. 1, out-of-order);
* the paper's unmatched design (M = 64, Eq. 2, out-of-order).

Prints per-stride latency and the population efficiency of each design —
the Section 5-B comparison played out on concrete strides.

Run:  python examples/stride_survey.py
"""

from repro import AccessPlanner, VectorAccess
from repro.mappings import LowOrderInterleaved
from repro.memory import MemoryConfig, MemorySystem, summarise_population
from repro.report import render_table
from repro.workloads import realistic_stride_population

LENGTH = 128


def build_designs():
    """(name, planner, system) for the three competing designs."""
    designs = []

    conventional = MemoryConfig(LowOrderInterleaved(3), 3, input_capacity=4)
    designs.append(
        (
            "interleaved+ordered",
            AccessPlanner(conventional.mapping, 3),
            MemorySystem(conventional),
            "ordered",
        )
    )

    matched = MemoryConfig.matched(t=3, s=4)
    designs.append(
        (
            "matched M=8 (paper)",
            AccessPlanner(matched.mapping, 3),
            MemorySystem(matched),
            "auto",
        )
    )

    unmatched = MemoryConfig.unmatched(t=3, s=4, y=9)
    designs.append(
        (
            "unmatched M=64 (paper)",
            AccessPlanner(unmatched.mapping, 3),
            MemorySystem(unmatched),
            "auto",
        )
    )
    return designs


def survey_small_strides(designs) -> None:
    print(f"latency of a {LENGTH}-element access per stride "
          f"(minimum = {8 + LENGTH + 1}):\n")
    rows = []
    for stride in range(1, 41):
        vector = VectorAccess(1000, stride, LENGTH)
        row = [stride, vector.family]
        for _name, planner, system, mode in designs:
            run = system.run_plan(planner.plan(vector, mode=mode))
            row.append(run.latency)
        rows.append(row)
    headers = ["stride", "family"] + [name for name, *_ in designs]
    print(render_table(headers, rows))


def survey_realistic_mix(designs) -> None:
    print("\nrealistic kernel strides (500x500 row-major matrix):\n")
    rows = []
    population = realistic_stride_population(matrix_dimension=500)
    for item in population:
        vector = VectorAccess(4096, item.stride, LENGTH)
        row = [item.source, item.stride, item.family]
        for _name, planner, system, mode in designs:
            run = system.run_plan(planner.plan(vector, mode=mode))
            row.append("yes" if run.conflict_free else f"{run.latency}cy")
        rows.append(row)
    headers = ["pattern", "stride", "family"] + [
        name for name, *_ in designs
    ]
    print(render_table(headers, rows))

    print("\npopulation efficiency (elements per issue cycle):")
    for name, planner, system, mode in designs:
        results = [
            system.run_plan(
                planner.plan(VectorAccess(4096, item.stride, LENGTH), mode=mode)
            )
            for item in population
        ]
        summary = summarise_population(results, 8)
        print(
            f"  {name:24s} efficiency={summary.efficiency:.3f} "
            f"conflict-free {summary.conflict_free_accesses}/"
            f"{summary.accesses} accesses"
        )


def main() -> None:
    designs = build_designs()
    survey_small_strides(designs)
    survey_realistic_mix(designs)


if __name__ == "__main__":
    main()
