#!/usr/bin/env python3
"""FFT butterfly access patterns: the power-of-two stride stress test.

Every radix-2 FFT stage reads vectors whose stride is a power of two —
the exact family structure the paper's window is built for.  This
example sweeps all stages of a 1024-point FFT on the matched (M = 8) and
unmatched (M = 64) designs and shows:

* early stages (long vectors, small stride families) run conflict-free
  on both designs;
* middle stages need the unmatched design's wider window;
* late stages have vectors shorter than a reorder chunk and fall back to
  ordered access — the fixed-length trade-off of Section 5-H.

Run:  python examples/fft_access.py
"""

from repro import AccessPlanner
from repro.memory import MemoryConfig, MemorySystem
from repro.report import render_table
from repro.workloads import fft_butterfly_accesses

N = 1 << 10


def main() -> None:
    matched_config = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    unmatched_config = MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)
    designs = [
        ("matched M=8", AccessPlanner(matched_config.mapping, 3),
         MemorySystem(matched_config)),
        ("unmatched M=64", AccessPlanner(unmatched_config.mapping, 3),
         MemorySystem(unmatched_config)),
    ]

    print(f"{N}-point radix-2 FFT, one representative access per stage\n")
    rows = []
    for stage in range(N.bit_length() - 1):
        access = fft_butterfly_accesses(N, stage)[0]
        minimum = 8 + access.length + 1
        row = [stage, access.stride, access.family, access.length, minimum]
        for _name, planner, system in designs:
            plan = planner.plan(access, mode="auto")
            run = system.run_plan(plan)
            marker = "" if run.conflict_free else " *"
            row.append(f"{run.latency}{marker}")
        rows.append(row)

    headers = ["stage", "stride", "family", "length", "min"] + [
        name for name, *_ in designs
    ]
    print(render_table(headers, rows))
    print(
        "\n* = not conflict-free.  The matched window covers families "
        "0..4; the\nunmatched window covers 0..9 — but stages whose "
        "vectors are shorter than one\nreorder chunk (length < "
        "2**(w+t-x)) fall back to ordered access, matching\nthe paper's "
        "observation that the scheme targets register-length vectors."
    )


if __name__ == "__main__":
    main()
