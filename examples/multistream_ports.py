#!/usr/bin/env python3
"""Several vectors sharing the memory: the paper's Section 6 outlook.

The paper closes by deferring "several vectors accessed simultaneously"
to future work.  This example quantifies why that is a separate problem
and what resources fix it:

1. two individually conflict-free streams through ONE address bus
   interleave and shear each other's module timing (conflicts reappear);
2. a second PORT restores throughput only on the module-rich unmatched
   memory, and only for streams whose module footprints are disjoint —
   bandwidth must exist in the modules, not just the buses.

Run:  python examples/multistream_ports.py
"""

from repro import AccessPlanner, VectorAccess
from repro.memory import (
    MemoryConfig,
    MemorySystem,
    MultiPortMemorySystem,
    MultiStreamMemorySystem,
)
from repro.report import bar_chart

LENGTH = 64


def main() -> None:
    matched = MemoryConfig.matched(t=3, s=4, input_capacity=2)
    unmatched = MemoryConfig.unmatched(t=3, s=4, y=9, input_capacity=2)
    matched_planner = AccessPlanner(matched.mapping, 3)
    unmatched_planner = AccessPlanner(unmatched.mapping, 3)

    def stream_pair(planner):
        # Two stride-16 vectors; bases one 2**y block apart so they sit
        # in different sections of the unmatched memory.
        return [
            planner.plan(VectorAccess(0, 16, LENGTH)).request_stream(),
            planner.plan(VectorAccess(1 << 9, 16, LENGTH)).request_stream(),
        ]

    solo = MemorySystem(unmatched).run_plan(
        unmatched_planner.plan(VectorAccess(0, 16, LENGTH))
    )
    print(
        f"one stream alone: {solo.latency} cycles "
        f"(minimum {8 + LENGTH + 1}, conflict-free={solo.conflict_free})\n"
    )

    scenarios = [
        (
            "matched M=8, shared bus",
            MultiStreamMemorySystem(matched).run_streams(
                stream_pair(matched_planner)
            ),
        ),
        (
            "unmatched M=64, shared bus",
            MultiStreamMemorySystem(unmatched).run_streams(
                stream_pair(unmatched_planner)
            ),
        ),
        (
            "matched M=8, two ports",
            MultiPortMemorySystem(matched, 2).run_streams(
                stream_pair(matched_planner)
            ),
        ),
        (
            "unmatched M=64, two ports",
            MultiPortMemorySystem(unmatched, 2).run_streams(
                stream_pair(unmatched_planner)
            ),
        ),
    ]

    print(f"two {LENGTH}-element stride-16 streams, total elapsed cycles:\n")
    labels = [name for name, _ in scenarios]
    totals = [float(result.total_cycles) for _, result in scenarios]
    print(bar_chart(labels, totals, width=44, unit=" cycles"))

    print("\nper-scenario detail:")
    for name, result in scenarios:
        waits = sum(stream.wait_count for stream in result.streams)
        print(
            f"  {name:28s} total={result.total_cycles:4d}  "
            f"module-waits={waits:3d}  "
            f"bus-util={result.bus_utilisation:.2f}"
        )
    print(
        "\nOnly the module-rich memory converts a second port into halved\n"
        "elapsed time; on the matched memory the eight modules remain the\n"
        "bottleneck — exactly the trade-off Section 5-E prices."
    )


if __name__ == "__main__":
    main()
