#!/usr/bin/env python3
"""Matrix access patterns: rows, columns, diagonals and blocked transpose.

The introduction's motivating workloads.  For a row-major 128x64 matrix
(leading dimension 64 — a power of two, the worst case for conventional
interleaving) this example compares access latencies on:

* conventional interleaving with ordered access, and
* the paper's unmatched design with out-of-order access,

then runs a real element-wise column scaling on the decoupled machine to
show data correctness rides along with the latency win.

Run:  python examples/matrix_kernels.py
"""

from repro import AccessPlanner
from repro.mappings import LowOrderInterleaved
from repro.memory import MemoryConfig, MemorySystem
from repro.processor import DecoupledVectorMachine, elementwise_product_program
from repro.report import render_table
from repro.workloads import (
    matrix_antidiagonal_access,
    matrix_column_accesses,
    matrix_diagonal_access,
    matrix_row_accesses,
    transpose_block_accesses,
)

ROWS, COLS = 128, 64


def pattern_table() -> None:
    conventional = MemoryConfig(LowOrderInterleaved(3), 3, input_capacity=4)
    proposed = MemoryConfig.unmatched(t=3, s=4, y=9)
    designs = [
        ("interleaved+ordered", AccessPlanner(conventional.mapping, 3),
         MemorySystem(conventional), "ordered"),
        ("unmatched+OOO (paper)", AccessPlanner(proposed.mapping, 3),
         MemorySystem(proposed), "auto"),
    ]

    patterns = [
        ("row", matrix_row_accesses(ROWS, COLS)[0]),
        ("column", matrix_column_accesses(ROWS, COLS)[0]),
        ("diagonal", matrix_diagonal_access(min(ROWS, COLS))),
        ("anti-diagonal", matrix_antidiagonal_access(min(ROWS, COLS))),
        ("transpose tile col", transpose_block_accesses(ROWS, COLS, 32)[0]),
    ]

    print(f"row-major {ROWS}x{COLS} matrix (leading dimension {COLS} = 2**6)\n")
    rows = []
    for name, access in patterns:
        minimum = 8 + access.length + 1
        row = [name, access.stride, access.family, access.length, minimum]
        for _dname, planner, system, mode in designs:
            run = system.run_plan(planner.plan(access, mode=mode))
            row.append(run.latency)
        rows.append(row)
    headers = ["pattern", "stride", "family", "length", "min"] + [
        dname for dname, *_ in designs
    ]
    print(render_table(headers, rows))


def column_scaling_end_to_end() -> None:
    """Scale column 0 of the matrix by its diagonal neighbour, for real."""
    machine = DecoupledVectorMachine(
        MemoryConfig.unmatched(t=3, s=4, y=9), register_length=128
    )
    matrix = [[float(r * COLS + c) for c in range(COLS)] for r in range(ROWS)]
    flat = [value for row in matrix for value in row]
    machine.store.write_vector(0, 1, flat)

    # out[r] = A[r][0] * A[r][1]: two stride-64 column reads.
    program = elementwise_product_program(
        ROWS, 128, 0, COLS, 1, COLS, 1 << 20, 1
    )
    result = machine.run(program)
    out = machine.store.read_vector(1 << 20, 1, ROWS)
    expected = [matrix[r][0] * matrix[r][1] for r in range(ROWS)]
    assert out == expected, "column product mismatch"

    loads = [t for t in result.timings if t.mnemonic == "LOAD"]
    print(
        f"\ncolumn product (two stride-{COLS} loads per strip): "
        f"{result.total_cycles} cycles, "
        f"{sum(1 for t in loads if t.conflict_free)}/{len(loads)} loads "
        "conflict-free, values verified"
    )


def main() -> None:
    pattern_table()
    column_scaling_end_to_end()


if __name__ == "__main__":
    main()
