#!/usr/bin/env python3
"""Sparse gather: scheduling "unstructured patterns" out of order.

The paper's introduction notes that conventional interleaving only helps
structured patterns; a sparse kernel's gather (``y[i] = table[idx[i]]``)
has no stride to exploit.  But the out-of-order machinery the paper
builds — element indices travelling with requests, a random-access
vector register — is exactly what an indexed access needs to be
*scheduled*: the memory unit can issue the gather's requests in any
order that keeps same-module requests T slots apart.

This example runs a sparse histogram-style kernel on the decoupled
machine under both gather modes and three index distributions.

Run:  python examples/sparse_gather.py
"""

import random

from repro.memory import MemoryConfig
from repro.processor import DecoupledVectorMachine, Program, VGather, VLoad, VStore, VSum

LENGTH = 128
TABLE_SIZE = 4096


def index_populations() -> dict[str, list[int]]:
    rng = random.Random(1992)
    permutation = list(range(LENGTH))
    rng.shuffle(permutation)
    return {
        "dense permutation": permutation,
        "uniform random": [rng.randrange(TABLE_SIZE) for _ in range(LENGTH)],
        "hot-row clustered": [128 * (i % 4) for i in range(LENGTH)],
    }


def run(name: str, indices: list[int], gather_mode: str) -> None:
    machine = DecoupledVectorMachine(
        MemoryConfig.matched(t=3, s=4, input_capacity=2),
        register_length=LENGTH,
        gather_mode=gather_mode,
    )
    table = [float(i % 97) for i in range(TABLE_SIZE)]
    machine.store.write_vector(0, 1, table)
    machine.store.write_vector(100000, 1, [float(i) for i in indices])

    program = Program(
        [
            VLoad(1, 100000, 1),  # index vector
            VGather(2, 0, 1),  # the sparse read
            VSum(3, 2),  # reduce
            VStore(3, 200000, 1, 1),  # store the scalar result
        ]
    )
    result = machine.run(program)
    expected = float(sum(table[i] for i in indices))
    measured = machine.store.read(200000)
    assert measured == expected, (measured, expected)

    gather = result.timings[1]
    print(
        f"  {name:20s} {gather_mode:9s}: gather {gather.duration:4d} cycles "
        f"({gather.mode}, {'conflict-free' if gather.conflict_free else 'conflicts'}), "
        f"total {result.total_cycles}, checksum OK"
    )


def main() -> None:
    print(f"sparse gather of {LENGTH} elements from a {TABLE_SIZE}-word table\n")
    for name, indices in index_populations().items():
        for mode in ("ordered", "scheduled"):
            run(name, indices, mode)
        print()
    print(
        "Scheduling recovers the one-element-per-cycle rate whenever the\n"
        "index multiset is T-matched; the hot-row population is not, and\n"
        "no issue order can fix it (Section 2: T-matched is necessary)."
    )


if __name__ == "__main__":
    main()
