"""Tests for the Lemma 2 / Lemma 4 subsequence decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import OrderingError
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping


class TestConstruction:
    def test_counts(self):
        vector = VectorAccess(16, 12, 64)  # x = 2
        plan = build_subsequences(vector, w=3, t=3)
        assert plan.chunk_elements == 16
        assert plan.subsequences_per_chunk == 2
        assert plan.chunks == 4
        assert plan.elements_per_subsequence == 8

    def test_family_above_w_rejected(self):
        vector = VectorAccess(0, 32, 64)  # x = 5
        with pytest.raises(OrderingError):
            build_subsequences(vector, w=3, t=3)

    def test_length_not_multiple_rejected(self):
        vector = VectorAccess(0, 12, 40)
        with pytest.raises(OrderingError):
            build_subsequences(vector, w=3, t=3)

    def test_length_shorter_than_chunk_rejected(self):
        vector = VectorAccess(0, 12, 8)
        with pytest.raises(OrderingError):
            build_subsequences(vector, w=3, t=3)

    def test_x_equal_w_single_subsequence_per_chunk(self):
        vector = VectorAccess(0, 8, 64)  # x = 3 = w
        plan = build_subsequences(vector, w=3, t=3)
        assert plan.subsequences_per_chunk == 1
        assert plan.chunk_elements == 8


class TestIndexStructure:
    def test_paper_subsequences(self):
        """Section 3: the two subsequences of the stride-12 period."""
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        assert plan.subsequence_indices(0, 0) == [0, 2, 4, 6, 8, 10, 12, 14]
        assert plan.subsequence_indices(0, 1) == [1, 3, 5, 7, 9, 11, 13, 15]
        assert plan.subsequence_indices(1, 0) == [16, 18, 20, 22, 24, 26, 28, 30]

    def test_out_of_range_rejected(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        with pytest.raises(OrderingError):
            plan.subsequence_indices(4, 0)
        with pytest.raises(OrderingError):
            plan.subsequence_indices(0, 2)

    def test_address_step_is_sigma_2w(self):
        vector = VectorAccess(16, 12, 64)  # sigma=3, x=2
        plan = build_subsequences(vector, w=3, t=3)
        assert plan.intra_step_address == 3 * 8
        indices = plan.subsequence_indices(0, 0)
        addresses = [vector.address_of(i) for i in indices]
        steps = {b - a for a, b in zip(addresses, addresses[1:])}
        assert steps == {3 * 8}

    @settings(max_examples=60)
    @given(
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=-7, max_value=7).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=-1000, max_value=10000),
        w=st.integers(min_value=4, max_value=6),
    )
    def test_partition_property(self, x, sigma, base, w):
        """Subsequences partition the vector's element indices exactly."""
        t = 3
        length = 1 << (w + t - x + 1)  # two chunks
        vector = VectorAccess(base, sigma * (1 << x), length)
        plan = build_subsequences(vector, w=w, t=t)
        collected = sorted(plan.all_indices_natural())
        assert collected == list(range(length))

    def test_iter_matches_explicit(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        seen = list(plan.iter_subsequences())
        assert len(seen) == plan.chunks * plan.subsequences_per_chunk
        for chunk, sub, indices in seen:
            assert indices == plan.subsequence_indices(chunk, sub)


class TestLemma2Property:
    """Lemma 2: subsequence elements land in distinct modules."""

    @settings(max_examples=60)
    @given(
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**20),
    )
    def test_matched_distinct_modules(self, x, sigma, base):
        t, s = 3, 4
        mapping = MatchedXorMapping(t, s)
        length = 1 << (s + t - x)
        vector = VectorAccess(base, sigma * (1 << x), length)
        plan = build_subsequences(vector, w=s, t=t)
        for _, _, indices in plan.iter_subsequences():
            modules = [
                mapping.module_of(mapping.reduce(vector.address_of(i)))
                for i in indices
            ]
            assert len(set(modules)) == len(modules)


class TestLemma4Property:
    """Lemma 4: subsequence elements land in distinct sections."""

    @settings(max_examples=60)
    @given(
        x=st.integers(min_value=0, max_value=9),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**20),
    )
    def test_sections_distinct(self, x, sigma, base):
        t, s, y = 3, 4, 9
        mapping = SectionXorMapping(t, s, y)
        length = 1 << (y + t - x)
        if length > 1 << 12:
            length = 1 << 12  # keep runtime bounded; one chunk suffices below
        if length < 1 << (y + t - x):
            return  # decomposition needs a full chunk
        vector = VectorAccess(base, sigma * (1 << x), length)
        plan = build_subsequences(vector, w=y, t=t)
        for _, _, indices in plan.iter_subsequences():
            sections = [
                mapping.section_of(vector.address_of(i)) for i in indices
            ]
            assert len(set(sections)) == len(sections)
