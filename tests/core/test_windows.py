"""Tests for the Theorem 1/3 windows and the recommended parameters."""

from __future__ import annotations

import pytest

from repro.core.windows import (
    MatchedDesign,
    UnmatchedDesign,
    Window,
    fused_unmatched_window,
    matched_ordered_window,
    matched_window,
    recommended_s,
    recommended_y,
    unmatched_ordered_window,
    unmatched_windows,
)
from repro.errors import ConfigurationError


class TestWindow:
    def test_contains(self):
        window = Window(2, 5)
        assert window.contains(2)
        assert window.contains(5)
        assert not window.contains(1)
        assert not window.contains(6)

    def test_size_and_families(self):
        window = Window(1, 4)
        assert window.size == 4
        assert window.families() == [1, 2, 3, 4]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Window(3, 2)
        with pytest.raises(ConfigurationError):
            Window(-1, 2)


class TestTheorem1:
    def test_paper_example(self):
        """L=128, t=3, s=4: window 0..4 (Section 3.3)."""
        assert matched_window(7, 3, 4) == Window(0, 4)

    def test_small_lambda_clips(self):
        """N = min(lambda - t, s): short registers shrink the window."""
        assert matched_window(5, 3, 4) == Window(2, 4)
        assert matched_window(3, 3, 4) == Window(4, 4)

    def test_s_clips(self):
        assert matched_window(10, 3, 3) == Window(0, 3)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            matched_window(2, 3, 4)  # lambda < t
        with pytest.raises(ConfigurationError):
            matched_window(7, 3, 2)  # s < t

    def test_ordered_window_single_family(self):
        assert matched_ordered_window(4) == Window(4, 4)


class TestTheorem3:
    def test_paper_example(self):
        """L=128, T=8, M=64, s=4, y=9: windows [0,4] and [5,9]."""
        low, high = unmatched_windows(7, 3, 4, 9)
        assert low == Window(0, 4)
        assert high == Window(5, 9)

    def test_fused(self):
        assert fused_unmatched_window(7, 3, 4, 9) == Window(0, 9)

    def test_gap_rejected_by_fuse(self):
        with pytest.raises(ConfigurationError):
            fused_unmatched_window(7, 3, 4, 12)

    def test_overlapping_windows_rejected(self):
        # y too small: y - R < s + 1 violates the paper's partition
        # assumption.
        with pytest.raises(ConfigurationError):
            unmatched_windows(7, 3, 4, 7)

    def test_ordered_window(self):
        assert unmatched_ordered_window(0, 6, 3) == Window(0, 3)
        with pytest.raises(ConfigurationError):
            unmatched_ordered_window(0, 2, 3)


class TestRecommendations:
    def test_recommended_s(self):
        assert recommended_s(7, 3) == 4

    def test_recommended_y(self):
        assert recommended_y(7, 3) == 9

    def test_lambda_below_t_rejected(self):
        with pytest.raises(ConfigurationError):
            recommended_s(2, 3)


class TestDesigns:
    def test_matched_design(self):
        design = MatchedDesign.recommended(7, 3)
        assert design.s == 4
        assert design.vector_length == 128
        assert design.module_count == 8
        assert design.window() == Window(0, 4)
        assert design.ordered_window() == Window(4, 4)
        assert design.mapping().s == 4

    def test_matched_design_small_lambda_keeps_s_legal(self):
        design = MatchedDesign.recommended(4, 3)
        assert design.s >= 3  # Eq. (1) needs s >= t
        assert design.mapping().module_bits == 3

    def test_unmatched_design(self):
        design = UnmatchedDesign.recommended(7, 3)
        assert (design.s, design.y) == (4, 9)
        assert design.module_count == 64
        assert design.fused_window() == Window(0, 9)
        low, high = design.windows()
        assert (low, high) == (Window(0, 4), Window(5, 9))
