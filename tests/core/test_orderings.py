"""Tests for the three request orderings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import is_conflict_free, temporal_distribution
from repro.core.orderings import (
    RequestOrder,
    canonical_order,
    conflict_free_order,
    subsequence_order,
)
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import OrderingError
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping


class TestCanonicalOrder:
    def test_identity_permutation(self):
        order = canonical_order(VectorAccess(5, 3, 16))
        assert order.indices == tuple(range(16))
        assert order.name == "canonical"
        assert order.is_permutation()

    def test_addresses(self):
        order = canonical_order(VectorAccess(5, 3, 4))
        assert order.addresses() == [5, 8, 11, 14]


class TestRequestOrderValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(OrderingError):
            RequestOrder("broken", (0, 1), VectorAccess(0, 1, 3))


class TestSubsequenceOrder:
    def test_paper_issue_order(self, figure3_mapping):
        """Stride 12 example: evens then odds within each period."""
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        order = subsequence_order(plan)
        assert order.indices[:8] == (0, 2, 4, 6, 8, 10, 12, 14)
        assert order.indices[8:16] == (1, 3, 5, 7, 9, 11, 13, 15)
        assert order.indices[16:24] == (16, 18, 20, 22, 24, 26, 28, 30)
        assert order.is_permutation()

    def test_each_subsequence_conflict_free(self, matched_mapping):
        """Theorem 2: every subsequence alone is conflict-free."""
        for family in range(5):
            vector = VectorAccess(99, 3 * (1 << family), 128)
            plan = build_subsequences(vector, w=4, t=3)
            for _, _, indices in plan.iter_subsequences():
                modules = temporal_distribution(
                    matched_mapping, vector, indices
                )
                assert is_conflict_free(modules, 8)


class TestConflictFreeOrder:
    @settings(max_examples=50)
    @given(
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**16),
    )
    def test_matched_conflict_free(self, x, sigma, base):
        """The Section 3.2 order is conflict-free across the window."""
        mapping = MatchedXorMapping(3, 4)
        vector = VectorAccess(base, sigma * (1 << x), 128)
        plan = build_subsequences(vector, w=4, t=3)
        order = conflict_free_order(
            plan, lambda address: mapping.module_of(mapping.reduce(address))
        )
        assert order.is_permutation()
        modules = temporal_distribution(mapping, vector, order.indices)
        assert is_conflict_free(modules, 8)

    @settings(max_examples=50)
    @given(
        x=st.integers(min_value=0, max_value=9),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**16),
    )
    def test_unmatched_conflict_free(self, x, sigma, base):
        """Section 4.2: both windows on the section mapping."""
        mapping = SectionXorMapping(3, 4, 9)
        vector = VectorAccess(base, sigma * (1 << x), 128)
        if x <= 4:
            plan = build_subsequences(vector, w=4, t=3)
            key = mapping.module_within_section
        else:
            plan = build_subsequences(vector, w=9, t=3)
            key = mapping.section_of
        order = conflict_free_order(plan, key)
        assert order.is_permutation()
        modules = temporal_distribution(mapping, vector, order.indices)
        assert is_conflict_free(modules, 8)

    def test_first_subsequence_stays_natural(self, figure3_mapping):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        order = conflict_free_order(
            plan,
            lambda address: figure3_mapping.module_of(
                figure3_mapping.reduce(address)
            ),
        )
        assert order.indices[:8] == tuple(plan.subsequence_indices(0, 0))

    def test_same_module_exactly_t_apart(self, figure3_mapping):
        """The defining property: equal modules are exactly T slots apart."""
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        order = conflict_free_order(
            plan,
            lambda address: figure3_mapping.module_of(
                figure3_mapping.reduce(address)
            ),
        )
        modules = temporal_distribution(figure3_mapping, vector, order.indices)
        last_position: dict[int, int] = {}
        for position, module in enumerate(modules):
            if module in last_position:
                assert position - last_position[module] == 8
            last_position[module] = position

    def test_bad_key_function_rejected(self):
        """A key that repeats within a subsequence raises."""
        vector = VectorAccess(0, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        with pytest.raises(OrderingError):
            conflict_free_order(plan, lambda address: 0)

    def test_key_absent_from_first_subsequence_rejected(self):
        """A key whose values drift across subsequences raises."""
        vector = VectorAccess(0, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        # Key = element address // 96: first subsequence yields values
        # 0..1 with duplicates -> rejected by the uniqueness check.
        with pytest.raises(OrderingError):
            conflict_free_order(plan, lambda address: address // 96)
