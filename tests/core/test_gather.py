"""Tests for indexed (gather/scatter) access planning."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gather import IndexedAccess, plan_indexed
from repro.errors import VectorSpecError
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem

MAPPING = MatchedXorMapping(3, 4)


class TestIndexedAccess:
    def test_addresses(self):
        access = IndexedAccess(100, [0, 5, 2])
        assert access.addresses() == [100, 105, 102]
        assert access.address_of(1) == 105
        assert access.length == 3

    def test_empty_rejected(self):
        with pytest.raises(VectorSpecError):
            IndexedAccess(0, [])

    def test_bounds(self):
        access = IndexedAccess(0, [1, 2])
        with pytest.raises(VectorSpecError):
            access.address_of(2)

    def test_duplicates_allowed(self):
        access = IndexedAccess(0, [7, 7, 7])
        assert access.addresses() == [7, 7, 7]


class TestPlanIndexed:
    def test_ordered_mode_is_identity(self):
        access = IndexedAccess(0, list(range(16)))
        plan = plan_indexed(MAPPING, 3, access, mode="ordered")
        assert plan.order == tuple(range(16))
        assert plan.scheme == "canonical"

    def test_scheduled_mode_conflict_free_for_balanced_indices(self):
        # A permutation gather of 64 consecutive addresses: balanced.
        rng = random.Random(3)
        indices = list(range(64))
        rng.shuffle(indices)
        access = IndexedAccess(0, indices)
        plan = plan_indexed(MAPPING, 3, access, mode="scheduled")
        assert plan.scheme == "scheduled"
        assert plan.conflict_free

    def test_scheduled_cannot_fix_clustered_indices(self):
        # Every index hits the same module: best-effort scheduling still
        # produces an order, but it honestly reports the conflicts.
        access = IndexedAccess(0, [i * 128 for i in range(16)])
        plan = plan_indexed(MAPPING, 3, access, mode="scheduled")
        assert plan.scheme == "scheduled"
        assert not plan.conflict_free

    def test_best_effort_improves_non_t_matched_population(self):
        # 32 elements, two modules overloaded: strict scheduling is
        # infeasible, best-effort still spreads the clusters.
        import random as _random

        rng = _random.Random(9)
        indices = [0] * 20 + [rng.randrange(4096) for _ in range(12)]
        access = IndexedAccess(0, indices)
        scheduled = plan_indexed(MAPPING, 3, access, mode="scheduled")
        ordered = plan_indexed(MAPPING, 3, access, mode="ordered")
        from repro.core.distributions import conflict_count

        assert conflict_count(scheduled.modules, 8) <= conflict_count(
            ordered.modules, 8
        )

    def test_bad_mode(self):
        with pytest.raises(VectorSpecError):
            plan_indexed(MAPPING, 3, IndexedAccess(0, [1]), mode="bogus")

    def test_stream_carries_element_indices(self):
        access = IndexedAccess(10, [3, 1, 2])
        plan = plan_indexed(MAPPING, 3, access, mode="ordered")
        assert plan.request_stream() == [(0, 13), (1, 11), (2, 12)]

    @settings(max_examples=50, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=4095), min_size=1, max_size=96
        ),
        base=st.integers(min_value=0, max_value=10000),
    )
    def test_scheduled_is_permutation_and_verdict_correct(self, indices, base):
        from repro.core.distributions import is_conflict_free

        access = IndexedAccess(base, indices)
        plan = plan_indexed(MAPPING, 3, access, mode="scheduled")
        assert sorted(plan.order) == list(range(len(indices)))
        assert plan.conflict_free == is_conflict_free(plan.modules, 8)


class TestSimulatedGather:
    def test_scheduled_beats_ordered_on_random_permutation(self):
        rng = random.Random(17)
        indices = list(range(128))
        rng.shuffle(indices)
        access = IndexedAccess(0, indices)
        system = MemorySystem(MemoryConfig.matched(t=3, s=4, input_capacity=2))

        ordered = plan_indexed(MAPPING, 3, access, mode="ordered")
        scheduled = plan_indexed(MAPPING, 3, access, mode="scheduled")
        ordered_latency = system.run_stream(ordered.request_stream()).latency
        scheduled_result = system.run_stream(scheduled.request_stream())
        assert scheduled_result.conflict_free
        assert scheduled_result.latency == 8 + 128 + 1
        assert scheduled_result.latency < ordered_latency
