"""Tests for the vector access specification."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vector import VectorAccess
from repro.errors import VectorSpecError


class TestConstruction:
    def test_zero_stride_rejected(self):
        with pytest.raises(VectorSpecError):
            VectorAccess(0, 0, 8)

    def test_zero_length_rejected(self):
        with pytest.raises(VectorSpecError):
            VectorAccess(0, 1, 0)

    def test_negative_stride_allowed(self):
        vector = VectorAccess(100, -3, 8)
        assert vector.family == 0
        assert vector.sigma == -3

    def test_family_and_sigma(self):
        vector = VectorAccess(0, 12, 64)
        assert vector.family == 2
        assert vector.sigma == 3


class TestLambdaExponent:
    def test_power_of_two(self):
        assert VectorAccess(0, 1, 128).lambda_exponent == 7

    def test_non_power_rejected(self):
        with pytest.raises(VectorSpecError):
            VectorAccess(0, 1, 100).lambda_exponent


class TestAddresses:
    def test_address_of(self):
        vector = VectorAccess(16, 12, 64)
        assert vector.address_of(0) == 16
        assert vector.address_of(3) == 52

    def test_address_out_of_range(self):
        vector = VectorAccess(0, 1, 4)
        with pytest.raises(VectorSpecError):
            vector.address_of(4)
        with pytest.raises(VectorSpecError):
            vector.address_of(-1)

    @given(
        st.integers(min_value=-(2**20), max_value=2**20),
        st.integers(min_value=-512, max_value=512).filter(lambda s: s != 0),
        st.integers(min_value=1, max_value=256),
    )
    def test_addresses_arithmetic(self, base, stride, length):
        vector = VectorAccess(base, stride, length)
        addresses = vector.addresses()
        assert len(addresses) == length
        assert addresses[0] == base
        assert all(
            addresses[i + 1] - addresses[i] == stride
            for i in range(length - 1)
        )


class TestSlice:
    def test_basic_slice(self):
        vector = VectorAccess(10, 4, 32)
        part = vector.slice(8, 8)
        assert part.base == 42
        assert part.stride == 4
        assert part.length == 8

    def test_slice_bounds(self):
        vector = VectorAccess(0, 1, 8)
        with pytest.raises(VectorSpecError):
            vector.slice(4, 5)
        with pytest.raises(VectorSpecError):
            vector.slice(-1, 2)
        with pytest.raises(VectorSpecError):
            vector.slice(0, 0)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_slice_addresses_match_parent(self, start, count):
        vector = VectorAccess(7, 5, 200)
        part = vector.slice(start, count)
        for i in range(count):
            assert part.address_of(i) == vector.address_of(start + i)
