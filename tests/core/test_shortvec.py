"""Tests for the Section 5-C short-vector planner."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import AccessPlanner
from repro.core.shortvec import plan_short_vector
from repro.core.vector import VectorAccess
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import PseudoRandomMapping


class TestSplitStructure:
    def test_full_multiple_has_no_tail(self, matched_planner):
        vector = VectorAccess(0, 12, 64)  # x=2, chunk=32
        composite = plan_short_vector(matched_planner, vector)
        assert composite.prefix_length == 64
        assert composite.tail is None
        assert composite.conflict_free

    def test_partial_splits_at_chunk_multiple(self, matched_planner):
        vector = VectorAccess(0, 12, 70)  # chunk=32 -> prefix 64, tail 6
        composite = plan_short_vector(matched_planner, vector)
        assert composite.prefix_length == 64
        assert composite.tail is not None
        assert composite.tail.vector.length == 6
        assert composite.scheme == "composite(conflict_free+canonical)"

    def test_shorter_than_chunk_all_ordered(self, matched_planner):
        vector = VectorAccess(0, 12, 20)  # chunk=32 > 20
        composite = plan_short_vector(matched_planner, vector)
        assert composite.prefix is None
        assert composite.prefix_length == 0
        assert composite.scheme == "ordered"

    def test_unstructured_mapping_all_ordered(self):
        planner = AccessPlanner(PseudoRandomMapping(3, seed=3), 3)
        composite = plan_short_vector(planner, VectorAccess(0, 12, 64))
        assert composite.prefix is None

    def test_prefix_length_is_paper_v(self, matched_planner):
        """V = k * 2**(w+t-x) with the largest k fitting the vector."""
        for family, length in [(0, 200), (1, 100), (2, 45), (3, 33), (4, 17)]:
            vector = VectorAccess(0, 3 * (1 << family), length)
            composite = plan_short_vector(matched_planner, vector)
            chunk = 1 << (4 + 3 - family)
            assert composite.prefix_length == (length // chunk) * chunk


class TestStreamSemantics:
    def test_stream_covers_all_elements_once(self, matched_planner):
        vector = VectorAccess(3, 12, 70)
        composite = plan_short_vector(matched_planner, vector)
        stream = composite.request_stream()
        indices = sorted(index for index, _ in stream)
        assert indices == list(range(70))
        for index, address in stream:
            assert address == vector.address_of(index)

    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=4),
        length=st.integers(min_value=1, max_value=200),
        base=st.integers(min_value=0, max_value=10000),
    )
    def test_always_a_valid_permutation(self, x, length, base):
        planner_local = AccessPlanner(MatchedXorMapping(3, 4), 3)
        vector = VectorAccess(base, 3 * (1 << x), length)
        composite = plan_short_vector(planner_local, vector)
        indices = sorted(index for index, _ in composite.request_stream())
        assert indices == list(range(length))

    def test_prefix_is_conflict_free(self, matched_planner):
        vector = VectorAccess(3, 12, 70)
        composite = plan_short_vector(matched_planner, vector)
        assert composite.prefix is not None
        assert composite.prefix.conflict_free

    def test_minimum_latency(self, matched_planner):
        vector = VectorAccess(3, 12, 70)
        composite = plan_short_vector(matched_planner, vector)
        assert composite.minimum_latency == 8 + 70 + 1
