"""Tests for the oracle cooldown scheduler."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import AccessPlanner
from repro.core.scheduler import (
    OraclePlanner,
    feasible_with_cooldown,
    schedule_with_cooldown,
)
from repro.core.vector import VectorAccess
from repro.errors import OrderingError
from repro.mappings.linear import MatchedXorMapping
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem


def check_schedule(modules, cooldown, schedule) -> None:
    """A valid schedule is a permutation with same-module gap >= T."""
    assert sorted(schedule) == list(range(len(modules)))
    last: dict[int, int] = {}
    for slot, position in enumerate(schedule):
        module = modules[position]
        if module in last:
            assert slot - last[module] >= cooldown
        last[module] = slot


class TestScheduleWithCooldown:
    def test_uniform_tight_case(self):
        modules = list(range(8)) * 9
        schedule = schedule_with_cooldown(modules, 8)
        assert schedule is not None
        check_schedule(modules, 8, schedule)

    def test_single_module_infeasible(self):
        assert schedule_with_cooldown([0, 0, 0], 2) is None

    def test_cooldown_one_always_feasible(self):
        modules = [0, 0, 0, 1, 2]
        schedule = schedule_with_cooldown(modules, 1)
        assert schedule is not None
        check_schedule(modules, 1, schedule)

    def test_invalid_cooldown(self):
        with pytest.raises(OrderingError):
            schedule_with_cooldown([0], 0)

    def test_preserves_element_order_within_module(self):
        modules = [0, 1, 0, 1]
        schedule = schedule_with_cooldown(modules, 2)
        positions_of_zero = [p for p in schedule if modules[p] == 0]
        assert positions_of_zero == sorted(positions_of_zero)

    @settings(max_examples=150, deadline=None)
    @given(
        modules=st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=80
        ),
        cooldown=st.integers(min_value=1, max_value=8),
    )
    def test_greedy_matches_feasibility_formula(self, modules, cooldown):
        """Greedy succeeds exactly when (c_max-1)*T + k <= L."""
        schedule = schedule_with_cooldown(modules, cooldown)
        feasible = feasible_with_cooldown(modules, cooldown)
        assert (schedule is not None) == feasible
        if schedule is not None:
            check_schedule(modules, cooldown, schedule)


class TestFeasibility:
    def test_empty(self):
        assert feasible_with_cooldown([], 4)

    def test_boundary(self):
        # c_max=3, k=1, T=4: (3-1)*4+1 = 9 -> needs L >= 9.
        modules = [0, 0, 0] + [1, 2, 3, 4, 5]  # L=8: infeasible
        assert not feasible_with_cooldown(modules, 4)
        modules.append(6)  # L=9: feasible
        assert feasible_with_cooldown(modules, 4)


class TestOraclePlanner:
    @pytest.fixture
    def oracle(self):
        return OraclePlanner(AccessPlanner(MatchedXorMapping(3, 4), 3))

    @pytest.fixture
    def system(self):
        return MemorySystem(MemoryConfig.matched(t=3, s=4))

    def test_matches_paper_inside_window(self, oracle, system):
        """Inside the window, oracle and paper order both hit T+L+1."""
        for family in range(5):
            vector = VectorAccess(16, 3 * (1 << family), 128)
            plan = oracle.plan(vector)
            assert plan.conflict_free
            assert system.run_plan(plan).latency == 137

    def test_covers_short_balanced_vectors(self, oracle, system):
        """Unit-stride vectors shorter than the x=0 chunk (128): the
        structured scheme falls back to ordered access, but the module
        counts are perfectly balanced, so the oracle schedules them."""
        paper = AccessPlanner(MatchedXorMapping(3, 4), 3)
        for length in (24, 32, 48, 64, 96):
            vector = VectorAccess(16, 1, length)
            oracle_plan = oracle.plan(vector)
            paper_plan = paper.plan(vector, mode="auto")
            assert oracle_plan.conflict_free
            assert not paper_plan.conflict_free
            result = system.run_plan(oracle_plan)
            assert result.latency == 8 + length + 1

    def test_unbalanced_tails_defeat_everyone(self, oracle):
        """Most non-chunk lengths of even strides unbalance the counts;
        then no order at all is conflict-free — the structured scheme
        gives up nothing there."""
        paper = AccessPlanner(MatchedXorMapping(3, 4), 3)
        for stride, length in [(12, 72), (12, 48), (6, 40)]:
            vector = VectorAccess(5, stride, length)
            assert not oracle.plan(vector).conflict_free
            assert not paper.plan(vector, mode="auto").conflict_free

    def test_falls_back_when_infeasible(self, oracle):
        plan = oracle.plan(VectorAccess(0, 1 << 6, 128))
        assert plan.scheme == "canonical"
        assert not plan.conflict_free

    def test_oracle_never_beats_physics(self, oracle):
        """Out-of-window families cluster into few modules: no order
        can be conflict-free (T-matched is necessary, Section 2)."""
        for family in (5, 6, 7):
            vector = VectorAccess(3, 1 << family, 128)
            modules = [
                oracle.mapping.module_of(oracle.mapping.reduce(a))
                for a in vector.addresses()
            ]
            counts = Counter(modules)
            assert max(counts.values()) > 128 // 8
            assert not oracle.plan(vector).conflict_free
