"""The process-wide plan cache and the facade's machine templates.

A cache hit must be indistinguishable from recomputation across the
same geometry sweep that pins the closed-form planner shortcuts
(tests/batch/test_fastpath.py): every proven mapping kind, stride
family, length and base.  Disabling either cache via its environment
knob must change nothing but speed, the LRU must evict oldest-first,
and mappings without a declared ``cache_token`` must never be cached.
"""

from __future__ import annotations

import pytest

from repro.core.planner import (
    PLAN_CACHE_ENV,
    AccessPlanner,
    PlanCache,
    clear_plan_cache,
    plan_cache_enabled,
    plan_cache_stats,
)
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError
from repro.mappings.base import AddressMapping
from repro.mappings.interleaved import FieldInterleaved, LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping
from repro.mappings.skewed import SkewedMapping

#: The fastpath geometry sweep (tests/batch/test_fastpath.py), reused
#: as the cache-correctness population: every proven mapping kind,
#: stride family (negative and odd included), non-chunk lengths,
#: length 1, and nonzero bases.
CASES = [
    (MatchedXorMapping(3, 4), 3),
    (MatchedXorMapping(3, 3), 3),
    (MatchedXorMapping(2, 5), 2),
    (MatchedXorMapping(4, 6), 3),
    (SectionXorMapping(3, 4, 9), 3),
    (SectionXorMapping(2, 3, 7), 2),
    (SectionXorMapping(3, 4, 8), 2),
    (LowOrderInterleaved(3), 3),
    (FieldInterleaved(3, 4), 3),
    (SkewedMapping(3, 4, distance=3), 3),
]

STRIDES = [1, 2, 3, 4, 5, 7, 8, 12, 16, 24, 96, -3, -8]
LENGTHS = [1, 4, 8, 16, 24, 64, 128]
BASES = [0, 5, 64]


def sweep():
    for mapping, t in CASES:
        for stride in STRIDES:
            for length in LENGTHS:
                for base in BASES:
                    yield mapping, t, VectorAccess(base, stride, length)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestPlanCacheCorrectness:
    def test_warm_plans_equal_cold_plans_across_the_sweep(self):
        cold = [
            AccessPlanner(mapping, t).plan(access)
            for mapping, t, access in sweep()
        ]
        before = plan_cache_stats()
        warm = [
            AccessPlanner(mapping, t).plan(access)
            for mapping, t, access in sweep()
        ]
        after = plan_cache_stats()
        assert cold == warm
        # Every sweep point carries a cache token, so the second pass
        # is all hits — and hits return the identical frozen object.
        assert after["plan_cache_hits"] - before["plan_cache_hits"] == len(
            cold
        )
        for left, right in zip(cold, warm):
            assert left is right

    def test_disabled_cache_produces_equal_plans(self, monkeypatch):
        cached = [
            AccessPlanner(mapping, t).plan(access)
            for mapping, t, access in sweep()
        ]
        monkeypatch.setenv(PLAN_CACHE_ENV, "0")
        assert not plan_cache_enabled()
        before = plan_cache_stats()
        uncached = [
            AccessPlanner(mapping, t).plan(access)
            for mapping, t, access in sweep()
        ]
        assert plan_cache_stats() == before  # never consulted
        assert cached == uncached

    def test_tokenless_mappings_are_never_cached(self):
        class AnonymousMapping(AddressMapping):
            def __init__(self):
                super().__init__(module_bits=3, address_bits=32)

            def module_of(self, address: int) -> int:
                return address % 8

            def displacement_of(self, address: int) -> int:
                return address // 8

            def describe(self) -> str:
                return "anonymous"

        mapping = AnonymousMapping()
        assert mapping.cache_token() is None
        planner = AccessPlanner(mapping, 3)
        before = plan_cache_stats()
        first = planner.plan(VectorAccess(0, 3, 64))
        second = planner.plan(VectorAccess(0, 3, 64))
        assert first == second
        assert plan_cache_stats() == before

    def test_same_token_different_type_do_not_collide(self):
        # A subclass overriding module_of but not cache_token must get
        # its own entries: the key pairs the token with type(mapping).
        class ShiftedXor(MatchedXorMapping):
            def module_of(self, address: int) -> int:
                return (super().module_of(address) + 1) % self.module_count

        base = MatchedXorMapping(3, 4)
        shifted = ShiftedXor(3, 4)
        assert base.cache_token() == shifted.cache_token()
        access = VectorAccess(0, 3, 64)
        plan_base = AccessPlanner(base, 3).plan(access, mode="ordered")
        plan_shifted = AccessPlanner(shifted, 3).plan(
            access, mode="ordered"
        )
        assert plan_base.modules != plan_shifted.modules


class TestPlanCacheMechanics:
    def test_lru_evicts_oldest_first(self):
        cache = PlanCache(capacity=2)
        cache.store(("a",), "plan-a")
        cache.store(("b",), "plan-b")
        assert cache.lookup(("a",)) == "plan-a"  # refreshes a
        cache.store(("c",), "plan-c")  # evicts b, the LRU entry
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == "plan-a"
        assert cache.lookup(("c",)) == "plan-c"
        stats = cache.stats()
        assert stats["plan_cache_entries"] == 2
        assert stats["plan_cache_hits"] == 3
        assert stats["plan_cache_misses"] == 1

    def test_capacity_below_one_is_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            PlanCache(capacity=0)

    def test_clear_resets_counters_and_entries(self):
        cache = PlanCache(capacity=4)
        cache.store(("a",), "plan-a")
        cache.lookup(("a",))
        cache.lookup(("missing",))
        cache.clear()
        assert cache.stats() == {
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "plan_cache_entries": 0,
            "plan_cache_capacity": 4,
        }

    def test_stats_surface_through_obs(self):
        from repro.obs import cache_stats

        merged = cache_stats()
        assert "plan_cache_hits" in merged
        assert "machine_cache_hits" in merged


class TestMachineTemplates:
    def spec(self, name="mc", q=2):
        from repro.scenarios import ScenarioSpec

        return ScenarioSpec.from_dict(
            {
                "name": name,
                "mapping": {
                    "kind": "matched-xor",
                    "params": {"t": 3, "s": 4},
                },
                "memory": {"t": 3, "q": q},
                "workload": {
                    "kind": "strided",
                    "params": {"base": 0, "stride": 3, "length": 64},
                },
            }
        )

    @pytest.fixture(autouse=True)
    def fresh_machine_cache(self):
        from repro.scenarios.facade import clear_machine_cache

        clear_machine_cache()
        yield
        clear_machine_cache()

    def test_identical_sections_share_one_config_object(self):
        from repro.scenarios.facade import build_config, machine_cache_stats

        first = build_config(self.spec(name="one"))
        second = build_config(self.spec(name="two"))
        assert first is second
        stats = machine_cache_stats()
        assert stats["machine_cache_hits"] == 1
        assert stats["machine_cache_misses"] == 1

    def test_different_memory_sections_do_not_share(self):
        from repro.scenarios.facade import build_config

        assert build_config(self.spec(q=2)) is not build_config(
            self.spec(q=4)
        )

    def test_disabled_cache_builds_equal_fresh_configs(self, monkeypatch):
        from repro.scenarios.facade import (
            MACHINE_CACHE_ENV,
            build_config,
            machine_cache_stats,
        )

        cached = build_config(self.spec())
        monkeypatch.setenv(MACHINE_CACHE_ENV, "0")
        before = machine_cache_stats()
        fresh = build_config(self.spec())
        assert machine_cache_stats() == before
        assert fresh is not cached
        # Mapping objects compare by identity, so compare the config
        # field-wise with the mappings reduced to their declared tokens.
        assert fresh.mapping.cache_token() == cached.mapping.cache_token()
        assert (
            fresh.t,
            fresh.input_capacity,
            fresh.output_capacity,
            fresh.ports,
        ) == (
            cached.t,
            cached.input_capacity,
            cached.output_capacity,
            cached.ports,
        )

    def test_dynamic_mappings_are_never_cached(self):
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.facade import build_config, machine_cache_stats

        spec = ScenarioSpec.from_dict(
            {
                "name": "dyn",
                "mapping": {"kind": "dynamic", "params": {"m": 3}},
                "memory": {"t": 3},
                "workload": {
                    "kind": "strided",
                    "params": {"base": 0, "stride": 3, "length": 64},
                },
            }
        )
        before = machine_cache_stats()
        first = build_config(spec)
        second = build_config(spec)
        assert machine_cache_stats() == before
        assert first is not second

    def test_simulation_results_match_with_cache_disabled(self, monkeypatch):
        from repro.scenarios import simulate
        from repro.scenarios.facade import MACHINE_CACHE_ENV

        cached = simulate(self.spec()).to_dict()
        monkeypatch.setenv(MACHINE_CACHE_ENV, "0")
        monkeypatch.setenv(PLAN_CACHE_ENV, "0")
        assert simulate(self.spec()).to_dict() == cached
