"""Tests for spatial/temporal distributions and the Section 2 predicates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distributions import (
    canonical_temporal_distribution,
    conflict_count,
    ctp_period,
    first_conflict,
    is_conflict_free,
    is_t_matched,
    spatial_distribution,
    temporal_distribution,
    vector_is_t_matched,
)
from repro.core.vector import VectorAccess
from repro.errors import VectorSpecError


class TestSpatialDistribution:
    def test_counts_sum_to_length(self, matched_mapping):
        vector = VectorAccess(3, 12, 128)
        distribution = spatial_distribution(matched_mapping, vector)
        assert sum(distribution) == 128
        assert len(distribution) == 8

    def test_stride_one_perfectly_even(self, matched_mapping):
        vector = VectorAccess(0, 1, 128)
        assert spatial_distribution(matched_mapping, vector) == [16] * 8

    def test_out_of_window_family_clusters(self, matched_mapping):
        # Family x = s + 2 visits only ceil(2**(t-2)) = 2 modules.
        vector = VectorAccess(0, 1 << 6, 128)
        distribution = spatial_distribution(matched_mapping, vector)
        assert sum(1 for count in distribution if count > 0) == 2


class TestTMatched:
    def test_even_distribution_matched(self):
        assert is_t_matched([16] * 8, 8)

    def test_clustered_distribution_not_matched(self):
        assert not is_t_matched([64, 64, 0, 0, 0, 0, 0, 0], 8)

    def test_boundary_exact(self):
        # Exactly L/T per module in T modules is still T-matched.
        assert is_t_matched([16, 16, 16, 16, 16, 16, 16, 16], 8)
        assert not is_t_matched([17, 15, 16, 16, 16, 16, 16, 16], 8)

    def test_invalid_ratio(self):
        with pytest.raises(VectorSpecError):
            is_t_matched([1, 1], 0)

    def test_lemma3_families(self, matched_mapping):
        """Families 0..s give T-matched vectors; beyond s they do not
        (Lemma 3 + Theorem 1 for L = 2**lambda, lambda - t >= s)."""
        for family in range(5):
            vector = VectorAccess(13, 3 * (1 << family), 128)
            assert vector_is_t_matched(matched_mapping, vector, 8)
        for family in (5, 6, 8):
            vector = VectorAccess(13, 3 * (1 << family), 128)
            assert not vector_is_t_matched(matched_mapping, vector, 8)


class TestConflictFree:
    def test_all_distinct_window(self):
        assert is_conflict_free([0, 1, 2, 3, 0, 1, 2, 3], 4)

    def test_repeat_within_window(self):
        assert not is_conflict_free([0, 1, 0, 3], 4)

    def test_exactly_t_apart_is_free(self):
        assert is_conflict_free([0, 1, 2, 0, 1, 2], 3)

    def test_t_minus_one_apart_conflicts(self):
        assert not is_conflict_free([0, 1, 0], 3)

    def test_t_one_never_conflicts(self):
        assert is_conflict_free([5, 5, 5, 5], 1)

    def test_invalid_ratio(self):
        with pytest.raises(VectorSpecError):
            is_conflict_free([0], 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_bruteforce(self, modules, ratio):
        brute = all(
            modules[i] != modules[j]
            for i in range(len(modules))
            for j in range(max(0, i - ratio + 1), i)
        )
        assert is_conflict_free(modules, ratio) == brute

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    def test_first_conflict_consistency(self, modules, ratio):
        position = first_conflict(modules, ratio)
        if position is None:
            assert is_conflict_free(modules, ratio)
            assert conflict_count(modules, ratio) == 0
        else:
            assert not is_conflict_free(modules, ratio)
            assert is_conflict_free(modules[:position], ratio)
            assert conflict_count(modules, ratio) >= 1


class TestCanonicalDistribution:
    def test_paper_example(self, figure3_mapping):
        vector = VectorAccess(16, 12, 64)
        ctp = canonical_temporal_distribution(figure3_mapping, vector)
        assert ctp[:16] == [2, 7, 5, 2, 0, 5, 3, 0, 6, 3, 1, 6, 4, 1, 7, 4]
        # The period repeats 4 times over the vector.
        assert ctp == ctp[:16] * 4

    def test_temporal_distribution_with_order(self, figure3_mapping):
        vector = VectorAccess(16, 12, 16)
        order = list(range(0, 16, 2)) + list(range(1, 16, 2))
        modules = temporal_distribution(figure3_mapping, vector, order)
        assert modules[:8] == [2, 5, 0, 3, 6, 1, 4, 7]
        assert modules[8:] == [7, 2, 5, 0, 3, 6, 1, 4]


class TestCtpPeriod:
    def test_period_analysis(self, matched_mapping):
        vector = VectorAccess(16, 12, 128)
        analysis = ctp_period(matched_mapping, vector)
        assert analysis.family == 2
        assert analysis.period == 32
        assert len(analysis.modules) == 32
        assert analysis.is_t_matched(8)
        assert analysis.modules_visited() == 8

    def test_beyond_window_not_matched(self, matched_mapping):
        vector = VectorAccess(0, 1 << 6, 128)
        analysis = ctp_period(matched_mapping, vector)
        assert not analysis.is_t_matched(8)
        assert analysis.modules_visited() == 2

    def test_truncated_for_short_vectors(self, matched_mapping):
        vector = VectorAccess(0, 1, 16)
        analysis = ctp_period(matched_mapping, vector)
        assert analysis.period == 128
        assert len(analysis.modules) == 16
