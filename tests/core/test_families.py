"""Tests for stride-family algebra."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.families import (
    StrideFamily,
    decompose_stride,
    families_up_to,
    family_fraction,
    family_of,
    odd_part,
    strides_of_families,
    window_fraction,
)
from repro.errors import VectorSpecError

nonzero_strides = st.integers(min_value=-(2**24), max_value=2**24).filter(
    lambda s: s != 0
)


class TestDecompose:
    def test_simple_cases(self):
        assert decompose_stride(1) == (1, 0)
        assert decompose_stride(12) == (3, 2)
        assert decompose_stride(16) == (1, 4)
        assert decompose_stride(96) == (3, 5)

    def test_negative_strides(self):
        assert decompose_stride(-12) == (-3, 2)
        assert decompose_stride(-1) == (-1, 0)

    def test_zero_rejected(self):
        with pytest.raises(VectorSpecError):
            decompose_stride(0)

    @given(nonzero_strides)
    def test_reconstruction(self, stride):
        sigma, x = decompose_stride(stride)
        assert sigma % 2 != 0
        assert sigma * (1 << x) == stride

    @given(nonzero_strides)
    def test_family_and_odd_part_consistent(self, stride):
        assert family_of(stride) == decompose_stride(stride)[1]
        assert odd_part(stride) == decompose_stride(stride)[0]

    @given(st.integers(min_value=-(2**20), max_value=2**20).filter(lambda s: s != 0))
    def test_negation_preserves_family(self, stride):
        assert family_of(stride) == family_of(-stride)


class TestFractions:
    def test_family_fraction_values(self):
        assert family_fraction(0) == Fraction(1, 2)
        assert family_fraction(3) == Fraction(1, 16)

    def test_negative_family_rejected(self):
        with pytest.raises(VectorSpecError):
            family_fraction(-1)

    def test_window_fraction_paper_values(self):
        assert window_fraction(4) == Fraction(31, 32)
        assert window_fraction(9) == Fraction(1023, 1024)

    def test_window_fraction_is_cumulative(self):
        for w in range(8):
            total = sum(family_fraction(x) for x in range(w + 1))
            assert window_fraction(w) == total

    def test_empirical_family_frequency(self):
        """Among 1..2**k, family x holds ~2**-(x+1) of the strides."""
        groups = strides_of_families(1 << 12)
        total = 1 << 12
        for family in range(6):
            observed = Fraction(len(groups[family]), total)
            assert abs(observed - family_fraction(family)) <= Fraction(1, total)


class TestStrideFamily:
    def test_membership(self):
        family = StrideFamily(2)
        assert family.contains(12)
        assert family.contains(4)
        assert family.contains(-20)
        assert not family.contains(8)
        assert not family.contains(6)
        assert not family.contains(0)

    def test_representative(self):
        assert StrideFamily(5).representative() == 32

    def test_members(self):
        assert StrideFamily(1).members(20) == [2, 6, 10, 14, 18]

    def test_members_cover_partition(self):
        bound = 256
        seen = []
        for family in families_up_to(8):
            seen.extend(family.members(bound))
        assert sorted(seen) == list(range(1, bound + 1))

    def test_negative_family_rejected(self):
        with pytest.raises(VectorSpecError):
            StrideFamily(-1)

    def test_str_mentions_exponent(self):
        assert "x=3" in str(StrideFamily(3))
