"""Tests for the access planner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import ConfigurationError, OrderingError
from repro.mappings.interleaved import LowOrderInterleaved
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.matrix import PseudoRandomMapping
from repro.mappings.section import SectionXorMapping


class TestConstruction:
    def test_t_must_fit_modules(self):
        with pytest.raises(ConfigurationError):
            AccessPlanner(MatchedXorMapping(3, 4), 4)

    def test_negative_t_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessPlanner(MatchedXorMapping(3, 4), -1)

    def test_service_ratio(self, matched_planner):
        assert matched_planner.service_ratio == 8


class TestModeSelection:
    def test_auto_uses_conflict_free_inside_window(self, matched_planner):
        plan = matched_planner.plan(VectorAccess(0, 12, 128))
        assert plan.scheme == "conflict_free"
        assert plan.conflict_free

    def test_auto_falls_back_outside_window(self, matched_planner):
        plan = matched_planner.plan(VectorAccess(0, 1 << 6, 128))
        assert plan.scheme == "canonical"
        assert not plan.conflict_free

    def test_auto_falls_back_on_bad_length(self, matched_planner):
        plan = matched_planner.plan(VectorAccess(0, 12, 100))
        assert plan.scheme == "canonical"

    def test_explicit_conflict_free_raises_outside_window(
        self, matched_planner
    ):
        with pytest.raises(OrderingError):
            matched_planner.plan(
                VectorAccess(0, 1 << 6, 128), mode="conflict_free"
            )

    def test_explicit_ordered(self, matched_planner):
        plan = matched_planner.plan(VectorAccess(0, 12, 128), mode="ordered")
        assert plan.scheme == "canonical"

    def test_subsequence_mode(self, matched_planner):
        plan = matched_planner.plan(
            VectorAccess(16, 12, 128), mode="subsequence"
        )
        assert plan.scheme == "subsequence"

    def test_unknown_mode_rejected(self, matched_planner):
        with pytest.raises(ConfigurationError):
            matched_planner.plan(VectorAccess(0, 1, 128), mode="bogus")

    def test_unstructured_mapping_only_ordered(self):
        planner = AccessPlanner(PseudoRandomMapping(3, seed=1), 3)
        plan = planner.plan(VectorAccess(0, 12, 128))
        assert plan.scheme == "canonical"
        with pytest.raises(OrderingError):
            planner.plan(VectorAccess(0, 12, 128), mode="conflict_free")


class TestSectionMappingSelection:
    def test_low_window_uses_inner_chunks(self, section_planner):
        plan = section_planner.plan(VectorAccess(0, 12, 128))
        assert plan.scheme == "conflict_free"
        assert plan.conflict_free

    def test_high_window_uses_sections(self, section_planner):
        plan = section_planner.plan(VectorAccess(0, 3 << 7, 128))
        assert plan.scheme == "conflict_free"
        assert plan.conflict_free

    def test_above_window_falls_back(self, section_planner):
        plan = section_planner.plan(VectorAccess(0, 1 << 11, 128))
        assert plan.scheme == "canonical"
        assert not plan.conflict_free


class TestPlanContents:
    def test_request_stream_carries_element_indices(self, matched_planner):
        vector = VectorAccess(16, 12, 128)
        plan = matched_planner.plan(vector)
        stream = plan.request_stream()
        assert len(stream) == 128
        assert sorted(index for index, _ in stream) == list(range(128))
        for index, address in stream:
            assert address == vector.address_of(index)

    def test_minimum_latency(self, matched_planner):
        plan = matched_planner.plan(VectorAccess(0, 1, 128))
        assert plan.minimum_latency == 8 + 128 + 1

    def test_modules_agree_with_mapping(
        self, matched_planner, matched_mapping
    ):
        vector = VectorAccess(7, 20, 128)
        plan = matched_planner.plan(vector)
        for (index, address), module in zip(
            plan.request_stream(), plan.modules
        ):
            assert module == matched_mapping.module_of(
                matched_mapping.reduce(address)
            )


class TestLowOrderMapping:
    def test_odd_stride_conflict_free_via_reorder(self):
        """LowOrderInterleaved exposes s=0; x=0 is its whole window."""
        planner = AccessPlanner(LowOrderInterleaved(3), 3)
        plan = planner.plan(VectorAccess(5, 7, 64))
        assert plan.conflict_free

    def test_even_stride_not_coverable(self):
        planner = AccessPlanner(LowOrderInterleaved(3), 3)
        plan = planner.plan(VectorAccess(5, 14, 64))
        assert plan.scheme == "canonical"
        assert not plan.conflict_free


class TestTheorem1ByBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=6),
        sigma=st.integers(min_value=-15, max_value=15).filter(
            lambda v: v % 2 != 0
        ),
        base=st.integers(min_value=0, max_value=2**24),
    )
    def test_window_verdict_matches_theorem(self, x, sigma, base):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        plan = planner.plan(VectorAccess(base, sigma * (1 << x), 128))
        assert plan.conflict_free == (x <= 4)

    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=11),
        sigma=st.integers(min_value=-15, max_value=15).filter(
            lambda v: v % 2 != 0
        ),
        base=st.integers(min_value=0, max_value=2**24),
    )
    def test_theorem3_verdict(self, x, sigma, base):
        planner = AccessPlanner(SectionXorMapping(3, 4, 9), 3)
        plan = planner.plan(VectorAccess(base, sigma * (1 << x), 128))
        assert plan.conflict_free == (x <= 9)


class TestTMatchedHelper:
    def test_matches_theorem_boundaries(self, matched_planner):
        assert matched_planner.vector_t_matched(VectorAccess(3, 12, 128))
        assert not matched_planner.vector_t_matched(
            VectorAccess(3, 1 << 6, 128)
        )
