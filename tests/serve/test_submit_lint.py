"""Submit-time static lint at the HTTP front door.

A POST whose specs fail `repro check`'s submit gate must be a 400
carrying the structured findings, must count in the rejection metrics,
and must never allocate (or leak) a run id.
"""

from __future__ import annotations

import copy

from tests.serve.conftest import SPEC


def bad_spec():
    spec = copy.deepcopy(SPEC)
    spec["name"] = "bad-param"
    spec["mapping"]["params"]["warp"] = 9
    return spec


class TestSubmitLint:
    def test_bad_param_is_400_with_structured_findings(self, client):
        status, _, body = client.post_json("/v1/runs", bad_spec())
        assert status == 400
        assert body["error"].startswith("CheckError: ")
        assert "static check error" in body["error"]
        [finding] = body["findings"]
        assert finding["rule_id"] == "SL302"
        assert finding["severity"] == "error"
        assert "warp" in finding["message"]
        assert "POST /v1/runs" in finding["location"]

    def test_rejection_counts_and_leaks_no_run(self, app, client):
        _, metrics_before = client.get_json("/v1/metrics")
        status, _, body = client.post_json("/v1/runs", bad_spec())
        assert status == 400
        assert "run_id" not in body
        _, metrics_after = client.get_json("/v1/metrics")
        assert (
            metrics_after["counters"].get("runs_rejected", 0)
            == metrics_before["counters"].get("runs_rejected", 0) + 1
        )
        assert metrics_after["counters"].get(
            "runs_submitted", 0
        ) == metrics_before["counters"].get("runs_submitted", 0)
        assert metrics_after["runs_tracked"] == metrics_before["runs_tracked"]

    def test_non_check_parse_failures_also_count_as_rejected(self, client):
        _, metrics_before = client.get_json("/v1/metrics")
        status, _, _body = client.post_json("/v1/runs", {"memory": {"t": 3}})
        assert status == 400
        _, metrics_after = client.get_json("/v1/metrics")
        assert (
            metrics_after["counters"].get("runs_rejected", 0)
            == metrics_before["counters"].get("runs_rejected", 0) + 1
        )

    def test_duplicate_points_warn_but_still_submit(self, client):
        twin = copy.deepcopy(SPEC)
        twin["name"] = "serve-test-twin"
        status, _, body = client.post_json("/v1/runs", [SPEC, twin])
        assert status == 202
        client.wait_done(body["run_id"])

    def test_clean_spec_still_submits(self, client):
        status, _, body = client.post_json("/v1/runs", SPEC)
        assert status == 202
        final = client.wait_done(body["run_id"])
        assert final["state"] == "done"
