"""Graceful shutdown: SIGTERM drains in-flight batches, then exit 0.

Runs the real ``repro lab serve`` CLI in a subprocess — signal
disposition, the drain sequence, and the exit status are process-level
behaviour that in-process tests cannot see.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from .conftest import SPEC

SRC = str(Path(__file__).resolve().parents[2] / "src")


def start_serve(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "lab",
            "serve",
            "--port",
            "0",
            "--backend",
            "serial",
            "--root",
            str(tmp_path / "lab"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def read_port(process) -> int:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if match:
            return int(match.group(1))
    pytest.fail("serve process never announced its port")


def post_spec(port) -> dict:
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", "/v1/runs", body=json.dumps(SPEC))
        response = conn.getresponse()
        assert response.status == 202
        return json.loads(response.read())
    finally:
        conn.close()


class TestSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process = start_serve(tmp_path)
        try:
            port = read_port(process)
            accepted = post_spec(port)
            config_hash = accepted["jobs"][0]["config_hash"]
            # Signal immediately: the batch is (at best) just starting.
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        assert process.returncode == 0, output
        assert "draining in-flight runs" in output
        assert "drained cleanly" in output

        # The 202 was a promise: the artifact landed despite the signal.
        artifact = (
            tmp_path / "lab" / "artifacts" / config_hash / "result.json"
        )
        assert artifact.is_file(), output
        record = json.loads(artifact.read_text())
        assert record["all_passed"] is True

    def test_sigint_also_exits_zero(self, tmp_path):
        process = start_serve(tmp_path)
        try:
            port = read_port(process)
            # Liveness only; no work in flight.
            conn = HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/v1/healthz")
            assert conn.getresponse().status == 200
            conn.close()
            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
