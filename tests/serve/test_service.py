"""Service-layer unit tests, no HTTP socket involved."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.errors import (
    BadRequestError,
    NotFoundError,
    ServiceUnavailableError,
    error_payload,
    error_status,
)
from repro.serve.schemas import parse_run_request
from repro.serve.service import LabService

from .conftest import SPEC


def make_service(store):
    return LabService(store, backend_factory=lambda: "serial")


def wait_runs(service):
    for submission in list(service._runs.values()):
        submission.finished.wait(timeout=60)


class TestSubmit:
    def test_submit_returns_immediately_with_addresses(self, store):
        service = make_service(store)
        try:
            payload = service.submit(json.dumps(SPEC).encode())
            assert payload["job_count"] == 1
            assert payload["jobs"][0]["config_hash"]
            wait_runs(service)
            final = service.run_status(payload["run_id"])
            assert final["state"] == "done"
        finally:
            service.close()

    def test_identical_design_points_in_one_request_run_once(self, store):
        service = make_service(store)
        try:
            body = json.dumps([SPEC, SPEC]).encode()
            payload = service.submit(body)
            # Same spec twice is one job, not a duplicated simulation.
            assert payload["job_count"] == 1
            wait_runs(service)
            assert service.run_status(payload["run_id"])["state"] == "done"
        finally:
            service.close()

    def test_submit_after_close_is_503(self, store):
        service = make_service(store)
        service.close()
        with pytest.raises(ServiceUnavailableError) as excinfo:
            service.submit(json.dumps(SPEC).encode())
        assert error_status(excinfo.value) == 503
        # The rejected run is not tracked as a ghost.
        assert service.run_count() == 0

    def test_failed_batch_reports_its_error(self, store):
        service = LabService(
            store, backend_factory=lambda: "no-such-backend"
        )
        try:
            payload = service.submit(json.dumps(SPEC).encode())
            wait_runs(service)
            final = service.run_status(payload["run_id"])
            assert final["state"] == "failed"
            assert final["error"].startswith("UnknownBackendError: ")
            assert service.counters.snapshot()["runs_failed"] == 1
        finally:
            service.close()


class TestParseRunRequest:
    def test_single_grid_and_list_shapes(self):
        single = parse_run_request(json.dumps(SPEC).encode())
        assert len(single) == 1
        grid = parse_run_request(
            json.dumps(
                {"base": SPEC, "axes": {"workload.params.stride": [1, 2]}}
            ).encode()
        )
        assert len(grid) == 2
        listed = parse_run_request(json.dumps([SPEC]).encode())
        assert len(listed) == 1

    def test_empty_and_binary_bodies(self):
        with pytest.raises(BadRequestError):
            parse_run_request(b"")
        with pytest.raises(BadRequestError):
            parse_run_request(b"\xff\xfe")

    def test_bad_json_raises_the_scenario_layer_error(self):
        with pytest.raises(ConfigurationError):
            parse_run_request(b"{broken")


class TestErrorMapping:
    def test_serve_errors_carry_their_status(self):
        assert error_status(NotFoundError("x")) == 404
        assert error_status(BadRequestError("x")) == 400

    def test_repro_errors_are_400_and_others_500(self):
        assert error_status(ConfigurationError("bad spec")) == 400
        assert error_status(RuntimeError("bug")) == 500

    def test_payload_shape_matches_job_failure_grammar(self):
        payload = error_payload(ConfigurationError("bad spec"))
        assert payload == {
            "error": "ConfigurationError: bad spec",
            "status": 400,
        }
