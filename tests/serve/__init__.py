"""Package marker so the serve tests can share conftest helpers."""
