"""Duplicate-submission collapsing: identical in-flight batches
simulate once.

The queue keys on the batch *signature* — the sorted tuple of config
hashes — so any two submissions naming the same set of design points
collapse, regardless of job order or arrival thread.
"""

from __future__ import annotations

import threading

from repro.serve.queue import DONE, Submission, SubmissionQueue

from .conftest import SPEC


def make_submission(run_id: str, signature=("h1", "h2")) -> Submission:
    return Submission(
        run_id=run_id,
        jobs=[],
        hashes={},
        signature=tuple(signature),
        created_at="2026-08-07T00:00:00Z",
    )


class TestQueueCollapse:
    def test_follower_waits_for_its_leader(self):
        release = threading.Event()
        running = []
        lock = threading.Lock()
        overlapped = []

        def runner(submission):
            with lock:
                running.append(submission.run_id)
                if len(running) > 1:
                    overlapped.append(tuple(running))
            release.wait(timeout=30)
            with lock:
                running.remove(submission.run_id)

        queue = SubmissionQueue(runner, workers=4)
        leader = make_submission("leader")
        follower = make_submission("follower")
        queue.submit(leader)
        queue.submit(follower)
        assert follower.follows == "leader"
        assert leader.follows is None
        release.set()
        queue.close(drain=True)
        assert leader.state == DONE
        assert follower.state == DONE
        # Never concurrent: the follower only started after the leader
        # finished, despite 4 free pool slots.
        assert overlapped == []

    def test_different_signatures_do_not_collapse(self):
        def runner(submission):
            pass

        queue = SubmissionQueue(runner, workers=2)
        first = make_submission("a", signature=("x",))
        second = make_submission("b", signature=("y",))
        queue.submit(first)
        queue.submit(second)
        queue.close(drain=True)
        assert second.follows is None

    def test_finished_leader_is_not_followed(self):
        def runner(submission):
            pass

        queue = SubmissionQueue(runner, workers=1)
        first = make_submission("a")
        queue.submit(first)
        first.finished.wait(timeout=30)
        second = make_submission("b")
        queue.submit(second)
        queue.close(drain=True)
        # The leader was already done; the second run leads its own
        # (trivially cached) batch instead of queuing behind history.
        assert second.follows is None

    def test_runner_exception_becomes_failed_state(self):
        def runner(submission):
            raise ValueError("boom")

        queue = SubmissionQueue(runner, workers=1)
        submission = make_submission("a")
        queue.submit(submission)
        queue.close(drain=True)
        assert submission.state == "failed"
        assert submission.error == "ValueError: boom"


class TestHTTPCollapse:
    def test_concurrent_identical_posts_simulate_once(self, client):
        run_ids = []
        lock = threading.Lock()

        def post():
            _, _, body = client.post_json("/v1/runs", SPEC)
            with lock:
                run_ids.append(body["run_id"])

        threads = [threading.Thread(target=post) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(run_ids)) == 8  # every client got its own run

        for run_id in run_ids:
            done = client.wait_done(run_id)
            assert done["state"] == "done"
            assert done["all_passed"] is True

        # However the 8 interleaved, the simulator ran exactly once.
        _, metrics = client.get_json("/v1/metrics")
        assert metrics["counters"]["jobs_executed"] == 1
        assert metrics["counters"]["job_cache_hits"] == 7
        assert metrics["counters"]["runs_completed"] == 8

    def test_deduplicated_runs_name_their_leader(self, client):
        _, _, first = client.post_json("/v1/runs", SPEC)
        # Submit the duplicate while the first may still be in flight;
        # whether it collapsed or just cache-hit, it must finish clean.
        _, _, second = client.post_json("/v1/runs", SPEC)
        if "deduplicated_with" in second:
            assert second["deduplicated_with"] == first["run_id"]
        done = client.wait_done(second["run_id"])
        assert done["state"] == "done"
