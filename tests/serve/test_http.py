"""HTTP surface tests: routing, submission lifecycle, error grammar."""

from __future__ import annotations

import json
import re

from repro.serve.schemas import MAX_BODY_BYTES

from .conftest import SPEC

#: Every error body is ``TypeName: message`` — the lab's job-failure
#: grammar, reused verbatim on the wire.
ERROR_SHAPE = re.compile(r"^[A-Za-z]+Error: .+")


class TestHealthz:
    def test_ok(self, client):
        status, body = client.get_json("/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        import repro

        assert body["version"] == repro.__version__
        assert body["uptime_seconds"] >= 0

    def test_responses_are_json_with_content_length(self, client):
        status, headers, body = client.get("/v1/healthz")
        assert headers["Content-Type"] == "application/json"
        assert int(headers["Content-Length"]) == len(body)


class TestRouting:
    def test_unknown_route_is_404_with_canonical_error(self, client):
        status, body = client.get_json("/v1/nope")
        assert status == 404
        assert ERROR_SHAPE.match(body["error"])
        assert body["error"].startswith("NotFoundError: ")
        assert body["status"] == 404

    def test_wrong_method_is_405(self, client):
        status, _, body = client.post_json("/v1/healthz", {})
        assert status == 405
        assert body["error"].startswith("MethodNotAllowedError: ")

    def test_get_on_runs_collection_is_405(self, client):
        status, body = client.get_json("/v1/runs")
        assert status == 405


class TestSubmission:
    def test_submit_then_poll_to_done(self, client):
        status, headers, body = client.post_json("/v1/runs", SPEC)
        assert status == 202
        assert body["state"] == "queued" or body["state"] in ("running", "done")
        assert body["job_count"] == 1
        assert headers["Location"] == f"/v1/runs/{body['run_id']}"
        [job] = body["jobs"]
        # The artifact address is known at submit time.
        assert re.fullmatch(r"[0-9a-f]{64}", job["config_hash"])
        assert job["result_url"] == f"/v1/results/{job['config_hash']}"

        done = client.wait_done(body["run_id"])
        assert done["state"] == "done"
        assert done["all_passed"] is True
        assert done["executed"] == 1
        assert done["cache_hits"] == 0
        assert done["metrics"]["backend"] == "serial"
        assert done["metrics"]["cache_hit_rate"] == 0.0
        assert done["jobs"][0]["cached"] is False

    def test_grid_expands_to_many_jobs(self, client):
        grid = {
            "base": SPEC,
            "axes": {"workload.params.stride": [1, 12]},
        }
        status, _, body = client.post_json("/v1/runs", grid)
        assert status == 202
        assert body["job_count"] == 2
        done = client.wait_done(body["run_id"])
        assert done["all_passed"] is True

    def test_unknown_run_is_404(self, client):
        status, body = client.get_json("/v1/runs/never-heard-of-it")
        assert status == 404
        assert body["error"].startswith("NotFoundError: ")


class TestBadRequests:
    def test_malformed_json_is_400_configuration_error(self, client):
        status, _, body = client.request("POST", "/v1/runs", body="not json")
        body = json.loads(body)
        assert status == 400
        assert body["error"].startswith("ConfigurationError: invalid scenario JSON")
        assert body["status"] == 400

    def test_empty_body_is_400(self, client):
        status, _, body = client.request("POST", "/v1/runs")
        body = json.loads(body)
        assert status == 400
        assert body["error"].startswith("BadRequestError: ")

    def test_invalid_spec_content_is_400(self, client):
        bad = dict(SPEC, mapping={"kind": "no-such-mapping", "params": {}})
        status, _, body = client.post_json("/v1/runs", bad)
        assert status == 400
        assert ERROR_SHAPE.match(body["error"])

    def test_oversize_body_is_413_without_reading_it(self, client):
        status, _, body = client.request(
            "POST",
            "/v1/runs",
            body="x",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        body = json.loads(body)
        assert status == 413
        assert body["error"].startswith("PayloadTooLargeError: ")


class TestHistory:
    def test_trend_updates_as_runs_complete(self, client):
        _, _, body = client.post_json("/v1/runs", SPEC)
        client.wait_done(body["run_id"])
        status, trend = client.get_json("/v1/history/elapsed_seconds")
        assert status == 200
        assert trend["metric"] == "elapsed_seconds"
        assert trend["point_count"] >= 1
        assert trend["points"][0]["run_id"] == body["run_id"]

    def test_scenario_filter_and_limit(self, client):
        _, _, body = client.post_json("/v1/runs", SPEC)
        client.wait_done(body["run_id"])
        status, trend = client.get_json(
            "/v1/history/latency?scenario=serve-test&limit=1"
        )
        assert status == 200
        assert trend["point_count"] == 1
        status, trend = client.get_json("/v1/history/latency?scenario=no-match")
        assert trend["point_count"] == 0

    def test_bad_limit_is_400(self, client):
        status, body = client.get_json("/v1/history/latency?limit=zero")
        assert status == 400
        assert body["error"].startswith("BadRequestError: ")


class TestMetrics:
    def test_counters_track_requests_and_jobs(self, client):
        _, _, body = client.post_json("/v1/runs", SPEC)
        client.wait_done(body["run_id"])
        status, metrics = client.get_json("/v1/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["runs_submitted"] == 1
        assert counters["runs_completed"] == 1
        assert counters["jobs_executed"] == 1
        assert counters["requests_total"] >= 2
        assert metrics["runs_tracked"] == 1

    def test_errors_are_counted(self, client):
        client.get_json("/v1/nope")
        _, metrics = client.get_json("/v1/metrics")
        assert metrics["counters"]["errors_total"] >= 1
