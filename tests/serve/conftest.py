"""Shared serve-test fixtures: an in-process app on an ephemeral port.

The app runs the real ``ThreadingHTTPServer`` bound to 127.0.0.1:0 with
the serial backend, so every test exercises the genuine HTTP transport
(status lines, headers, conditional GET) without ports, subprocesses,
or timing assumptions.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection

import pytest

from repro.lab.store import ArtifactStore
from repro.serve import ServeApp

#: A tiny single design point (milliseconds to simulate).
SPEC = {
    "name": "serve-test",
    "mapping": {"kind": "matched-xor", "params": {"t": 3, "s": 4}},
    "memory": {"t": 3},
    "workload": {
        "kind": "strided",
        "params": {"base": 16, "stride": 12, "length": 128},
    },
}


class Client:
    """One-connection-per-request HTTP client around ``http.client``."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def request(self, method, path, *, body=None, headers=None):
        if isinstance(body, (dict, list)):
            body = json.dumps(body)
        conn = HTTPConnection(self.host, self.port, timeout=60)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            data = response.read()
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def get(self, path, *, headers=None):
        return self.request("GET", path, headers=headers)

    def get_json(self, path):
        status, _, body = self.get(path)
        return status, json.loads(body)

    def post_json(self, path, payload):
        status, headers, body = self.request("POST", path, body=payload)
        return status, headers, json.loads(body)

    def wait_done(self, run_id, *, timeout=60.0):
        """Poll the run until it leaves the queue; returns its final body."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.get_json(f"/v1/runs/{run_id}")
            assert status == 200
            if body["state"] in ("done", "failed"):
                return body
            time.sleep(0.02)
        raise AssertionError(f"run {run_id} still {body['state']} after {timeout}s")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "lab")


@pytest.fixture
def app(store):
    served = ServeApp(
        store,
        port=0,
        backend_factory=lambda: "serial",
        queue_workers=2,
        access_log=None,
    )
    served.start()
    yield served
    served.stop()


@pytest.fixture
def client(app) -> Client:
    return Client(app.host, app.port)
