"""Conditional GET over the content-addressed result store.

The config hash is the strong ETag by construction — same hash, same
bytes, forever — so revalidation is exact and ``304`` responses carry
zero body bytes.
"""

from __future__ import annotations

import json

from .conftest import SPEC


def submit_and_wait(client):
    _, _, body = client.post_json("/v1/runs", SPEC)
    client.wait_done(body["run_id"])
    return body["jobs"][0]["config_hash"]


class TestResultFetch:
    def test_fresh_fetch_carries_strong_etag(self, client):
        config_hash = submit_and_wait(client)
        status, headers, body = client.get(f"/v1/results/{config_hash}")
        assert status == 200
        assert headers["ETag"] == f'"{config_hash}"'
        assert "immutable" in headers["Cache-Control"]
        record = json.loads(body)
        assert record["config_hash"] == config_hash
        assert record["all_passed"] is True

    def test_if_none_match_round_trip_is_304_with_empty_body(self, client):
        config_hash = submit_and_wait(client)
        _, headers, first = client.get(f"/v1/results/{config_hash}")
        status, headers2, body = client.get(
            f"/v1/results/{config_hash}",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304
        assert body == b""
        assert headers2["ETag"] == headers["ETag"]

    def test_bare_and_weak_validators_also_match(self, client):
        config_hash = submit_and_wait(client)
        for validator in (
            config_hash,  # unquoted, as shell one-liners send it
            f'W/"{config_hash}"',
            '"other", "%s"' % config_hash,
            "*",
        ):
            status, _, body = client.get(
                f"/v1/results/{config_hash}",
                headers={"If-None-Match": validator},
            )
            assert status == 304, validator
            assert body == b""

    def test_stale_validator_still_gets_the_body(self, client):
        config_hash = submit_and_wait(client)
        status, _, body = client.get(
            f"/v1/results/{config_hash}",
            headers={"If-None-Match": '"' + "0" * 64 + '"'},
        )
        assert status == 200
        assert body

    def test_unknown_hash_is_404(self, client):
        status, body = client.get_json("/v1/results/" + "f" * 64)
        assert status == 404
        assert body["error"].startswith("NotFoundError: ")

    def test_not_modified_counted_in_metrics(self, client):
        config_hash = submit_and_wait(client)
        client.get(f"/v1/results/{config_hash}")
        client.get(
            f"/v1/results/{config_hash}",
            headers={"If-None-Match": f'"{config_hash}"'},
        )
        _, metrics = client.get_json("/v1/metrics")
        assert metrics["counters"]["results_served"] == 1
        assert metrics["counters"]["results_not_modified"] == 1


class TestCacheSemantics:
    def test_resubmitting_a_cached_spec_never_simulates(self, client):
        first_hash = submit_and_wait(client)
        _, _, body = client.post_json("/v1/runs", SPEC)
        done = client.wait_done(body["run_id"])
        assert done["executed"] == 0
        assert done["cache_hits"] == 1
        assert done["metrics"]["cache_hit_rate"] == 1.0
        assert done["jobs"][0]["cached"] is True
        assert done["jobs"][0]["config_hash"] == first_hash
        _, metrics = client.get_json("/v1/metrics")
        assert metrics["counters"]["jobs_executed"] == 1
        assert metrics["counters"]["job_cache_hits"] == 1
        assert metrics["cache_hit_rate"] == 0.5

    def test_result_bytes_are_stable_across_fetches(self, client):
        config_hash = submit_and_wait(client)
        _, _, first = client.get(f"/v1/results/{config_hash}")
        _, _, second = client.get(f"/v1/results/{config_hash}")
        assert first == second
