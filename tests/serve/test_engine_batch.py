"""Per-submission engine selection: ``POST /v1/runs?engine=batch``.

The batch engine must run the submission through
:class:`repro.batch.BatchBackend` (visible in the run's metrics
block), produce artifacts the kernel engine then hits as pure cache,
and the query validation must reject unknown engines and a
``validate`` count without the batch engine.
"""

from __future__ import annotations

from tests.serve.conftest import SPEC

GRID = {
    "base": SPEC,
    "axes": {"workload.params.stride": [1, 8, 12]},
}


class TestEngineQuery:
    def test_batch_engine_runs_and_reports(self, client):
        status, _, body = client.post_json("/v1/runs?engine=batch", GRID)
        assert status == 202
        assert body["engine"] == "batch"
        done = client.wait_done(body["run_id"])
        assert done["state"] == "done"
        assert done["all_passed"] is True
        assert done["metrics"]["backend"] == "batch"
        assert done["metrics"]["batch_jobs"] == done["job_count"]

    def test_kernel_engine_hits_batch_artifacts(self, client):
        status, _, first = client.post_json("/v1/runs?engine=batch", GRID)
        assert status == 202
        client.wait_done(first["run_id"])
        status, _, second = client.post_json("/v1/runs", GRID)
        assert status == 202
        assert second["engine"] == "kernel"
        done = client.wait_done(second["run_id"])
        assert done["cache_hits"] == done["job_count"]
        assert done["executed"] == 0

    def test_validate_rides_the_batch_engine(self, client):
        status, _, body = client.post_json(
            "/v1/runs?engine=batch&validate=2", GRID
        )
        assert status == 202
        done = client.wait_done(body["run_id"])
        assert done["state"] == "done"
        assert done["metrics"]["batch_validated"] == 2

    def test_unknown_engine_is_a_400(self, client):
        status, _, body = client.post_json("/v1/runs?engine=warp", GRID)
        assert status == 400
        assert "unknown engine" in body["error"]

    def test_validate_without_batch_engine_is_a_400(self, client):
        status, _, body = client.post_json("/v1/runs?validate=3", GRID)
        assert status == 400
        assert "engine=batch" in body["error"]

    def test_garbage_validate_is_a_400(self, client):
        status, _, body = client.post_json(
            "/v1/runs?engine=batch&validate=lots", GRID
        )
        assert status == 400
        assert "non-negative" in body["error"]


class TestBatchWorkersQuery:
    def test_batch_workers_runs_and_reports_the_width(self, client):
        status, _, body = client.post_json(
            "/v1/runs?engine=batch&batch_workers=2", GRID
        )
        assert status == 202
        done = client.wait_done(body["run_id"])
        assert done["state"] == "done"
        assert done["all_passed"] is True
        assert done["metrics"]["batch_workers"] == 2

    def test_batch_workers_without_batch_engine_is_a_400(self, client):
        status, _, body = client.post_json("/v1/runs?batch_workers=2", GRID)
        assert status == 400
        assert "engine=batch" in body["error"]

    def test_garbage_batch_workers_is_a_400(self, client):
        status, _, body = client.post_json(
            "/v1/runs?engine=batch&batch_workers=many", GRID
        )
        assert status == 400
        assert "non-negative" in body["error"]

    def test_negative_batch_workers_is_a_400(self, client):
        status, _, body = client.post_json(
            "/v1/runs?engine=batch&batch_workers=-1", GRID
        )
        assert status == 400
        assert "non-negative" in body["error"]


class TestBatchCountersInMetrics:
    def test_concurrent_batch_runs_aggregate_under_the_lock(self, client):
        """Two batch submissions executing concurrently (queue_workers=2)
        must land their tier counters in /v1/metrics without tearing:
        the totals equal the sum of each run's own metrics block."""
        import threading

        grids = [
            {
                "base": dict(SPEC, name=f"counters-{tag}"),
                "axes": {"workload.params.stride": strides},
            }
            for tag, strides in (("a", [1, 8, 12]), ("b", [2, 3, 5, 7]))
        ]
        bodies = [None, None]

        def submit(index):
            status, _, body = client.post_json(
                "/v1/runs?engine=batch", grids[index]
            )
            assert status == 202
            bodies[index] = body

        threads = [
            threading.Thread(target=submit, args=(index,))
            for index in range(len(grids))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        finished = [client.wait_done(body["run_id"]) for body in bodies]
        expected_jobs = sum(done["metrics"]["batch_jobs"] for done in finished)
        status, metrics = client.get_json("/v1/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["batch_jobs"] == expected_jobs == 7
        assert counters["runs_completed"] == 2
        for key in ("batch_fallback", "plan_cache_hits", "plan_cache_misses"):
            assert key in counters
