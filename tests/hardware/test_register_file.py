"""Tests for the vector register files (Section 5-D)."""

from __future__ import annotations

import pytest

from repro.errors import RegisterFileError
from repro.hardware.register_file import (
    FifoVectorRegister,
    RandomAccessVectorRegister,
    VectorRegisterFile,
)


class TestRandomAccessRegister:
    def test_out_of_order_writes_allowed(self):
        register = RandomAccessVectorRegister(4)
        for index in (2, 0, 3, 1):
            register.write(index, float(index))
        assert register.as_list() == [0.0, 1.0, 2.0, 3.0]

    def test_full_flag(self):
        register = RandomAccessVectorRegister(2)
        assert not register.full
        register.write(0, 1.0)
        assert not register.full
        register.write(1, 2.0)
        assert register.full

    def test_read_before_write_raises(self):
        register = RandomAccessVectorRegister(2)
        with pytest.raises(RegisterFileError):
            register.read(0)

    def test_bounds(self):
        register = RandomAccessVectorRegister(2)
        with pytest.raises(RegisterFileError):
            register.write(2, 0.0)
        with pytest.raises(RegisterFileError):
            register.read(-1)

    def test_as_list_requires_full(self):
        register = RandomAccessVectorRegister(2)
        register.write(0, 1.0)
        with pytest.raises(RegisterFileError):
            register.as_list()

    def test_clear(self):
        register = RandomAccessVectorRegister(2)
        register.write(0, 1.0)
        register.write(1, 2.0)
        register.clear()
        assert not register.full

    def test_invalid_length(self):
        with pytest.raises(RegisterFileError):
            RandomAccessVectorRegister(0)


class TestFifoRegister:
    def test_in_order_writes(self):
        register = FifoVectorRegister(3)
        for index in range(3):
            register.write(index, float(index))
        assert register.as_list() == [0.0, 1.0, 2.0]

    def test_out_of_order_write_rejected(self):
        """The paper's point: OOO return needs a random-access register."""
        register = FifoVectorRegister(4)
        register.write(0, 0.0)
        with pytest.raises(RegisterFileError):
            register.write(2, 2.0)

    def test_overflow(self):
        register = FifoVectorRegister(1)
        register.write(0, 0.0)
        with pytest.raises(RegisterFileError):
            register.write(1, 1.0)

    def test_read_unavailable(self):
        register = FifoVectorRegister(2)
        register.write(0, 5.0)
        assert register.read(0) == 5.0
        with pytest.raises(RegisterFileError):
            register.read(1)


class TestRegisterFile:
    def test_register_lookup(self):
        file = VectorRegisterFile(4, 8)
        file.register(0).write(3, 1.5)
        assert file.register(0).read(3) == 1.5

    def test_missing_register(self):
        file = VectorRegisterFile(2, 8)
        with pytest.raises(RegisterFileError):
            file.register(2)

    def test_load_values(self):
        file = VectorRegisterFile(2, 4)
        file.load_values(1, [1.0, 2.0, 3.0, 4.0])
        assert file.register(1).as_list() == [1.0, 2.0, 3.0, 4.0]

    def test_invalid_count(self):
        with pytest.raises(RegisterFileError):
            VectorRegisterFile(0, 4)


class TestOutOfOrderStreamIntoFifo:
    def test_conflict_free_stream_breaks_fifo(self, matched_planner):
        """Feeding a Section 3.2 stream into a FIFO register fails."""
        from repro.core.vector import VectorAccess

        plan = matched_planner.plan(VectorAccess(16, 12, 128))
        register = FifoVectorRegister(128)
        with pytest.raises(RegisterFileError):
            for index, _address in plan.request_stream():
                register.write(index, float(index))
