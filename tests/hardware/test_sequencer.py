"""Tests for the Figure 4/5 address generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orderings import subsequence_order
from repro.core.subsequences import build_subsequences
from repro.core.vector import VectorAccess
from repro.errors import HardwareModelError
from repro.hardware.sequencer import (
    Figure5AddressGenerator,
    natural_order_stream,
    ordered_generator_stream,
)


class TestEquivalenceWithAbstractOrder:
    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=-1000, max_value=100000),
    )
    def test_stream_equals_subsequence_order(self, x, sigma, base):
        vector = VectorAccess(base, sigma * (1 << x), 128)
        plan = build_subsequences(vector, w=4, t=3)
        hardware = [
            (produced.element_index, produced.address)
            for produced in Figure5AddressGenerator(plan).run()
        ]
        abstract = [
            (index, vector.address_of(index))
            for index in subsequence_order(plan).indices
        ]
        assert hardware == abstract

    def test_one_request_per_cycle(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        stream = Figure5AddressGenerator(plan).run()
        assert [produced.cycle for produced in stream] == list(range(1, 65))


class TestStartOffset:
    def test_start_at_second_subsequence(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        generator = Figure5AddressGenerator(plan, start_subsequence=1)
        stream = generator.run()
        # Should produce everything except the first subsequence.
        expected = subsequence_order(plan).indices[8:]
        assert tuple(produced.element_index for produced in stream) == expected

    def test_bad_offset_rejected(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        with pytest.raises(HardwareModelError):
            Figure5AddressGenerator(plan, start_subsequence=8)

    def test_step_after_done_rejected(self):
        vector = VectorAccess(0, 8, 8)  # single subsequence
        plan = build_subsequences(vector, w=3, t=3)
        generator = Figure5AddressGenerator(plan)
        generator.run()
        with pytest.raises(HardwareModelError):
            generator.step()


class TestAdderBudget:
    def test_total_adds_bounded_by_stream_length(self):
        """One address add per emitted element (minus the preloaded first)."""
        vector = VectorAccess(16, 12, 128)
        plan = build_subsequences(vector, w=4, t=3)
        generator = Figure5AddressGenerator(plan)
        generator.run()
        assert generator.adder.total_operations <= 128
        assert generator.reg_adder.total_operations <= 128


class TestOrderedGenerator:
    def test_stream_is_canonical(self):
        vector = VectorAccess(5, 7, 32)
        stream = ordered_generator_stream(vector)
        assert [(p.element_index, p.address) for p in stream] == [
            (i, 5 + 7 * i) for i in range(32)
        ]

    def test_natural_order_helper(self):
        vector = VectorAccess(16, 12, 64)
        plan = build_subsequences(vector, w=3, t=3)
        helper = natural_order_stream(vector, 3, 3)
        direct = Figure5AddressGenerator(plan).run()
        assert [(p.element_index, p.address) for p in helper] == [
            (p.element_index, p.address) for p in direct
        ]
