"""Tests for the Figure 6 out-of-order engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import AccessPlanner
from repro.core.vector import VectorAccess
from repro.errors import OrderingError
from repro.hardware.oos_engine import Figure6Engine
from repro.mappings.linear import MatchedXorMapping
from repro.mappings.section import SectionXorMapping


class TestMatchedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=4),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**20),
    )
    def test_stream_equals_plan(self, x, sigma, base):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        vector = VectorAccess(base, sigma * (1 << x), 128)
        plan = planner.plan(vector, mode="conflict_free")
        engine = Figure6Engine(planner, vector)
        assert engine.request_stream() == plan.request_stream()


class TestUnmatchedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=9),
        sigma=st.integers(min_value=-9, max_value=9).filter(lambda v: v % 2 != 0),
        base=st.integers(min_value=0, max_value=2**20),
    )
    def test_stream_equals_plan(self, x, sigma, base):
        planner = AccessPlanner(SectionXorMapping(3, 4, 9), 3)
        vector = VectorAccess(base, sigma * (1 << x), 128)
        plan = planner.plan(vector, mode="conflict_free")
        engine = Figure6Engine(planner, vector)
        assert engine.request_stream() == plan.request_stream()


class TestResourceBudgets:
    def test_latch_capacity_respected(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        for family in range(5):
            engine = Figure6Engine(
                planner, VectorAccess(99, 3 * (1 << family), 128)
            )
            report = engine.report()
            assert report.latch_capacity == 16  # 2 * 2**t
            assert report.latch_peak_occupancy <= 8  # one bank's worth

    def test_one_cycle_per_request(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        engine = Figure6Engine(planner, VectorAccess(0, 12, 128))
        stream = engine.run()
        assert [produced.cycle for produced in stream] == list(range(1, 129))

    def test_generator1_only_first_subsequence(self):
        """'One of them is only used in the first 2**t cycles'."""
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        engine = Figure6Engine(planner, VectorAccess(0, 12, 128))
        report = engine.report()
        # Address + register adds of generator 1: bounded by 2 * 2**t.
        assert report.generator1_adds <= 2 * 8

    def test_single_subsequence_vector_uses_no_latches(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        # Family x = s: the chunk is one subsequence; with L = 2**t... use
        # L=8, one subsequence total.
        engine = Figure6Engine(planner, VectorAccess(5, 16, 8))
        report = engine.report()
        assert report.latch_peak_occupancy == 0
        assert report.generator2_adds == 0


class TestErrors:
    def test_outside_window_raises(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        with pytest.raises(OrderingError):
            Figure6Engine(planner, VectorAccess(0, 1 << 6, 128))

    def test_bad_length_raises(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        with pytest.raises(OrderingError):
            Figure6Engine(planner, VectorAccess(0, 12, 100))


class TestRunIsCached:
    def test_second_run_returns_same_object(self):
        planner = AccessPlanner(MatchedXorMapping(3, 4), 3)
        engine = Figure6Engine(planner, VectorAccess(0, 12, 128))
        assert engine.run() is engine.run()


class TestOtherGeometries:
    """The engine is geometry-generic: t=2 and t=4 machines."""

    @pytest.mark.parametrize(
        "t,s,length", [(2, 3, 32), (2, 4, 64), (4, 5, 512), (4, 4, 256)]
    )
    def test_matched_geometries(self, t, s, length):
        planner = AccessPlanner(MatchedXorMapping(t, s), t)
        for family in range(min(s, 3) + 1):
            vector = VectorAccess(99, 3 * (1 << family), length)
            try:
                plan = planner.plan(vector, mode="conflict_free")
            except OrderingError:
                continue  # outside this geometry's window
            engine = Figure6Engine(planner, vector)
            assert engine.request_stream() == plan.request_stream()
            report = engine.report()
            assert report.latch_capacity == 2 * (1 << t)

    def test_figure7_geometry(self):
        planner = AccessPlanner(SectionXorMapping(2, 3, 7), 2)
        for family in range(8):
            vector = VectorAccess(6, 1 << family, 32)
            plan = planner.plan(vector, mode="conflict_free")
            engine = Figure6Engine(planner, vector)
            assert engine.request_stream() == plan.request_stream()
