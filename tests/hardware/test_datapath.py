"""Tests for the structural budget primitives."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hardware.datapath import BudgetedAdder, LatchFile, OrderQueue


class TestBudgetedAdder:
    def test_single_use_per_cycle(self):
        adder = BudgetedAdder("a")
        adder.new_cycle()
        assert adder.add(2, 3) == 5
        with pytest.raises(HardwareModelError):
            adder.add(1, 1)

    def test_new_cycle_resets(self):
        adder = BudgetedAdder("a")
        adder.new_cycle()
        adder.add(1, 1)
        adder.new_cycle()
        assert adder.add(4, 5) == 9

    def test_counts_operations(self):
        adder = BudgetedAdder("a")
        for _ in range(5):
            adder.new_cycle()
            adder.add(0, 0)
        assert adder.total_operations == 5


class TestLatchFile:
    def test_write_read_roundtrip(self):
        bank = LatchFile("bank", 4)
        bank.write(2, element_index=7, address=99)
        assert bank.read(2) == (7, 99)

    def test_read_empties_slot(self):
        bank = LatchFile("bank", 4)
        bank.write(1, 0, 0)
        bank.read(1)
        with pytest.raises(HardwareModelError):
            bank.read(1)

    def test_double_write_rejected(self):
        bank = LatchFile("bank", 4)
        bank.write(0, 0, 0)
        with pytest.raises(HardwareModelError):
            bank.write(0, 1, 1)

    def test_label_bounds(self):
        bank = LatchFile("bank", 4)
        with pytest.raises(HardwareModelError):
            bank.write(4, 0, 0)
        with pytest.raises(HardwareModelError):
            bank.read(-1)

    def test_occupancy_tracking(self):
        bank = LatchFile("bank", 4)
        bank.write(0, 0, 0)
        bank.write(3, 1, 1)
        assert bank.occupied == 2
        assert bank.peak_occupancy == 2
        bank.read(0)
        assert bank.occupied == 1
        assert bank.peak_occupancy == 2
        assert not bank.is_empty()
        bank.read(3)
        assert bank.is_empty()


class TestOrderQueue:
    def test_fill_seal_read(self):
        queue = OrderQueue(4)
        for key in (3, 1, 0, 2):
            queue.push(key)
        queue.seal()
        assert queue.keys == (3, 1, 0, 2)
        assert queue.key_at(0) == 3
        assert queue.key_at(5) == 1  # cyclic

    def test_overflow_rejected(self):
        queue = OrderQueue(2)
        queue.push(0)
        queue.push(1)
        with pytest.raises(HardwareModelError):
            queue.push(2)

    def test_seal_requires_full(self):
        queue = OrderQueue(3)
        queue.push(0)
        with pytest.raises(HardwareModelError):
            queue.seal()

    def test_read_before_seal_rejected(self):
        queue = OrderQueue(1)
        queue.push(0)
        with pytest.raises(HardwareModelError):
            queue.key_at(0)

    def test_write_after_seal_rejected(self):
        queue = OrderQueue(1)
        queue.push(0)
        queue.seal()
        with pytest.raises(HardwareModelError):
            queue.push(1)
